//! Determinism guard: pipelined training on the MPMD runtime must be
//! **bit-identical** — not just allclose — to single-device whole-graph
//! training, at any kernel thread count. This pins the contract that
//! the blocked/parallel kernels and the buffer-reuse interpreter never
//! change a single reduction order.

#![allow(clippy::needless_range_loop)]

use std::time::Duration;

use raxpp_core::{compile_train_step, CompileOptions, Optimizer, RetryPolicy, TpConfig, Trainer};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::{eval, set_num_threads, value_and_grad, Tensor};
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::Fault;
use raxpp_sched::{gpipe, one_f1b, Schedule};

/// Single-device trainer: whole-graph autodiff, microbatch gradients
/// accumulated in the schedule's backward-task order (GPipe runs
/// backwards LIFO, 1F1B ascending — f32 addition order matters for
/// bit-identity), SGD applied per parameter.
struct Reference {
    grad_graph: raxpp_ir::Jaxpr,
    params: Vec<Tensor>,
    optimizer: Optimizer,
    n_params: usize,
    bwd_order: Vec<usize>,
}

impl Reference {
    fn new(model: &BuiltModel, optimizer: Optimizer, schedule: &Schedule) -> Reference {
        let wrt: Vec<usize> = (0..model.n_params).collect();
        // Microbatch order of actor 0's backward tasks; every built-in
        // schedule uses the same backward order on every actor.
        let bwd_order: Vec<usize> = schedule.actors()[0]
            .iter()
            .filter(|t| t.dir == raxpp_sched::Dir::Bwd)
            .map(|t| t.mubatch)
            .collect();
        Reference {
            grad_graph: value_and_grad(&model.jaxpr, &wrt).unwrap(),
            params: model.init.clone(),
            optimizer,
            n_params: model.n_params,
            bwd_order,
        }
    }

    /// One step over all microbatches; returns per-microbatch losses.
    fn step(&mut self, data: &[Vec<Tensor>]) -> Vec<f32> {
        let n_mb = data[0].len();
        let mut per_mb: Vec<Vec<Tensor>> = Vec::new();
        let mut losses = Vec::new();
        for mb in 0..n_mb {
            let mut args = self.params.clone();
            for d in data {
                args.push(d[mb].clone());
            }
            let outs = eval(&self.grad_graph, &args).unwrap();
            losses.push(outs[0].item().unwrap());
            per_mb.push(outs[1..1 + self.n_params].to_vec());
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.n_params];
        for &mb in &self.bwd_order {
            for p in 0..self.n_params {
                let g = per_mb[mb][p].clone();
                grads[p] = Some(match grads[p].take() {
                    None => g,
                    Some(acc) => acc.zip(&g, |a, b| a + b).unwrap(),
                });
            }
        }
        for p in 0..self.n_params {
            let update = self.optimizer.update_jaxpr(self.params[p].shape()).unwrap();
            let args = vec![self.params[p].clone(), grads[p].take().unwrap()];
            let outs = eval(&update, &args).unwrap();
            self.params[p] = outs[0].clone();
        }
        losses
    }
}

fn run_guard(schedule: &Schedule, seed: u64, tp: usize) {
    let model = mlp_chain(6, 3, 4, schedule.n_stages(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
        .collect()];
    let optimizer = Optimizer::Sgd { lr: 0.05 };

    for threads in [1usize, 4] {
        set_num_threads(threads);
        let trainer = compile_train_step(
            &model.jaxpr,
            model.n_params,
            schedule,
            optimizer,
            CompileOptions {
                tp: Some(TpConfig::model_parallel(tp)),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        trainer.init(&model.init).unwrap();
        // Tracing only observes execution (timestamps and byte counts),
        // so it must not perturb a single bit; run half the matrix with
        // span recording on to pin that.
        trainer.runtime().set_tracing(threads == 4);
        let mut reference = Reference::new(&model, optimizer, schedule);

        for step in 0..3 {
            let got = trainer.step(&data).unwrap();
            let want = reference.step(&data);
            assert_eq!(
                got.losses,
                want,
                "step {step}: pipelined losses not bit-identical \
                 ({} @ {threads} threads)",
                schedule.name()
            );
            let got_params = trainer.params().unwrap();
            for (p, (gp, rp)) in got_params.iter().zip(&reference.params).enumerate() {
                assert_eq!(gp.shape(), rp.shape());
                assert_eq!(
                    gp.data(),
                    rp.data(),
                    "step {step}: param {p} not bit-identical \
                     ({} @ {threads} threads)",
                    schedule.name()
                );
            }
        }
    }
    set_num_threads(1);
}

#[test]
fn gpipe_training_is_bit_identical_to_single_device() {
    run_guard(&gpipe(2, 4).unwrap(), 51, 1);
}

#[test]
fn one_f1b_training_is_bit_identical_to_single_device() {
    run_guard(&one_f1b(2, 4).unwrap(), 52, 1);
}

#[test]
fn four_stage_one_f1b_is_bit_identical_to_single_device() {
    run_guard(&one_f1b(4, 8).unwrap(), 53, 1);
}

/// PP×TP composition is inside the determinism contract: sharding every
/// stage over a 2-way model axis (real ring collectives between shard
/// actors) must still be bit-identical to single-device training.
#[test]
fn tensor_parallel_one_f1b_is_bit_identical_to_single_device() {
    run_guard(&one_f1b(2, 4).unwrap(), 55, 2);
}

/// Recovery is part of the determinism contract too: a run that loses an
/// actor mid-training, respawns it via `Runtime::recover`, restores the
/// driver-held snapshot, and retries the step must be **bit-identical**
/// to a run that was never interrupted — same losses, same parameters.
#[test]
fn recovered_training_is_bit_identical_to_uninterrupted() {
    let schedule = gpipe(4, 4).unwrap();
    let seed = 54;
    let model = mlp_chain(6, 3, 4, schedule.n_stages(), seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
        .collect()];
    let optimizer = Optimizer::Sgd { lr: 0.05 };
    let build = || -> Trainer {
        let t = compile_train_step(
            &model.jaxpr,
            model.n_params,
            &schedule,
            optimizer,
            CompileOptions::default(),
        )
        .unwrap();
        t.init(&model.init).unwrap();
        t
    };
    let smooth = build();
    let bumpy = build();
    // The interrupted run records spans too: traced recovery must stay
    // bit-identical to an untraced uninterrupted run.
    bumpy.runtime().set_tracing(true);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    for step in 0..4 {
        if step == 2 {
            // Kill stage 1 mid-stream; `step_with_recovery` must absorb
            // the death, respawn, restore, and retry transparently.
            bumpy
                .runtime()
                .inject_fault(1, Fault::DieAtInstr(2))
                .unwrap();
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
}
