//! Integration: automatic stage marking — an unmarked traced model is
//! cut into balanced stages and trains through the MPMD runtime exactly
//! like the hand-marked equivalent.

#![allow(clippy::needless_range_loop)]

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::{Jaxpr, Tensor, TraceCtx};
use raxpp_sched::one_f1b;
use raxpp_taskgraph::auto_mark_stages;

fn unmarked_mlp(layers: usize, width: usize) -> (Jaxpr, usize, Vec<Tensor>) {
    use raxpp_ir::rng::SeedableRng;
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..layers).map(|_| ctx.input([width, width])).collect();
    let x = ctx.input([2, width]);
    let mut h = x;
    for w in &ws {
        h = h.matmul(w).unwrap().tanh();
    }
    let loss = h.mul(&h).unwrap().sum().scale(0.5);
    let jaxpr = ctx.finish(&[loss]).unwrap();
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(61);
    let init = (0..layers)
        .map(|_| Tensor::randn([width, width], 1.0 / (width as f32).sqrt(), &mut rng))
        .collect();
    (jaxpr, layers, init)
}

#[test]
fn auto_marked_model_trains_like_reference() {
    let (jaxpr, n_params, init) = unmarked_mlp(6, 8);
    let marked = auto_mark_stages(&jaxpr, 3).unwrap();
    let schedule = one_f1b(3, 6).unwrap();
    let trainer = compile_train_step(
        &marked,
        n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.0 },
        CompileOptions {
            fetch_grads: true,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    trainer.init(&init).unwrap();

    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(62);
    let data: Vec<Vec<Tensor>> = vec![(0..6)
        .map(|_| Tensor::randn([2, 8], 1.0, &mut rng))
        .collect()];
    let out = trainer.step(&data).unwrap();
    let grads = out.grads.unwrap();

    // Reference on the *unmarked* graph: identical function.
    let wrt: Vec<usize> = (0..n_params).collect();
    let g = raxpp_ir::value_and_grad(&jaxpr, &wrt).unwrap();
    let mut expect: Vec<Option<Tensor>> = vec![None; n_params];
    for mb in 0..6 {
        let mut args = init.clone();
        args.push(data[0][mb].clone());
        let outs = raxpp_ir::eval(&g, &args).unwrap();
        for p in 0..n_params {
            let gp = outs[1 + p].clone();
            expect[p] = Some(match expect[p].take() {
                None => gp,
                Some(acc) => acc.zip(&gp, |a, b| a + b).unwrap(),
            });
        }
    }
    for (p, (got, want)) in grads.iter().zip(&expect).enumerate() {
        assert!(
            got.allclose(want.as_ref().unwrap(), 1e-4),
            "auto-marked gradient {p} mismatch"
        );
    }
}
