//! Integration: the paper's activation-memory claims (§2.2.1, Figure 2)
//! measured on *real execution* — the threaded runtime's object-store
//! high-water marks, not a model.

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_sched::{gpipe, one_f1b, Schedule};

/// Runs one step and returns the first actor's peak store bytes.
fn peak_bytes_actor0(schedule: &Schedule, layers: usize, width: usize, seed: u64) -> usize {
    let model = mlp_chain(width, 4, layers, schedule.n_stages(), seed).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        Optimizer::Sgd { lr: 0.01 },
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([4, width], 1.0, &mut rng))
        .collect()];
    trainer.step(&data).unwrap();
    trainer.runtime().peak_store_bytes().unwrap()[0]
}

#[test]
fn one_f1b_uses_less_memory_than_gpipe() {
    // 16 microbatches over 2 stages: GPipe's first actor must retain all
    // 16 microbatches of saved activations; 1F1B caps it at the stage
    // count (paper: "potentially a 2x-3x reduction in activation
    // memory").
    let layers = 4;
    let width = 16;
    let gpipe_peak = peak_bytes_actor0(&gpipe(2, 16).unwrap(), layers, width, 11);
    let f1b_peak = peak_bytes_actor0(&one_f1b(2, 16).unwrap(), layers, width, 11);
    assert!(
        (f1b_peak as f64) < 0.6 * gpipe_peak as f64,
        "1F1B peak {f1b_peak} should be well under GPipe peak {gpipe_peak}"
    );
}

#[test]
fn gpipe_memory_grows_with_microbatches_in_practice() {
    let layers = 4;
    let width = 16;
    let small = peak_bytes_actor0(&gpipe(2, 4).unwrap(), layers, width, 12);
    let large = peak_bytes_actor0(&gpipe(2, 16).unwrap(), layers, width, 12);
    assert!(
        large as f64 > 2.5 * small as f64,
        "GPipe peak should scale with microbatches: {small} -> {large}"
    );
}

#[test]
fn one_f1b_memory_is_flat_in_microbatches_in_practice() {
    let layers = 4;
    let width = 16;
    let small = peak_bytes_actor0(&one_f1b(2, 4).unwrap(), layers, width, 13);
    let large = peak_bytes_actor0(&one_f1b(2, 16).unwrap(), layers, width, 13);
    assert!(
        (large as f64) < 1.5 * small as f64,
        "1F1B peak should be ~flat in microbatches: {small} -> {large}"
    );
}
