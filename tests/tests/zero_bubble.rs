//! Integration: the zero-bubble (split-backward) extension — correct
//! gradients through the executable MPMD runtime, and the expected
//! performance shape on the cluster simulator.

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::Tensor;
use raxpp_models::{mlp_chain, ModelConfig};
use raxpp_sched::{one_f1b, zero_bubble_h1, Dir};
use raxpp_simcluster::{simulate_pipeline, ClusterSpec, ParallelConfig, ScheduleKind, SimOptions};

#[test]
fn split_backward_training_matches_combined() {
    // Same model, same data: ZB-H1 (split backward) and 1F1B (combined)
    // are different factorizations of the same gradient computation.
    let model = mlp_chain(6, 2, 4, 4, 71).unwrap();
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(72);
    let data: Vec<Vec<Tensor>> = vec![(0..8)
        .map(|_| Tensor::randn([2, 6], 1.0, &mut rng))
        .collect()];

    let mut all = Vec::new();
    for schedule in [one_f1b(4, 8).unwrap(), zero_bubble_h1(4, 8).unwrap()] {
        let trainer = compile_train_step(
            &model.jaxpr,
            model.n_params,
            &schedule,
            Optimizer::Sgd { lr: 0.03 },
            CompileOptions {
                fetch_grads: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        trainer.init(&model.init).unwrap();
        let mut losses = Vec::new();
        let mut grads = None;
        for step in 0..4 {
            let r = trainer.step(&data).unwrap();
            losses.push(r.mean_loss);
            if step == 0 {
                grads = r.grads;
            }
        }
        all.push((losses, grads.unwrap(), trainer.params().unwrap()));
    }
    let (l0, g0, p0) = &all[0];
    let (l1, g1, p1) = &all[1];
    for (a, b) in l0.iter().zip(l1) {
        assert!(
            (a - b).abs() <= 1e-4 * a.abs().max(1.0),
            "losses diverge: {a} vs {b}"
        );
    }
    for (p, (a, b)) in g0.iter().zip(g1).enumerate() {
        assert!(
            a.allclose(b, 1e-4),
            "grad {p} differs between combined and split"
        );
    }
    for (p, (a, b)) in p0.iter().zip(p1).enumerate() {
        assert!(a.allclose(b, 1e-3), "param {p} diverged after 4 steps");
    }
}

#[test]
fn split_backward_schedules_issue_wgrad_tasks() {
    let s = zero_bubble_h1(2, 4).unwrap();
    assert!(s.split_backward());
    let w = s
        .actors()
        .iter()
        .flatten()
        .filter(|t| t.dir == Dir::BwdW)
        .count();
    assert_eq!(w, 2 * 4);
}

#[test]
fn zero_bubble_beats_1f1b_at_paper_scale() {
    // Extension experiment: GPT-3 at PP=8/TP=8, GA=32 — splitting the
    // backward shortens the drain and fills bubbles with W work.
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    let base = ParallelConfig {
        pp: 8,
        tp: 8,
        dp: 1,
        microbatch: 4,
        n_microbatches: 32,
        circular_repeat: 1,
        schedule: ScheduleKind::OneF1B,
    };
    let f1b = simulate_pipeline(&gpt3, base, &eos, &SimOptions::default()).unwrap();
    let zb = simulate_pipeline(
        &gpt3,
        ParallelConfig {
            schedule: ScheduleKind::ZeroBubbleH1,
            ..base
        },
        &eos,
        &SimOptions::default(),
    )
    .unwrap();
    assert!(
        zb.step_time < f1b.step_time,
        "zero-bubble {:.2}s should beat 1F1B {:.2}s",
        zb.step_time,
        f1b.step_time
    );
    assert!(zb.breakdown.bubble < f1b.breakdown.bubble);
}
