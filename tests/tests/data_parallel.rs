//! Executable data parallelism (PP×TP×DP composition): a pipeline
//! replicated over a DP axis must train end-to-end **bit-identical** to
//! the single-replica pipeline — same losses, same parameters, same
//! checkpoints — while actually exchanging gradient shards through real
//! DP-axis collectives, with and without ZeRO-1 optimizer-state
//! sharding, and the whole composition must survive fault injection,
//! recovery, and elastic rebalance.

use std::time::Duration;

use raxpp_core::{
    compile_train_step, CompileOptions, CoreError, DpConfig, Optimizer, RetryPolicy, TpConfig,
    Trainer,
};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::Fault;
use raxpp_sched::{gpipe, one_f1b, DpMap, Schedule, TpMap};
use raxpp_taskgraph::{CollectiveAxis, Instr, TaskLabel};

fn build(
    model: &BuiltModel,
    schedule: &Schedule,
    tp: usize,
    dp: Option<DpConfig>,
    optimizer: Optimizer,
) -> Trainer {
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        optimizer,
        CompileOptions {
            tp: (tp > 1).then(|| TpConfig::model_parallel(tp)),
            dp,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    t.init(&model.init).unwrap();
    t
}

fn mb_data(schedule: &Schedule, width: usize, batch: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([batch, width], 1.0, &mut rng))
        .collect()]
}

fn count_dp_collectives(t: &Trainer) -> usize {
    t.runtime()
        .program()
        .actors
        .iter()
        .flatten()
        .filter(|i| {
            matches!(
                i,
                Instr::Collective {
                    axis: CollectiveAxis::Dp,
                    ..
                }
            )
        })
        .count()
}

/// The headline contract: for every (schedule × dp degree × tp degree)
/// cell, losses and updated parameters are bit-for-bit equal to the
/// dp=1 run of the same model, and the replicated program really
/// contains DP-axis collectives and gradient-shard masks.
#[test]
fn dp_training_is_bitwise_identical_across_degrees() {
    let optimizer = Optimizer::Momentum {
        lr: 0.05,
        momentum: 0.9,
    };
    for (schedule, seed) in [(gpipe(2, 4).unwrap(), 181), (one_f1b(2, 4).unwrap(), 182)] {
        let model = mlp_chain(8, 2, 2, schedule.n_stages(), seed).unwrap();
        let data = mb_data(&schedule, 8, 2, seed + 1);

        let baseline = build(&model, &schedule, 1, None, optimizer);
        let mut base_losses = Vec::new();
        for _ in 0..3 {
            base_losses.push(baseline.step(&data).unwrap().losses);
        }
        let base_params = baseline.params().unwrap();

        for (dp, tp) in [(2usize, 1usize), (4, 1), (2, 2)] {
            let trainer = build(
                &model,
                &schedule,
                tp,
                Some(DpConfig::replicas(dp)),
                optimizer,
            );
            assert_eq!(trainer.dp_degree(), dp);
            let program = trainer.runtime().program();
            let base = TpMap::new(tp).n_shard_actors(schedule.n_actors());
            assert_eq!(
                program.actors.len(),
                DpMap::new(dp, base).n_actors(),
                "{} dp={dp} tp={tp}: one stream per (replica, actor, rank)",
                schedule.name()
            );
            assert!(
                count_dp_collectives(&trainer) > 0,
                "dp={dp} tp={tp}: no DP collectives lowered"
            );
            assert!(
                program.actors.iter().flatten().any(|i| matches!(
                    i,
                    Instr::Run {
                        label: TaskLabel::GradShard { .. },
                        ..
                    }
                )),
                "dp={dp} tp={tp}: no gradient-shard masks lowered"
            );

            for (step, want) in base_losses.iter().enumerate() {
                let got = trainer.step(&data).unwrap();
                assert_eq!(
                    &got.losses,
                    want,
                    "{} dp={dp} tp={tp} step {step}: losses not bit-identical",
                    schedule.name()
                );
            }
            assert!(
                trainer.metrics().counter("dp_collectives_total") > 0,
                "dp={dp} tp={tp}: no DP collectives executed"
            );
            assert!(
                trainer.metrics().counter("dp_bytes_wire") > 0,
                "dp={dp} tp={tp}: no DP wire bytes recorded"
            );
            let params = trainer.params().unwrap();
            for (p, (a, b)) in params.iter().zip(&base_params).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "{} dp={dp} tp={tp}: param {p} not bit-identical",
                    schedule.name()
                );
            }
        }
    }
}

/// ZeRO-1: each replica owns one last-dim slice of every Adam moment,
/// computes its slice of the update, and a second DP all-reduce folds
/// the parameter contributions — bit-identical to the unsharded dp=1
/// Adam run, with twice the DP collectives of the plain-DP program.
#[test]
fn zero1_training_is_bitwise_identical() {
    let optimizer = Optimizer::adam(0.01);
    let schedule = gpipe(2, 4).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 191).unwrap();
    let data = mb_data(&schedule, 8, 2, 192);

    let baseline = build(&model, &schedule, 1, None, optimizer);
    let mut base_losses = Vec::new();
    for _ in 0..3 {
        base_losses.push(baseline.step(&data).unwrap().losses);
    }
    let base_params = baseline.params().unwrap();

    for dp in [2usize, 4] {
        let plain = build(
            &model,
            &schedule,
            1,
            Some(DpConfig::replicas(dp)),
            optimizer,
        );
        let trainer = build(&model, &schedule, 1, Some(DpConfig::zero1(dp)), optimizer);
        assert!(trainer.zero1());
        assert_eq!(
            count_dp_collectives(&trainer),
            2 * count_dp_collectives(&plain),
            "dp={dp}: ZeRO-1 must add a parameter-fold collective per update"
        );
        for (step, want) in base_losses.iter().enumerate() {
            let got = trainer.step(&data).unwrap();
            assert_eq!(
                &got.losses, want,
                "zero1 dp={dp} step {step}: losses not bit-identical"
            );
        }
        let params = trainer.params().unwrap();
        for (p, (a, b)) in params.iter().zip(&base_params).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "zero1 dp={dp}: param {p} not bit-identical"
            );
        }
    }
}

/// Checkpoints are DP-invariant: captured state is always full-shape
/// (ZeRO-1 slices are reassembled replica-ascending), so a dp=2 ZeRO-1
/// checkpoint is byte-identical to the dp=1 checkpoint and restores
/// cleanly across DP degrees in both directions.
#[test]
fn dp_checkpoints_are_byte_identical_and_portable() {
    let optimizer = Optimizer::Momentum {
        lr: 0.05,
        momentum: 0.9,
    };
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 201).unwrap();
    let data = mb_data(&schedule, 8, 2, 202);

    let t1 = build(&model, &schedule, 1, None, optimizer);
    let t2 = build(&model, &schedule, 1, Some(DpConfig::zero1(2)), optimizer);
    t1.step(&data).unwrap();
    t2.step(&data).unwrap();
    let mut ck1 = Vec::new();
    let mut ck2 = Vec::new();
    t1.save_checkpoint(&mut ck1).unwrap();
    t2.save_checkpoint(&mut ck2).unwrap();
    assert_eq!(ck1, ck2, "dp=2 ZeRO-1 checkpoint differs from dp=1");

    // Cross-restore in both directions, then continue bit-identically.
    t2.restore_checkpoint(&ck1[..]).unwrap();
    t1.restore_checkpoint(&ck2[..]).unwrap();
    let a = t1.step(&data).unwrap();
    let b = t2.step(&data).unwrap();
    assert_eq!(a.losses, b.losses, "post-cross-restore step diverged");
}

/// Failure recovery composes with DP: killing a replica actor
/// mid-stream — aimed at its first DP collective, so its group peers
/// are parked in the rendezvous — must cascade-abort, respawn, restore,
/// and stay bit-identical to an uninterrupted dp=1 run, within a
/// bounded wall-clock.
#[test]
fn dp_replica_death_mid_all_reduce_recovers_bitwise() {
    let optimizer = Optimizer::Momentum {
        lr: 0.05,
        momentum: 0.9,
    };
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 211).unwrap();
    let data = mb_data(&schedule, 8, 2, 212);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    let smooth = build(&model, &schedule, 1, None, optimizer);
    let bumpy = build(&model, &schedule, 1, Some(DpConfig::replicas(2)), optimizer);
    // Replica 1's copy of the update owner: find a raw actor in the
    // second replica block whose stream has a DP collective, and aim
    // the fault at that instruction.
    let program = bumpy.runtime().program();
    let base = program.actors.len() / 2;
    let (victim, coll_at) = (base..2 * base)
        .find_map(|a| {
            program.actors[a]
                .iter()
                .position(|i| {
                    matches!(
                        i,
                        Instr::Collective {
                            axis: CollectiveAxis::Dp,
                            ..
                        }
                    )
                })
                .map(|idx| (a, idx))
        })
        .expect("replica 1 has a DP collective");

    let t0 = std::time::Instant::now();
    for step in 0..3 {
        if step == 1 {
            bumpy
                .runtime()
                .inject_fault(victim, Fault::DieAtInstr(coll_at))
                .unwrap();
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    assert!(
        bumpy.metrics().counter("recoveries_total") >= 1,
        "fault was never recovered"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "DP fault recovery was not bounded: {:?}",
        t0.elapsed()
    );
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
    // Recovery must not leak rendezvous slots.
    assert_eq!(bumpy.runtime().lane_live_slots(), 0, "stale slots leaked");
}

/// Elastic rebalance composes with DP (and DP×TP): folding a dead host
/// away retires its actors in **every** replica uniformly, DP groups
/// remap onto the survivors, and training continues bit-identical.
#[test]
fn dp_rebalance_folds_bitwise() {
    let optimizer = Optimizer::Sgd { lr: 0.05 };
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 221).unwrap();
    let data = mb_data(&schedule, 8, 2, 222);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    let smooth = build(&model, &schedule, 1, None, optimizer);
    let bumpy = build(&model, &schedule, 2, Some(DpConfig::replicas(2)), optimizer);
    let a = smooth.step_with_recovery(&data, policy).unwrap();
    let b = bumpy.step_with_recovery(&data, policy).unwrap();
    assert_eq!(a.losses, b.losses, "pre-fold step diverged");

    // dp=2 × tp=2 × 2 hosts = 8 raw actors; killing raw actor 2 (host
    // 1, rank 0, replica 0) must fold host 1 in BOTH replicas: retired
    // = {2, 3, 6, 7}.
    let report = bumpy.rebalance(&[2]).unwrap();
    assert_eq!(
        report.retired,
        vec![2, 3, 6, 7],
        "fold must retire the host group in every replica"
    );
    for step in 1..3 {
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(
            a.losses, b.losses,
            "step {step}: losses diverged after fold"
        );
    }
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical after fold");
    }
    for i in bumpy.runtime().program().actors.iter().flatten() {
        if let Instr::Collective { group, .. } = i {
            assert!(
                group.iter().all(|m| ![2, 3, 6, 7].contains(m)),
                "collective group references a retired actor: {group:?}"
            );
        }
    }
    assert_eq!(bumpy.runtime().lane_live_slots(), 0, "stale slots leaked");
}

/// ZeRO-1 composes with TP only at tp=1 — requesting both must be
/// refused at compile time, not produce a silently wrong program.
#[test]
fn zero1_under_tp_is_rejected() {
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 231).unwrap();
    let err = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::adam(0.01),
        CompileOptions {
            tp: Some(TpConfig::model_parallel(2)),
            dp: Some(DpConfig::zero1(2)),
            ..CompileOptions::default()
        },
    )
    .expect_err("zero1 + tp>1 must be rejected");
    match err {
        CoreError::BadInput(msg) => assert!(msg.contains("ZeRO-1"), "msg: {msg}"),
        other => panic!("expected BadInput, got {other:?}"),
    }
}
