//! Executable data parallelism (PP×TP×DP composition) under **batch
//! sharding**: each replica consumes a disjoint `1/d` slice of the
//! global batch and the DP all-reduce is a true gradient sum. The
//! determinism contract is two-tier (`docs/determinism.md`):
//!
//! * **Tier 1 — fixed degree, bitwise.** At any fixed `d`, runs are
//!   bitwise-reproducible through faults, recovery, elastic rebalance,
//!   checkpoint save/resume, and lane↔serial collective modes.
//! * **Tier 2 — across degrees, bounded.** Step-0 (pre-update)
//!   per-microbatch losses are bitwise equal for every `d` over the
//!   same global batch; after updates, losses and parameters agree
//!   within fp32-summation bounds (the gradient fold associates
//!   differently for different `d`).

use std::time::Duration;

use raxpp_core::{
    compile_train_step, CompileOptions, DpConfig, Optimizer, RetryPolicy, TpConfig, Trainer,
};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::Fault;
use raxpp_sched::{gpipe, one_f1b, DpMap, Schedule, TpMap};
use raxpp_taskgraph::{CollectiveAxis, Instr};

fn build(
    model: &BuiltModel,
    schedule: &Schedule,
    tp: usize,
    dp: Option<DpConfig>,
    optimizer: Optimizer,
) -> Trainer {
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        optimizer,
        CompileOptions {
            tp: (tp > 1).then(|| TpConfig::model_parallel(tp)),
            dp,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    t.init(&model.init).unwrap();
    t
}

/// One global batch of `n_mubatches` microbatches — the same tensors
/// whatever DP degree consumes them.
fn mb_data(n_mubatches: usize, width: usize, batch: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![(0..n_mubatches)
        .map(|_| Tensor::randn([batch, width], 1.0, &mut rng))
        .collect()]
}

fn count_dp_collectives(t: &Trainer) -> usize {
    t.runtime()
        .program()
        .actors
        .iter()
        .flatten()
        .filter(|i| {
            matches!(
                i,
                Instr::Collective {
                    axis: CollectiveAxis::Dp,
                    ..
                }
            )
        })
        .count()
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * x.abs().max(1.0),
            "{what}[{i}]: {x} vs {y} beyond tolerance {tol}"
        );
    }
}

/// Tier 2: sharding the same global batch over `d` replicas reproduces
/// the dp=1 step-0 losses bitwise (pre-update forwards are independent
/// per microbatch), tracks the dp=1 trajectory within fp32-summation
/// bounds afterwards, and executes exactly `N/d` microbatches per
/// replica through real DP-axis gradient-sum collectives.
#[test]
fn dp_shards_the_batch_and_tracks_dp1_within_bounds() {
    const GLOBAL_MB: usize = 8;
    let optimizer = Optimizer::Momentum {
        lr: 0.05,
        momentum: 0.9,
    };
    for (use_gpipe, seed) in [(true, 181u64), (false, 182)] {
        let sched = |n: usize| {
            if use_gpipe {
                gpipe(2, n).unwrap()
            } else {
                one_f1b(2, n).unwrap()
            }
        };
        let model = mlp_chain(8, 2, 2, 2, seed).unwrap();
        let data = mb_data(GLOBAL_MB, 8, 2, seed + 1);

        let base_schedule: Schedule = sched(GLOBAL_MB);
        let baseline = build(&model, &base_schedule, 1, None, optimizer);
        let mut base_losses = Vec::new();
        for _ in 0..3 {
            base_losses.push(baseline.step(&data).unwrap().losses);
        }
        let base_params = baseline.params().unwrap();

        for (dp, tp) in [(2usize, 1usize), (4, 1), (2, 2)] {
            // The schedule describes one replica: N/d local microbatches.
            let schedule: Schedule = sched(GLOBAL_MB / dp);
            let trainer = build(
                &model,
                &schedule,
                tp,
                Some(DpConfig::replicas(dp)),
                optimizer,
            );
            assert_eq!(trainer.dp_degree(), dp);
            assert_eq!(
                trainer.n_mubatches(),
                GLOBAL_MB,
                "dp={dp}: global batch must be d × the per-replica schedule"
            );
            let program = trainer.runtime().program();
            let base = TpMap::new(tp).n_shard_actors(schedule.n_actors());
            assert_eq!(
                program.actors.len(),
                DpMap::new(dp, base).n_actors(),
                "{} dp={dp} tp={tp}: one stream per (replica, actor, rank)",
                schedule.name()
            );
            assert!(
                count_dp_collectives(&trainer) > 0,
                "dp={dp} tp={tp}: no DP collectives lowered"
            );

            // Step 0: pre-update forwards — bitwise across degrees.
            let got = trainer.step(&data).unwrap();
            assert_eq!(
                got.losses,
                base_losses[0],
                "{} dp={dp} tp={tp}: step-0 losses not bit-identical",
                schedule.name()
            );
            // Later steps: the gradient sum associates differently, so
            // the trajectory agrees within bounds, not bitwise.
            for (step, want) in base_losses.iter().enumerate().skip(1) {
                let got = trainer.step(&data).unwrap();
                assert_close(
                    &got.losses,
                    want,
                    1e-4,
                    &format!("{} dp={dp} tp={tp} step {step} losses", schedule.name()),
                );
            }
            assert!(
                trainer.metrics().counter("dp_collectives_total") > 0,
                "dp={dp} tp={tp}: no DP collectives executed"
            );
            assert!(
                trainer.metrics().counter("dp_bytes_wire") > 0,
                "dp={dp} tp={tp}: no DP wire bytes recorded"
            );
            assert_eq!(
                trainer.metrics().gauge("dp_microbatches_per_replica"),
                Some((GLOBAL_MB / dp) as f64),
                "dp={dp} tp={tp}: wrong per-replica microbatch accounting"
            );
            let params = trainer.params().unwrap();
            for (p, (a, b)) in params.iter().zip(&base_params).enumerate() {
                assert_close(
                    a.data(),
                    b.data(),
                    1e-4,
                    &format!("{} dp={dp} tp={tp} param {p}", schedule.name()),
                );
            }
        }
    }
}

/// Tier 1: at a fixed degree, two identical runs — one in lane mode,
/// one on the serial collective ring — are bitwise equal, losses and
/// parameters, step after step.
#[test]
fn dp_runs_are_bitwise_reproducible_at_fixed_degree() {
    const GLOBAL_MB: usize = 4;
    let optimizer = Optimizer::Momentum {
        lr: 0.05,
        momentum: 0.9,
    };
    let schedule = gpipe(2, GLOBAL_MB / 2).unwrap();
    let model = mlp_chain(8, 2, 2, 2, 241).unwrap();
    let data = mb_data(GLOBAL_MB, 8, 2, 242);

    let lanes = build(&model, &schedule, 2, Some(DpConfig::replicas(2)), optimizer);
    let serial = build(&model, &schedule, 2, Some(DpConfig::replicas(2)), optimizer);
    serial.set_tp_lanes(false);
    for step in 0..3 {
        let a = lanes.step(&data).unwrap();
        let b = serial.step(&data).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: lanes vs serial diverged");
    }
    let pa = lanes.params().unwrap();
    let pb = serial.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p}: lanes vs serial diverged");
    }
}

/// ZeRO-1 is a pure re-layout of the same-degree update: slicing the
/// parameter and summed gradient first-dim, updating the slice, and
/// folding the disjoint `-0.0`-padded contributions is bitwise equal to
/// the plain-DP full update — at the same degree, with twice the DP
/// collectives, and composed with tensor parallelism.
#[test]
fn zero1_matches_plain_dp_bitwise_and_composes_with_tp() {
    const GLOBAL_MB: usize = 8;
    let optimizer = Optimizer::adam(0.01);
    let model = mlp_chain(8, 2, 2, 2, 191).unwrap();
    let data = mb_data(GLOBAL_MB, 8, 2, 192);

    for (dp, tp) in [(2usize, 1usize), (4, 1), (2, 2)] {
        let schedule = gpipe(2, GLOBAL_MB / dp).unwrap();
        let plain = build(
            &model,
            &schedule,
            tp,
            Some(DpConfig::replicas(dp)),
            optimizer,
        );
        let sharded = build(&model, &schedule, tp, Some(DpConfig::zero1(dp)), optimizer);
        assert!(sharded.zero1());
        assert_eq!(sharded.tp_degree(), tp);
        assert_eq!(
            count_dp_collectives(&sharded),
            2 * count_dp_collectives(&plain),
            "dp={dp} tp={tp}: ZeRO-1 must add a parameter-fold collective per update"
        );
        for step in 0..3 {
            let a = plain.step(&data).unwrap();
            let b = sharded.step(&data).unwrap();
            assert_eq!(
                a.losses, b.losses,
                "zero1 dp={dp} tp={tp} step {step}: losses not bit-identical"
            );
        }
        let pa = plain.params().unwrap();
        let pb = sharded.params().unwrap();
        for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "zero1 dp={dp} tp={tp}: param {p} not bit-identical"
            );
        }
    }
}

/// Checkpoints are DP-layout-invariant at a fixed trajectory: captured
/// state is always full-shape (ZeRO-1 first-dim moment slices are
/// reassembled replica-ascending), so the same-degree ZeRO-1 and
/// plain-DP checkpoints are byte-identical, and a dp=2 checkpoint
/// restores at dp=1 and dp=4 — optimizer state re-slices per replica —
/// with the resumed trajectories agreeing within tier-2 bounds.
#[test]
fn dp_checkpoints_are_portable_across_degrees() {
    const GLOBAL_MB: usize = 4;
    let optimizer = Optimizer::adam(0.01);
    let model = mlp_chain(8, 2, 2, 2, 201).unwrap();
    let data = mb_data(GLOBAL_MB, 8, 2, 202);

    let plain = build(
        &model,
        &gpipe(2, 2).unwrap(),
        1,
        Some(DpConfig::replicas(2)),
        optimizer,
    );
    let sharded = build(
        &model,
        &gpipe(2, 2).unwrap(),
        1,
        Some(DpConfig::zero1(2)),
        optimizer,
    );
    for _ in 0..2 {
        plain.step(&data).unwrap();
        sharded.step(&data).unwrap();
    }
    let mut ck_plain = Vec::new();
    let mut ck = Vec::new();
    plain.save_checkpoint(&mut ck_plain).unwrap();
    sharded.save_checkpoint(&mut ck).unwrap();
    assert_eq!(
        ck_plain, ck,
        "same-degree ZeRO-1 checkpoint differs from plain DP"
    );
    let ck_params = sharded.params().unwrap();

    // Same-degree resume continues bitwise (tier 1).
    let resumed = build(
        &model,
        &gpipe(2, 2).unwrap(),
        1,
        Some(DpConfig::zero1(2)),
        optimizer,
    );
    resumed.restore_checkpoint(&ck[..]).unwrap();
    let want = sharded.step(&data).unwrap();
    let got = resumed.step(&data).unwrap();
    assert_eq!(got.losses, want.losses, "same-degree resume diverged");

    // Cross-degree resume: dp=2 state adopted at dp=1 and dp=4 (the
    // full-shape moments re-slice into 1 and 4 first-dim shards), then
    // one more step over the same global batch lands within bounds.
    for dp in [1usize, 4] {
        let schedule = gpipe(2, GLOBAL_MB / dp).unwrap();
        let other = build(
            &model,
            &schedule,
            1,
            (dp > 1).then(|| DpConfig::zero1(dp)),
            optimizer,
        );
        other.restore_checkpoint(&ck[..]).unwrap();
        // Restored parameters are the checkpointed ones, bit for bit.
        for (p, (a, b)) in other.params().unwrap().iter().zip(&ck_params).enumerate() {
            assert_eq!(a.data(), b.data(), "dp={dp}: restored param {p} differs");
        }
        let got = other.step(&data).unwrap();
        assert_close(
            &got.losses,
            &want.losses,
            1e-4,
            &format!("dp={dp} post-resume losses"),
        );
    }
}

/// Tier 1 through faults: killing a replica actor mid-stream — aimed at
/// its first DP collective, so its group peers are parked in the
/// rendezvous — must cascade-abort, respawn, restore, and stay
/// bit-identical to an uninterrupted run of the same degree, within a
/// bounded wall-clock.
#[test]
fn dp_replica_death_mid_all_reduce_recovers_bitwise() {
    let optimizer = Optimizer::Momentum {
        lr: 0.05,
        momentum: 0.9,
    };
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, 2, 211).unwrap();
    let data = mb_data(4, 8, 2, 212);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    let smooth = build(&model, &schedule, 1, Some(DpConfig::replicas(2)), optimizer);
    let bumpy = build(&model, &schedule, 1, Some(DpConfig::replicas(2)), optimizer);
    // Replica 1's copy of the update owner: find a raw actor in the
    // second replica block whose stream has a DP collective, and aim
    // the fault at that instruction.
    let program = bumpy.runtime().program();
    let base = program.actors.len() / 2;
    let (victim, coll_at) = (base..2 * base)
        .find_map(|a| {
            program.actors[a]
                .iter()
                .position(|i| {
                    matches!(
                        i,
                        Instr::Collective {
                            axis: CollectiveAxis::Dp,
                            ..
                        }
                    )
                })
                .map(|idx| (a, idx))
        })
        .expect("replica 1 has a DP collective");

    let t0 = std::time::Instant::now();
    for step in 0..3 {
        if step == 1 {
            bumpy
                .runtime()
                .inject_fault(victim, Fault::DieAtInstr(coll_at))
                .unwrap();
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    assert!(
        bumpy.metrics().counter("recoveries_total") >= 1,
        "fault was never recovered"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "DP fault recovery was not bounded: {:?}",
        t0.elapsed()
    );
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
    // Recovery must not leak rendezvous slots.
    assert_eq!(bumpy.runtime().lane_live_slots(), 0, "stale slots leaked");
}

/// Tier 1 through elastic rebalance: folding a dead host away retires
/// its actors in **every** replica uniformly, DP groups remap onto the
/// survivors, and training continues bit-identical to an unfolded run
/// of the same degree.
#[test]
fn dp_rebalance_folds_bitwise() {
    let optimizer = Optimizer::Sgd { lr: 0.05 };
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, 2, 221).unwrap();
    let data = mb_data(4, 8, 2, 222);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    let smooth = build(&model, &schedule, 2, Some(DpConfig::replicas(2)), optimizer);
    let bumpy = build(&model, &schedule, 2, Some(DpConfig::replicas(2)), optimizer);
    let a = smooth.step_with_recovery(&data, policy).unwrap();
    let b = bumpy.step_with_recovery(&data, policy).unwrap();
    assert_eq!(a.losses, b.losses, "pre-fold step diverged");

    // dp=2 × tp=2 × 2 hosts = 8 raw actors; killing raw actor 2 (host
    // 1, rank 0, replica 0) must fold host 1 in BOTH replicas: retired
    // = {2, 3, 6, 7}.
    let report = bumpy.rebalance(&[2]).unwrap();
    assert_eq!(
        report.retired,
        vec![2, 3, 6, 7],
        "fold must retire the host group in every replica"
    );
    for step in 1..3 {
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(
            a.losses, b.losses,
            "step {step}: losses diverged after fold"
        );
    }
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical after fold");
    }
    for i in bumpy.runtime().program().actors.iter().flatten() {
        if let Instr::Collective { group, .. } = i {
            assert!(
                group.iter().all(|m| ![2, 3, 6, 7].contains(m)),
                "collective group references a retired actor: {group:?}"
            );
        }
    }
    assert_eq!(bumpy.runtime().lane_live_slots(), 0, "stale slots leaked");
}

/// The full tier-1 sweep in one trajectory: a dp=2 × tp=2 ZeRO-1 run
/// that survives an injected death, an elastic fold, and a lane→serial
/// mode flip stays bitwise equal — losses every step, parameters at the
/// end — to an undisturbed run of the same degree.
#[test]
fn dp_fixed_degree_determinism_sweep() {
    let optimizer = Optimizer::adam(0.01);
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, 2, 251).unwrap();
    let data = mb_data(4, 8, 2, 252);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    let smooth = build(&model, &schedule, 2, Some(DpConfig::zero1(2)), optimizer);
    let chaos = build(&model, &schedule, 2, Some(DpConfig::zero1(2)), optimizer);

    for step in 0..4 {
        match step {
            // Step 1: kill a replica-1 actor mid-step, recover bitwise.
            1 => chaos
                .runtime()
                .inject_fault(4, Fault::DieAtInstr(1))
                .unwrap(),
            // Step 2: fold host 1 away in both replicas.
            2 => {
                chaos.rebalance(&[2]).unwrap();
            }
            // Step 3: switch every collective to the serial ring.
            3 => chaos.set_tp_lanes(false),
            _ => {}
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = chaos.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    let pa = smooth.params().unwrap();
    let pb = chaos.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} diverged after the sweep");
    }
    assert_eq!(chaos.runtime().lane_live_slots(), 0, "stale slots leaked");
}
