//! Integration: multi-step pipelined training on the threaded MPMD
//! runtime must track single-device reference training exactly (up to
//! float associativity), across schedules.

#![allow(clippy::needless_range_loop)]

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::{eval, value_and_grad, Tensor};
use raxpp_models::{causal_mask, mlp_chain, one_hot, tiny_lm, BuiltModel, TinyLmConfig};
use raxpp_sched::{gpipe, interleaved_1f1b, one_f1b, Schedule};

/// Reference trainer: whole-graph autodiff + the same optimizer, run on
/// one device.
struct Reference {
    grad_graph: raxpp_ir::Jaxpr,
    params: Vec<Tensor>,
    opt_state: Vec<Vec<Tensor>>,
    optimizer: Optimizer,
    n_params: usize,
}

impl Reference {
    fn new(model: &BuiltModel, optimizer: Optimizer) -> Reference {
        let wrt: Vec<usize> = (0..model.n_params).collect();
        Reference {
            grad_graph: value_and_grad(&model.jaxpr, &wrt).unwrap(),
            params: model.init.clone(),
            opt_state: model
                .init
                .iter()
                .map(|p| optimizer.init_state(p.shape()))
                .collect(),
            optimizer,
            n_params: model.n_params,
        }
    }

    /// One step over all microbatches; returns the mean loss.
    fn step(&mut self, data: &[Vec<Tensor>]) -> f32 {
        let n_mb = data[0].len();
        let mut grads: Vec<Option<Tensor>> = vec![None; self.n_params];
        let mut loss_sum = 0.0;
        for mb in 0..n_mb {
            let mut args = self.params.clone();
            for d in data {
                args.push(d[mb].clone());
            }
            let outs = eval(&self.grad_graph, &args).unwrap();
            loss_sum += outs[0].item().unwrap();
            for p in 0..self.n_params {
                let g = outs[1 + p].clone();
                grads[p] = Some(match grads[p].take() {
                    None => g,
                    Some(acc) => acc.zip(&g, |a, b| a + b).unwrap(),
                });
            }
        }
        for p in 0..self.n_params {
            let update = self.optimizer.update_jaxpr(self.params[p].shape()).unwrap();
            let mut args = vec![self.params[p].clone(), grads[p].take().unwrap()];
            args.extend(self.opt_state[p].iter().cloned());
            let outs = eval(&update, &args).unwrap();
            self.params[p] = outs[0].clone();
            self.opt_state[p] = outs[1..].to_vec();
        }
        loss_sum / n_mb as f32
    }
}

fn mlp_data(n_mb: usize, width: usize, batch: usize, seed: u64) -> Vec<Vec<Tensor>> {
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    vec![(0..n_mb)
        .map(|_| Tensor::randn([batch, width], 1.0, &mut rng))
        .collect()]
}

fn assert_tracks_reference(model: &BuiltModel, schedule: &Schedule, optimizer: Optimizer) {
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        optimizer,
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    let mut reference = Reference::new(model, optimizer);

    let data = mlp_data(schedule.n_mubatches(), 4, 2, 99);
    for step in 0..5 {
        let got = trainer.step(&data).unwrap();
        let want = reference.step(&data);
        assert!(
            (got.mean_loss - want).abs() <= 1e-4 * want.abs().max(1.0),
            "step {step}: loss {} vs reference {want}",
            got.mean_loss
        );
        let got_params = trainer.params().unwrap();
        for (p, (gp, rp)) in got_params.iter().zip(&reference.params).enumerate() {
            assert!(
                gp.allclose(rp, 1e-3),
                "step {step}: param {p} diverged under {}",
                schedule.name()
            );
        }
    }
}

#[test]
fn sgd_training_tracks_reference_under_gpipe() {
    let model = mlp_chain(4, 2, 4, 2, 41).unwrap();
    assert_tracks_reference(&model, &gpipe(2, 4).unwrap(), Optimizer::Sgd { lr: 0.02 });
}

#[test]
fn sgd_training_tracks_reference_under_1f1b() {
    let model = mlp_chain(4, 2, 4, 4, 42).unwrap();
    assert_tracks_reference(&model, &one_f1b(4, 8).unwrap(), Optimizer::Sgd { lr: 0.02 });
}

#[test]
fn adam_training_tracks_reference_under_interleaved() {
    let model = mlp_chain(4, 2, 4, 4, 43).unwrap();
    assert_tracks_reference(
        &model,
        &interleaved_1f1b(2, 4, 2).unwrap(),
        Optimizer::adam(0.01),
    );
}

#[test]
fn momentum_training_tracks_reference() {
    let model = mlp_chain(4, 2, 2, 2, 44).unwrap();
    assert_tracks_reference(
        &model,
        &one_f1b(2, 4).unwrap(),
        Optimizer::Momentum {
            lr: 0.02,
            momentum: 0.9,
        },
    );
}

#[test]
fn all_schedules_agree_with_each_other() {
    // Same model, same data: GPipe, 1F1B, and interleaved 1F1B must all
    // produce the same losses (they are different orderings of the same
    // dataflow).
    let model = mlp_chain(4, 2, 4, 2, 45).unwrap();
    let data = mlp_data(4, 4, 2, 46);
    let mut losses = Vec::new();
    for schedule in [
        gpipe(2, 4).unwrap(),
        one_f1b(2, 4).unwrap(),
        interleaved_1f1b(2, 4, 2).unwrap(),
    ] {
        let model_for = if schedule.n_stages() == 4 {
            mlp_chain(4, 2, 4, 4, 45).unwrap()
        } else {
            model.clone()
        };
        let trainer = compile_train_step(
            &model_for.jaxpr,
            model_for.n_params,
            &schedule,
            Optimizer::Sgd { lr: 0.05 },
            CompileOptions::default(),
        )
        .unwrap();
        trainer.init(&model_for.init).unwrap();
        let mut per_step = Vec::new();
        for _ in 0..3 {
            per_step.push(trainer.step(&data).unwrap().mean_loss);
        }
        losses.push(per_step);
    }
    for other in &losses[1..] {
        for (a, b) in losses[0].iter().zip(other) {
            assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }
}

#[test]
fn tiny_transformer_with_tied_embeddings_learns() {
    // The full §3.4 scenario: a transformer LM whose embedding table is
    // shared between the first and last pipeline stage, trained with the
    // interleaved schedule on the threaded runtime. The model must learn
    // a deterministic next-token pattern.
    let cfg = TinyLmConfig {
        seq: 8,
        vocab: 8,
        emb: 16,
        ffn: 32,
        blocks: 4,
        heads: 2, // multi-head attention through the pipeline
        n_stages: 4,
        tied_embeddings: true,
    };
    let model = tiny_lm(cfg, 47).unwrap();
    let schedule = interleaved_1f1b(2, 4, 2).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::adam(3e-3),
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();

    // Task: predict token (t + 1) mod V from token t.
    let mask = causal_mask(cfg.seq);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut masks = Vec::new();
    for mb in 0..4usize {
        let tokens: Vec<usize> = (0..cfg.seq).map(|i| (i + mb) % cfg.vocab).collect();
        let targets: Vec<usize> = tokens.iter().map(|&t| (t + 1) % cfg.vocab).collect();
        xs.push(one_hot(&tokens, cfg.vocab));
        ys.push(one_hot(&targets, cfg.vocab));
        masks.push(mask.clone());
    }
    let data = vec![xs, ys, masks];

    let first = trainer.step(&data).unwrap().mean_loss;
    let mut last = first;
    for _ in 0..40 {
        last = trainer.step(&data).unwrap().mean_loss;
    }
    assert!(
        last < 0.5 * first,
        "tied-embedding LM failed to learn: {first} -> {last}"
    );
}
