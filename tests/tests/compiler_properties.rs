//! Property-style integration tests: randomly structured pipelines
//! (layer counts, stage splits, schedules, shared weights, skip
//! connections) must always compile into deadlock-free programs whose
//! gradients match whole-graph autodiff. Cases come from the in-tree
//! deterministic PRNG and exhaustive grids instead of proptest.

#![allow(clippy::needless_range_loop)]

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::rng::{Rng, SeedableRng, StdRng};
use raxpp_ir::{eval, value_and_grad, Jaxpr, Tensor, TraceCtx, TracedTensor};
use raxpp_sched::{gpipe, interleaved_1f1b, one_f1b, Schedule, Task};
use raxpp_taskgraph::{
    check_send_recv_order, insert_frees, pipeline_model, unroll_loop, UnrollOptions,
};

/// A randomly-shaped pipeline model description.
#[derive(Debug, Clone)]
struct RandomModel {
    layers: usize,
    n_stages: usize,
    share_first_last: bool,
    skip_from_first: bool,
}

fn random_model(rng: &mut StdRng) -> RandomModel {
    let layers = rng.gen_range(2usize..7);
    RandomModel {
        layers,
        n_stages: rng.gen_range(2usize..layers + 1),
        share_first_last: rng.next_u64().is_multiple_of(2),
        skip_from_first: rng.next_u64().is_multiple_of(2),
    }
}

/// Every (layers, n_stages, share, skip) combination in the sampled space.
fn all_models() -> Vec<RandomModel> {
    let mut out = Vec::new();
    for layers in 2usize..=6 {
        for n_stages in 2..=layers {
            for share_first_last in [false, true] {
                for skip_from_first in [false, true] {
                    out.push(RandomModel {
                        layers,
                        n_stages,
                        share_first_last,
                        skip_from_first,
                    });
                }
            }
        }
    }
    out
}

/// Traces the random model: a chain of tanh layers with optional weight
/// sharing between the first and last layer and an optional skip
/// connection from the first stage's output to the loss.
fn trace(model: &RandomModel, width: usize) -> (Jaxpr, usize) {
    let ctx = TraceCtx::new();
    let n_weights = if model.share_first_last {
        model.layers - 1
    } else {
        model.layers
    };
    let ws: Vec<TracedTensor> = (0..n_weights).map(|_| ctx.input([width, width])).collect();
    let x = ctx.input([2, width]);
    let mut h = x;
    let mut first_out = None;
    let per_stage = model.layers / model.n_stages;
    let extra = model.layers % model.n_stages;
    let mut boundaries = Vec::new();
    let mut acc = 0;
    for s in 0..model.n_stages - 1 {
        acc += per_stage + usize::from(s < extra);
        boundaries.push(acc);
    }
    for i in 0..model.layers {
        let w = if model.share_first_last && i == model.layers - 1 {
            &ws[0] // tied weight
        } else {
            &ws[i.min(n_weights - 1)]
        };
        h = h.matmul(w).unwrap().tanh();
        if i == 0 {
            first_out = Some(h.clone());
        }
        if boundaries.contains(&(i + 1)) {
            h = ctx.pipeline_yield(&h);
        }
    }
    if model.skip_from_first {
        h = h.add(first_out.as_ref().unwrap()).unwrap();
    }
    let loss = h.mul(&h).unwrap().sum().scale(0.5);
    (ctx.finish(&[loss]).unwrap(), n_weights)
}

fn schedules_for(n_stages: usize, n_mb: usize) -> Vec<Schedule> {
    let mut out = vec![
        gpipe(n_stages, n_mb).unwrap(),
        one_f1b(n_stages, n_mb).unwrap(),
    ];
    // Interleaved variant when the stage count splits over fewer actors.
    if n_stages.is_multiple_of(2) && n_mb.is_multiple_of(2) {
        out.push(interleaved_1f1b(2, n_mb, n_stages / 2).unwrap());
    }
    out
}

/// Any random model under any built-in schedule compiles into a
/// program with matched send/recv order, and its fetched gradients
/// equal whole-graph autodiff.
#[test]
fn random_pipelines_match_reference() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let model = random_model(&mut rng);
        let width = 3;
        let n_mb = 4;
        let (jaxpr, n_params) = trace(&model, width);

        let params: Vec<Tensor> = (0..n_params)
            .map(|_| Tensor::randn([width, width], 0.4, &mut rng))
            .collect();
        let data: Vec<Vec<Tensor>> = vec![(0..n_mb)
            .map(|_| Tensor::randn([2, width], 1.0, &mut rng))
            .collect()];

        // Reference gradients.
        let wrt: Vec<usize> = (0..n_params).collect();
        let g = value_and_grad(&jaxpr, &wrt).unwrap();
        let mut expect: Vec<Option<Tensor>> = vec![None; n_params];
        for mb in 0..n_mb {
            let mut args = params.clone();
            args.push(data[0][mb].clone());
            let outs = eval(&g, &args).unwrap();
            for p in 0..n_params {
                let gp = outs[1 + p].clone();
                expect[p] = Some(match expect[p].take() {
                    None => gp,
                    Some(acc) => acc.zip(&gp, |a, b| a + b).unwrap(),
                });
            }
        }

        for schedule in schedules_for(model.n_stages, n_mb) {
            let trainer = compile_train_step(
                &jaxpr,
                n_params,
                &schedule,
                Optimizer::Sgd { lr: 0.0 }, // lr 0: params unchanged, grads still fetched
                CompileOptions {
                    fetch_grads: true,
                    ..CompileOptions::default()
                },
            )
            .unwrap();
            trainer.init(&params).unwrap();
            let out = trainer.step(&data).unwrap();
            let grads = out.grads.unwrap();
            for (p, (got, want)) in grads.iter().zip(&expect).enumerate() {
                let want = want.as_ref().unwrap();
                assert!(
                    got.allclose(want, 1e-3),
                    "model {model:?} schedule {} grad {p} mismatch",
                    schedule.name()
                );
            }
        }
    }
}

/// The compiled loop always satisfies the §4.2 matching-order
/// property and fuses into exactly one stream per actor.
#[test]
fn compiled_programs_are_well_formed() {
    for model in all_models() {
        let (jaxpr, n_params) = trace(&model, 3);
        let pmodel = pipeline_model(&jaxpr, n_params).unwrap();
        for schedule in schedules_for(model.n_stages, 4) {
            for commuting in [true, false] {
                let mut compiled = unroll_loop(
                    &pmodel,
                    &schedule,
                    UnrollOptions {
                        loop_commuting: commuting,
                    },
                )
                .unwrap();
                assert!(
                    check_send_recv_order(&compiled.program).is_ok(),
                    "{model:?} {}",
                    schedule.name()
                );
                insert_frees(&mut compiled.program);
                assert!(
                    check_send_recv_order(&compiled.program).is_ok(),
                    "{model:?} {} after frees",
                    schedule.name()
                );
                assert!(compiled.program.num_rpcs() <= schedule.n_actors());
            }
        }
    }
}

/// Hand-written (user-defined) schedules: any topological interleave
/// of a valid per-actor order validates and executes. We generate
/// them by rotating the steady-state phase of 1F1B.
#[test]
fn rotated_user_schedules_still_work() {
    for rotate in 1usize..4 {
        let n_mb = 4;
        let base = one_f1b(2, n_mb).unwrap();
        // Rebuild actor 0's list with the backward tail rotated to the
        // extreme GPipe-like order (all fwd then all bwd) — still valid.
        let mut actors: Vec<Vec<Task>> = base.actors().to_vec();
        let fwd: Vec<Task> = actors[0]
            .iter()
            .copied()
            .filter(|t| t.dir == raxpp_sched::Dir::Fwd)
            .collect();
        let bwd: Vec<Task> = actors[0]
            .iter()
            .copied()
            .filter(|t| t.dir == raxpp_sched::Dir::Bwd)
            .collect();
        let mut merged = fwd;
        let at = rotate.min(bwd.len());
        merged.extend(bwd[..at].iter().rev());
        merged.extend(&bwd[at..]);
        // `merged` may reorder backward microbatches; only keep it if the
        // schedule validator accepts it (the public API contract).
        actors[0] = merged;
        match Schedule::new("user", 2, n_mb, actors) {
            Ok(schedule) => {
                let (jaxpr, n_params) = trace(
                    &RandomModel {
                        layers: 2,
                        n_stages: 2,
                        share_first_last: false,
                        skip_from_first: false,
                    },
                    3,
                );
                let pmodel = pipeline_model(&jaxpr, n_params).unwrap();
                let compiled = unroll_loop(&pmodel, &schedule, UnrollOptions::default()).unwrap();
                assert!(check_send_recv_order(&compiled.program).is_ok());
            }
            Err(_) => {
                // Rejected orders are fine; the validator's job.
            }
        }
    }
}
