//! Executable tensor parallelism (PP×TP composition): a pipeline whose
//! stages are sharded over a `"model"` mesh axis must train end-to-end
//! **bit-identical** to the unsharded pipeline — same losses, same
//! parameters, same checkpoints — while actually exchanging data through
//! real ring collectives, and the whole composition must survive fault
//! injection and recovery.

use std::time::Duration;

use raxpp_core::{compile_train_step, CompileOptions, Optimizer, RetryPolicy, TpConfig, Trainer};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::{Fault, TransportKind};
use raxpp_sched::{gpipe, one_f1b, Schedule, TpMap};
use raxpp_taskgraph::{CollectiveKind, Instr};

fn build(model: &BuiltModel, schedule: &Schedule, tp: usize) -> Trainer {
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions {
            tp: Some(TpConfig::model_parallel(tp)),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    assert_eq!(t.tp_degree(), tp);
    t.init(&model.init).unwrap();
    t
}

fn mb_data(schedule: &Schedule, width: usize, batch: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([batch, width], 1.0, &mut rng))
        .collect()]
}

/// The headline contract: for every (schedule × tp degree) cell, losses
/// and updated parameters are bit-for-bit equal to the tp=1 run of the
/// same model, and the sharded program really contains per-rank
/// collective instructions.
#[test]
fn tp_training_is_bitwise_identical_across_degrees() {
    for (schedule, seed) in [(gpipe(4, 4).unwrap(), 81), (one_f1b(4, 4).unwrap(), 82)] {
        let model = mlp_chain(8, 2, 4, schedule.n_stages(), seed).unwrap();
        let data = mb_data(&schedule, 8, 2, seed + 1);

        let baseline = build(&model, &schedule, 1);
        let mut base_losses = Vec::new();
        for _ in 0..3 {
            base_losses.push(baseline.step(&data).unwrap().losses);
        }
        let base_params = baseline.params().unwrap();

        for tp in [2usize, 4] {
            let trainer = build(&model, &schedule, tp);
            let program = trainer.runtime().program();
            assert_eq!(
                program.actors.len(),
                TpMap::new(tp).n_shard_actors(schedule.n_actors()),
                "{} tp={tp}: one stream per (actor, rank)",
                schedule.name()
            );
            let n_allreduce = program
                .actors
                .iter()
                .flatten()
                .filter(|i| {
                    matches!(
                        i,
                        Instr::Collective {
                            kind: CollectiveKind::AllReduce,
                            ..
                        }
                    )
                })
                .count();
            let n_allgather = program
                .actors
                .iter()
                .flatten()
                .filter(|i| {
                    matches!(
                        i,
                        Instr::Collective {
                            kind: CollectiveKind::AllGather,
                            ..
                        }
                    )
                })
                .count();
            assert!(n_allreduce > 0, "tp={tp}: no all-reduce lowered");
            assert!(n_allgather > 0, "tp={tp}: no all-gather lowered");

            for (step, want) in base_losses.iter().enumerate() {
                let got = trainer.step(&data).unwrap();
                assert_eq!(
                    &got.losses,
                    want,
                    "{} tp={tp} step {step}: losses not bit-identical",
                    schedule.name()
                );
            }
            assert!(
                trainer.metrics().counter("tp_collectives_total") > 0,
                "tp={tp}: no collectives executed"
            );
            assert!(trainer.metrics().counter("tp_bytes_reduced") > 0);
            let params = trainer.params().unwrap();
            for (p, (a, b)) in params.iter().zip(&base_params).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "{} tp={tp}: param {p} not bit-identical",
                    schedule.name()
                );
            }
        }
    }
}

/// Every microbatch's stage hand-off reassembles a full activation, so a
/// traced TP step must record at least one `collective` span per
/// microbatch per rank — with real all-reduces among them — and tracing
/// must not perturb a single bit.
#[test]
fn tp_step_records_collective_spans() {
    let schedule = one_f1b(2, 4).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 83).unwrap();
    let data = mb_data(&schedule, 8, 2, 84);

    let plain = build(&model, &schedule, 2);
    let want = plain.step(&data).unwrap().losses;

    let traced = build(&model, &schedule, 2);
    let (result, trace) = traced.step_traced(&data).unwrap();
    assert_eq!(result.losses, want, "tracing perturbed a TP step");

    let spans: Vec<&str> = trace
        .actors
        .iter()
        .flat_map(|a| &a.spans)
        .filter(|s| s.kind == "collective")
        .map(|s| s.name.as_str())
        .collect();
    assert!(
        spans.len() >= schedule.n_mubatches(),
        "want ≥{} collective spans, got {}",
        schedule.n_mubatches(),
        spans.len()
    );
    assert!(
        spans.iter().any(|n| n.starts_with("all_reduce")),
        "no all_reduce span in {spans:?}"
    );
}

/// Failure recovery composes with TP: killing one shard actor
/// mid-stream must be absorbed by respawn + snapshot restore, and the
/// recovered run stays bit-identical to an uninterrupted tp=1 run.
#[test]
fn tp_step_survives_fault_and_recovery() {
    let schedule = gpipe(2, 4).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 85).unwrap();
    let data = mb_data(&schedule, 8, 2, 86);

    let smooth = build(&model, &schedule, 1);
    let bumpy = build(&model, &schedule, 2);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };
    for step in 0..3 {
        if step == 1 {
            // Shard actor 1 = (pipeline actor 0, tp rank 1): its death
            // must cascade-abort its collective peers, then respawn.
            bumpy
                .runtime()
                .inject_fault(1, Fault::DieAtInstr(2))
                .unwrap();
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    assert!(bumpy.metrics().counter("recoveries_total") >= 1);
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
}

/// Checkpoints are TP-invariant: a tp=2 trainer's checkpoint stream is
/// byte-identical to the tp=1 trainer's, and restores cleanly across
/// degrees (the replicated-buffer invariant makes rank 0 authoritative).
#[test]
fn tp_checkpoints_are_byte_identical_across_degrees() {
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 87).unwrap();
    let data = mb_data(&schedule, 8, 2, 88);

    let t1 = build(&model, &schedule, 1);
    let t2 = build(&model, &schedule, 2);
    t1.step(&data).unwrap();
    t2.step(&data).unwrap();
    let mut ck1 = Vec::new();
    let mut ck2 = Vec::new();
    t1.save_checkpoint(&mut ck1).unwrap();
    t2.save_checkpoint(&mut ck2).unwrap();
    assert_eq!(ck1, ck2, "tp=2 checkpoint differs from tp=1");

    // Cross-restore: the tp=2 fleet adopts the tp=1 checkpoint and
    // continues bit-identically.
    t2.restore_checkpoint(&ck1[..]).unwrap();
    let a = t1.step(&data).unwrap();
    let b = t2.step(&data).unwrap();
    assert_eq!(a.losses, b.losses);
}

/// The lane/serial mode sweep: shard-lane rendezvous (the default) and
/// the serial ring fallback must be bit-for-bit interchangeable — per
/// step, on the same trainer, across schedules, tp degrees, and
/// traced/untraced execution — and every cell must match the tp=1
/// baseline. Traced lane steps must additionally surface the
/// `collective_wait` spans the observability layer documents.
#[test]
fn tp_lane_and_serial_modes_are_bitwise_identical() {
    for (schedule, seed) in [(gpipe(2, 4).unwrap(), 91), (one_f1b(2, 4).unwrap(), 92)] {
        let model = mlp_chain(8, 2, 4, schedule.n_stages(), seed).unwrap();
        let data = mb_data(&schedule, 8, 2, seed + 1);

        let baseline = build(&model, &schedule, 1);
        let mut base_losses = Vec::new();
        for _ in 0..4 {
            base_losses.push(baseline.step(&data).unwrap().losses);
        }
        let base_params = baseline.params().unwrap();

        for tp in [2usize, 4] {
            let trainer = build(&model, &schedule, tp);
            // Shared-memory shard lanes only exist on the in-process
            // transport; on a socket fabric every collective takes the
            // serial ring (bitwise-equal by construction), so run the
            // whole sweep in serial mode there.
            let lanes_available = trainer.runtime().transport_kind() == TransportKind::Mpsc;
            // Alternate modes on the SAME trainer: serial, lanes,
            // serial traced, lanes traced — every step must continue
            // the exact tp=1 trajectory regardless of mode.
            for (step, want) in base_losses.iter().enumerate() {
                let lanes = lanes_available && step % 2 == 1;
                trainer.set_tp_lanes(lanes);
                let traced = step >= 2;
                let losses = if traced {
                    let (result, trace) = trainer.step_traced(&data).unwrap();
                    let waits = trace
                        .actors
                        .iter()
                        .flat_map(|a| &a.spans)
                        .filter(|s| s.kind == "collective_wait")
                        .count();
                    if lanes {
                        assert!(
                            waits > 0,
                            "{} tp={tp}: traced lane step has no collective_wait spans",
                            schedule.name()
                        );
                    } else {
                        assert_eq!(
                            waits,
                            0,
                            "{} tp={tp}: serial mode must not emit collective_wait",
                            schedule.name()
                        );
                    }
                    result.losses
                } else {
                    trainer.step(&data).unwrap().losses
                };
                assert_eq!(
                    &losses,
                    want,
                    "{} tp={tp} step {step} (lanes={lanes}): losses not bit-identical",
                    schedule.name()
                );
            }
            let params = trainer.params().unwrap();
            for (p, (a, b)) in params.iter().zip(&base_params).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "{} tp={tp}: param {p} not bit-identical after mode sweep",
                    schedule.name()
                );
            }
            // Wire accounting covers every collective in both modes;
            // overlap bytes only ever appear in lane mode.
            assert!(
                trainer.metrics().counter("tp_bytes_wire") > 0,
                "tp={tp}: no wire bytes recorded"
            );
        }
    }
}

/// A lane dying *inside* the rendezvous (at a collective instruction)
/// must poison its group — waking condvar-parked peers instead of
/// leaving them blocked — cascade into a bounded abort, and recover to
/// a bit-identical trajectory.
#[test]
fn tp_lane_fault_inside_lane_recovers_bounded() {
    let schedule = gpipe(2, 4).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 93).unwrap();
    let data = mb_data(&schedule, 8, 2, 94);

    let smooth = build(&model, &schedule, 1);
    let bumpy = build(&model, &schedule, 2);
    bumpy.set_tp_lanes(true);
    // Aim the fault at shard actor 1's first collective so the death
    // lands while rank 0 is parked in the lane rendezvous.
    let coll_at = bumpy.runtime().program().actors[1]
        .iter()
        .position(|i| matches!(i, Instr::Collective { .. }))
        .expect("shard stream has a collective");
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };
    let t0 = std::time::Instant::now();
    for step in 0..3 {
        if step == 1 {
            bumpy
                .runtime()
                .inject_fault(1, Fault::DieAtInstr(coll_at))
                .unwrap();
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    assert!(
        bumpy.metrics().counter("recoveries_total") >= 1,
        "fault was never recovered"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "lane fault recovery was not bounded: {:?}",
        t0.elapsed()
    );
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
}

/// kill -9 mid-collective *on the wire*: a shard actor on the socket
/// transport vanishes (endpoint severed, no abort broadcast, no
/// goodbye) right at its first collective instruction, while its ring
/// peers are blocked receiving from it. Detection must be bounded
/// (closed connections + reply-link EOF + heartbeat silence), recovery
/// must respawn the severed endpoint, and the retried trajectory must
/// stay bit-identical to an unsharded mpsc twin.
#[test]
fn tp_kill9_mid_collective_over_socket_recovers_bitwise() {
    let schedule = gpipe(2, 4).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 95).unwrap();
    let data = mb_data(&schedule, 8, 2, 96);

    let smooth = build(&model, &schedule, 1);
    let bumpy = {
        let t = compile_train_step(
            &model.jaxpr,
            model.n_params,
            &schedule,
            Optimizer::Sgd { lr: 0.05 },
            CompileOptions {
                tp: Some(TpConfig::model_parallel(2)),
                transport: Some(TransportKind::UnixSocket),
                ..CompileOptions::default()
            },
        )
        .unwrap();
        t.init(&model.init).unwrap();
        t
    };
    // On a socket fabric every collective takes the serial message
    // ring, so the kill lands while a ring peer is blocked in `Recv`
    // on the severed endpoint.
    let coll_at = bumpy.runtime().program().actors[1]
        .iter()
        .position(|i| matches!(i, Instr::Collective { .. }))
        .expect("shard stream has a collective");
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };
    let t0 = std::time::Instant::now();
    for step in 0..3 {
        if step == 1 {
            bumpy
                .runtime()
                .inject_fault(1, Fault::KillAtInstr(coll_at))
                .unwrap();
        }
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
    }
    assert!(
        bumpy.metrics().counter("recoveries_total") >= 1,
        "the kill was never recovered"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "kill -9 mid-collective recovery was not bounded: {:?}",
        t0.elapsed()
    );
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
}

/// Regression for the lifted "rebalance refused under TP" restriction:
/// folding a dead shard host away retires **all** of its rank actors
/// uniformly, remaps its collective groups rank-preservingly onto the
/// survivors' groups, and the shrunken fleet continues training
/// bit-identical to the tp=1 baseline.
#[test]
fn tp_rebalance_folds_bitwise() {
    let schedule = gpipe(2, 2).unwrap();
    let model = mlp_chain(8, 2, 2, schedule.n_stages(), 89).unwrap();
    let data = mb_data(&schedule, 8, 2, 90);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };

    let smooth = build(&model, &schedule, 1);
    let bumpy = build(&model, &schedule, 2);
    let a = smooth.step_with_recovery(&data, policy).unwrap();
    let b = bumpy.step_with_recovery(&data, policy).unwrap();
    assert_eq!(a.losses, b.losses, "pre-fold step diverged");

    // Fold pipeline host 1 away: both of its shard ranks (raw actors 2
    // and 3) must retire together, landing host 1's stages on host 0's
    // rank actors.
    let report = bumpy.rebalance(&[2]).unwrap();
    assert_eq!(
        report.retired,
        vec![2, 3],
        "fold must retire the whole host group"
    );
    for step in 1..3 {
        let a = smooth.step_with_recovery(&data, policy).unwrap();
        let b = bumpy.step_with_recovery(&data, policy).unwrap();
        assert_eq!(
            a.losses, b.losses,
            "step {step}: losses diverged after TP fold"
        );
    }
    let pa = smooth.params().unwrap();
    let pb = bumpy.params().unwrap();
    for (p, (x, y)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(
            x.data(),
            y.data(),
            "param {p} not bit-identical after TP fold"
        );
    }
    // The folded program's collective groups live entirely on survivors
    // and stay rank-ascending.
    for i in bumpy.runtime().program().actors.iter().flatten() {
        if let Instr::Collective { group, .. } = i {
            assert!(group.windows(2).all(|w| w[0] < w[1]), "group not ascending");
            assert!(
                !group.contains(&2) && !group.contains(&3),
                "collective group still references a retired actor"
            );
        }
    }
    // No stale rendezvous slots survive the fold (the hub GC contract).
    assert_eq!(
        bumpy.runtime().lane_live_slots(),
        0,
        "stale lane slots leaked"
    );
}
