//! End-to-end step-trace observability: a recovered step's trace
//! carries the failure forensics (abort/death events plus a retry
//! marker per failed attempt), tracing survives actor respawn, and the
//! trainer-level metrics registry reflects what actually happened.

use std::time::Duration;

use raxpp_core::{compile_train_step, CompileOptions, Optimizer, RetryPolicy, Trainer};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_runtime::{Fault, MetricValue};
use raxpp_sched::gpipe;

const N_STAGES: usize = 4;

fn build_trainer(seed: u64) -> (Trainer, Vec<Vec<Tensor>>) {
    let schedule = gpipe(N_STAGES, 4).unwrap();
    let model = mlp_chain(6, 3, 4, N_STAGES, seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
        .collect()];
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    (trainer, data)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    }
}

#[test]
fn recovered_step_trace_carries_retry_and_failure_events() {
    with_watchdog("recovered_step_trace", || {
        let (trainer, data) = build_trainer(91);
        let baseline = {
            let (twin, twin_data) = build_trainer(91);
            twin.step(&twin_data).unwrap().losses
        };
        // Kill stage 1 mid-stream on the next execute; the traced retry
        // loop must absorb the death, respawn, and still hand back a
        // trace that remembers the failed attempt.
        trainer
            .runtime()
            .inject_fault(1, Fault::DieAtInstr(2))
            .unwrap();
        let (result, trace) = trainer
            .step_traced_with_recovery(&data, fast_retry())
            .unwrap();
        assert_eq!(result.losses, baseline, "recovery must not change math");

        assert!(
            trace.has_event("retry"),
            "no retry marker in {:?}",
            trace.events
        );
        assert!(
            trace.has_event("actor_died") || trace.has_event("timeout"),
            "no death record in {:?}",
            trace.events
        );
        let retry = trace.events.iter().find(|e| e.kind == "retry").unwrap();
        assert!(
            retry.detail.starts_with("attempt "),
            "retry detail: {}",
            retry.detail
        );
        // Events are ordered on the shared timeline: the failure records
        // precede the retry marker, which precedes nothing older.
        let ts: Vec<u64> = trace.events.iter().map(|e| e.ts_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "step events out of timeline order");
        // The successful attempt's spans are all there: 4 stages, each
        // with 4 forward and 4 backward tasks.
        assert_eq!(trace.actors.len(), N_STAGES);
        for at in &trace.actors {
            assert_eq!(at.spans.iter().filter(|s| s.kind == "fwd").count(), 4);
            assert_eq!(at.spans.iter().filter(|s| s.kind == "bwd").count(), 4);
        }

        // The metrics registry saw the whole story.
        let m = trainer.metrics();
        assert_eq!(m.counter("retries_total"), 1);
        assert_eq!(m.counter("recoveries_total"), 1);
        assert_eq!(m.counter("respawned_actors_total"), 1);
        assert_eq!(m.counter("steps_total"), 1);
        match m.gauge("bubble_fraction_measured") {
            Some(b) => assert!((0.0..=1.0).contains(&b), "bubble fraction {b}"),
            None => panic!("traced step must set bubble_fraction_measured"),
        }
        assert!(matches!(
            m.snapshot().get("step_time_s"),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
    });
}

#[test]
fn trace_timeline_is_consistent_after_respawn() {
    with_watchdog("trace_timeline_after_respawn", || {
        let (trainer, data) = build_trainer(92);
        let (_, before) = trainer.step_traced(&data).unwrap();
        trainer.runtime().inject_failure(2);
        let (_, after) = trainer
            .step_traced_with_recovery(&data, fast_retry())
            .unwrap();
        // The respawned actor's spans share the runtime's original
        // monotonic origin: everything in the recovered step starts
        // after everything in the step that preceded it.
        let max_before = before
            .actors
            .iter()
            .flat_map(|a| a.spans.iter())
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap();
        let min_after = after
            .actors
            .iter()
            .flat_map(|a| a.spans.iter())
            .map(|s| s.start_ns)
            .min()
            .unwrap();
        assert!(
            min_after > max_before,
            "respawned actor's clock regressed: {min_after} <= {max_before}"
        );
    });
}
