//! Integration: checkpoint/restore reproduces training exactly —
//! parameters *and* optimizer moments round-trip through the MPMD
//! runtime's distributed state, both in-memory and through
//! crash-consistent on-disk generations (`CheckpointManager` /
//! `CheckpointPolicy`, see `docs/resilience.md`).

use std::fs;
use std::path::PathBuf;

use raxpp_core::{compile_train_step, CheckpointPolicy, CompileOptions, Optimizer, RetryPolicy};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_sched::one_f1b;

fn data(n_mb: usize, seed: u64) -> Vec<Vec<Tensor>> {
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    vec![(0..n_mb)
        .map(|_| Tensor::randn([2, 6], 1.0, &mut rng))
        .collect()]
}

#[test]
fn resume_from_checkpoint_is_bit_identical() {
    let model = mlp_chain(6, 2, 4, 2, 81).unwrap();
    let schedule = one_f1b(2, 4).unwrap();
    // Adam has optimizer moments — the part a params-only checkpoint
    // would get wrong.
    let optimizer = Optimizer::adam(5e-3);

    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        optimizer,
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    let d = data(4, 82);

    // Train 3 steps, checkpoint, train 3 more, recording losses.
    for _ in 0..3 {
        trainer.step(&d).unwrap();
    }
    let mut ckpt = Vec::new();
    trainer.save_checkpoint(&mut ckpt).unwrap();
    let continued: Vec<f32> = (0..3)
        .map(|_| trainer.step(&d).unwrap().mean_loss)
        .collect();

    // Fresh trainer restored from the checkpoint must replay the same 3
    // steps exactly.
    let trainer2 = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        optimizer,
        CompileOptions::default(),
    )
    .unwrap();
    trainer2.init(&model.init).unwrap();
    trainer2.restore_checkpoint(ckpt.as_slice()).unwrap();
    let replayed: Vec<f32> = (0..3)
        .map(|_| trainer2.step(&d).unwrap().mean_loss)
        .collect();

    assert_eq!(continued, replayed, "resumed training diverged");
}

#[test]
fn restore_rejects_mismatched_checkpoints() {
    let model = mlp_chain(6, 2, 4, 2, 83).unwrap();
    let schedule = one_f1b(2, 4).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::adam(1e-3),
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();

    // SGD trainer's checkpoint (no moments) cannot restore an Adam one.
    let sgd_trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    )
    .unwrap();
    sgd_trainer.init(&model.init).unwrap();
    let mut short = Vec::new();
    sgd_trainer.save_checkpoint(&mut short).unwrap();
    assert!(trainer.restore_checkpoint(short.as_slice()).is_err());

    // Garbage bytes are rejected outright.
    assert!(trainer.restore_checkpoint(&b"garbage"[..]).is_err());
}

fn temp_ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("raxpp-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn build_trainer(model: &raxpp_models::BuiltModel) -> raxpp_core::Trainer {
    let schedule = one_f1b(2, 4).unwrap();
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::adam(5e-3),
        CompileOptions::default(),
    )
    .unwrap();
    t.init(&model.init).unwrap();
    t
}

/// Kill/restart between steps: a fresh process (here, a fresh trainer)
/// resuming from the newest on-disk generation must continue training
/// bit-identically to the run that never stopped.
#[test]
fn periodic_checkpoints_resume_bitwise_after_restart() {
    let dir = temp_ckpt_dir("resume");
    let model = mlp_chain(6, 2, 4, 2, 91).unwrap();
    let d = data(4, 92);
    let policy = RetryPolicy::default();

    let original = build_trainer(&model);
    original.set_checkpoint_policy(Some(CheckpointPolicy::new(&dir, 1, 3)));
    for _ in 0..3 {
        original.step_with_recovery(&d, policy).unwrap();
    }
    // "Kill" the process after step 3; the reference tail below belongs
    // to the uninterrupted timeline, so it must not overwrite the
    // generations the restarted trainer resumes from.
    original.set_checkpoint_policy(None);
    let continued: Vec<Vec<f32>> = (0..2)
        .map(|_| original.step_with_recovery(&d, policy).unwrap().losses)
        .collect();

    let restarted = build_trainer(&model);
    let resumed_step = restarted.resume_from_dir(&dir).unwrap();
    assert_eq!(
        resumed_step,
        Some(3),
        "must resume from the newest generation"
    );
    assert_eq!(restarted.steps_done(), 3);
    let replayed: Vec<Vec<f32>> = (0..2)
        .map(|_| restarted.step_with_recovery(&d, policy).unwrap().losses)
        .collect();
    assert_eq!(
        continued, replayed,
        "restart diverged from uninterrupted run"
    );

    let pa = original.params().unwrap();
    let pb = restarted.params().unwrap();
    for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
        assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupted newest generation is detected by its checksums and the
/// resume falls back to the previous one.
#[test]
fn corrupt_newest_generation_falls_back_to_previous() {
    let dir = temp_ckpt_dir("corrupt");
    let model = mlp_chain(6, 2, 4, 2, 93).unwrap();
    let d = data(4, 94);
    let policy = RetryPolicy::default();

    let original = build_trainer(&model);
    original.set_checkpoint_policy(Some(CheckpointPolicy::new(&dir, 1, 3)));
    for _ in 0..2 {
        original.step_with_recovery(&d, policy).unwrap();
    }
    // Flip a data bit in the newest generation.
    let newest = dir.join("ckpt-2/state.bin");
    let mut bytes = fs::read(&newest).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x01;
    fs::write(&newest, bytes).unwrap();

    let restarted = build_trainer(&model);
    assert_eq!(restarted.resume_from_dir(&dir).unwrap(), Some(1));
    let _ = fs::remove_dir_all(&dir);
}

/// A crash mid-save (staging directory written, rename never reached)
/// must leave the previous generation loadable and be ignored on
/// resume.
#[test]
fn aborted_save_leaves_previous_generation_loadable() {
    let dir = temp_ckpt_dir("aborted");
    let model = mlp_chain(6, 2, 4, 2, 95).unwrap();
    let d = data(4, 96);
    let policy = RetryPolicy::default();

    let original = build_trainer(&model);
    original.set_checkpoint_policy(Some(CheckpointPolicy::new(&dir, 1, 3)));
    original.step_with_recovery(&d, policy).unwrap();
    // Simulate the crash: a half-written staging dir for step 2.
    let tmp = dir.join(".tmp-ckpt-2");
    fs::create_dir_all(&tmp).unwrap();
    fs::write(tmp.join("state.bin"), b"partial write, no footer").unwrap();

    let restarted = build_trainer(&model);
    assert_eq!(restarted.resume_from_dir(&dir).unwrap(), Some(1));
    let _ = fs::remove_dir_all(&dir);
}

/// `RAXPP_CKPT_EVERY` cadence: with `every: 2` only even steps hit
/// disk, and rotation keeps the newest `keep` generations.
#[test]
fn cadence_and_rotation_follow_the_policy() {
    let dir = temp_ckpt_dir("cadence");
    let model = mlp_chain(6, 2, 4, 2, 97).unwrap();
    let d = data(4, 98);
    let policy = RetryPolicy::default();

    let trainer = build_trainer(&model);
    trainer.set_checkpoint_policy(Some(CheckpointPolicy::new(&dir, 2, 2)));
    for _ in 0..6 {
        trainer.step_with_recovery(&d, policy).unwrap();
    }
    assert_eq!(trainer.metrics().counter("checkpoints_total"), 3); // steps 2, 4, 6
    let steps: Vec<u64> = raxpp_core::CheckpointManager::new(&dir, 2)
        .generations()
        .unwrap()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    assert_eq!(steps, vec![4, 6], "keep-2 rotation must drop ckpt-2");
    let _ = fs::remove_dir_all(&dir);
}
