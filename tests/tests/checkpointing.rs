//! Integration: checkpoint/restore reproduces training exactly —
//! parameters *and* optimizer moments round-trip through the MPMD
//! runtime's distributed state.

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_sched::one_f1b;

fn data(n_mb: usize, seed: u64) -> Vec<Vec<Tensor>> {
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    vec![(0..n_mb)
        .map(|_| Tensor::randn([2, 6], 1.0, &mut rng))
        .collect()]
}

#[test]
fn resume_from_checkpoint_is_bit_identical() {
    let model = mlp_chain(6, 2, 4, 2, 81).unwrap();
    let schedule = one_f1b(2, 4).unwrap();
    // Adam has optimizer moments — the part a params-only checkpoint
    // would get wrong.
    let optimizer = Optimizer::adam(5e-3);

    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        optimizer,
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    let d = data(4, 82);

    // Train 3 steps, checkpoint, train 3 more, recording losses.
    for _ in 0..3 {
        trainer.step(&d).unwrap();
    }
    let mut ckpt = Vec::new();
    trainer.save_checkpoint(&mut ckpt).unwrap();
    let continued: Vec<f32> = (0..3)
        .map(|_| trainer.step(&d).unwrap().mean_loss)
        .collect();

    // Fresh trainer restored from the checkpoint must replay the same 3
    // steps exactly.
    let trainer2 = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        optimizer,
        CompileOptions::default(),
    )
    .unwrap();
    trainer2.init(&model.init).unwrap();
    trainer2.restore_checkpoint(ckpt.as_slice()).unwrap();
    let replayed: Vec<f32> = (0..3)
        .map(|_| trainer2.step(&d).unwrap().mean_loss)
        .collect();

    assert_eq!(continued, replayed, "resumed training diverged");
}

#[test]
fn restore_rejects_mismatched_checkpoints() {
    let model = mlp_chain(6, 2, 4, 2, 83).unwrap();
    let schedule = one_f1b(2, 4).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::adam(1e-3),
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();

    // SGD trainer's checkpoint (no moments) cannot restore an Adam one.
    let sgd_trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    )
    .unwrap();
    sgd_trainer.init(&model.init).unwrap();
    let mut short = Vec::new();
    sgd_trainer.save_checkpoint(&mut short).unwrap();
    assert!(trainer.restore_checkpoint(short.as_slice()).is_err());

    // Garbage bytes are rejected outright.
    assert!(trainer.restore_checkpoint(&b"garbage"[..]).is_err());
}
