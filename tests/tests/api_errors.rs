//! Integration: the public API fails loudly and precisely — no hangs, no
//! silent misbehaviour.

use raxpp_core::{compile_train_step, CompileOptions, CoreError, Optimizer, RemoteMesh};
use raxpp_ir::{Tensor, TraceCtx};
use raxpp_models::mlp_chain;
use raxpp_sched::{gpipe, one_f1b};

#[test]
fn schedule_stage_count_must_match_model() {
    let model = mlp_chain(4, 2, 4, 2, 91).unwrap(); // 2 stages
    let err = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &one_f1b(4, 8).unwrap(), // 4 stages
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    );
    assert!(matches!(err, Err(CoreError::Compile(_))));
}

#[test]
fn mesh_actor_count_must_match_schedule() {
    let model = mlp_chain(4, 2, 4, 2, 92).unwrap();
    let mesh = RemoteMesh::new(3, (1, 1));
    let err = mesh.distributed(
        &model.jaxpr,
        model.n_params,
        &gpipe(2, 4).unwrap(),
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    );
    assert!(matches!(err, Err(CoreError::BadInput(_))));
}

#[test]
fn step_before_init_fails_cleanly() {
    let model = mlp_chain(4, 2, 4, 2, 93).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &gpipe(2, 2).unwrap(),
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    )
    .unwrap();
    let data = vec![vec![Tensor::zeros([2, 4]); 2]];
    // Parameters were never placed: actors fail the step, the driver
    // reports it (and does not hang).
    match trainer.step(&data) {
        Err(CoreError::Runtime(_)) => {}
        other => panic!("expected a runtime error, got {other:?}"),
    }
}

#[test]
fn wrong_parameter_count_rejected_at_init() {
    let model = mlp_chain(4, 2, 4, 2, 94).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &gpipe(2, 2).unwrap(),
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    )
    .unwrap();
    assert!(matches!(
        trainer.init(&model.init[..1]),
        Err(CoreError::BadInput(_))
    ));
}

#[test]
fn wrong_data_arity_rejected_at_step() {
    let model = mlp_chain(4, 2, 4, 2, 95).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &gpipe(2, 2).unwrap(),
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    assert!(matches!(trainer.step(&[]), Err(CoreError::BadInput(_))));
}

#[test]
fn non_scalar_loss_rejected_at_compile() {
    let ctx = TraceCtx::new();
    let w = ctx.input([2, 2]);
    let x = ctx.input([2, 2]);
    let y = x.matmul(&w).unwrap(); // not a scalar
    let jaxpr = ctx.finish(&[y]).unwrap();
    assert!(compile_train_step(
        &jaxpr,
        1,
        &gpipe(1, 2).unwrap(),
        Optimizer::Sgd { lr: 0.1 },
        CompileOptions::default(),
    )
    .is_err());
}
