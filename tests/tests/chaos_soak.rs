//! Seeded chaos soak: many training steps under a deterministic,
//! PRNG-driven fault schedule — injected deaths (which permanently fold
//! actors via elastic rebalancing), task errors (which recover by
//! respawn), periodic on-disk checkpoints — must end **bit-identical**
//! to a fault-free twin run, with the object stores back at their
//! quiescent baseline (no leaked buffers across aborted epochs,
//! rebalances, or restores).

use std::fs;
use std::time::Duration;

use raxpp_core::{
    compile_train_step, CheckpointPolicy, CompileOptions, Optimizer, RetryPolicy, TpConfig, Trainer,
};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{Rng, SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_runtime::Fault;
use raxpp_sched::gpipe;

const STEPS: usize = 10;

fn build(model: &raxpp_models::BuiltModel, schedule: &raxpp_sched::Schedule) -> Trainer {
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
    )
    .unwrap();
    t.init(&model.init).unwrap();
    t
}

#[test]
fn chaotic_run_matches_fault_free_run_bitwise() {
    with_watchdog("chaotic_run_matches_fault_free_run_bitwise", || {
        let schedule = gpipe(4, 4).unwrap();
        let model = mlp_chain(6, 3, 4, schedule.n_stages(), 71).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
            .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
            .collect()];

        let ckpt_dir = std::env::temp_dir().join(format!("raxpp-chaos-{}", std::process::id()));
        let _ = fs::remove_dir_all(&ckpt_dir);

        let smooth = build(&model, &schedule);
        let chaotic = build(&model, &schedule);
        chaotic.set_checkpoint_policy(Some(CheckpointPolicy::new(&ckpt_dir, 3, 2)));
        let policy = RetryPolicy {
            max_retries: 3,
            backoff: Duration::ZERO,
            // One death = permanent loss: fold, don't respawn.
            rebalance_after: Some(1),
        };

        // Deterministic fault schedule: the PRNG picks, per step, no
        // fault (~1/2), a death (permanent: triggers a fold while >1
        // actor survives), or a task error (transient: recover+retry).
        let mut faults = StdRng::seed_from_u64(73);
        for step in 0..STEPS {
            let retired = chaotic.runtime().retired_actors();
            let alive: Vec<usize> = (0..schedule.n_actors())
                .filter(|a| !retired.contains(a))
                .collect();
            let target = alive[faults.gen_range(0..alive.len())];
            match faults.gen_range(0..4u32) {
                0 => {
                    let at = faults.gen_range(0..3usize);
                    chaotic
                        .runtime()
                        .inject_fault(target, Fault::DieAtInstr(at))
                        .unwrap();
                }
                1 => {
                    chaotic
                        .runtime()
                        .inject_fault(target, Fault::ErrorAtTask("bwd".into()))
                        .unwrap();
                }
                _ => {}
            }
            let a = smooth.step_with_recovery(&data, policy).unwrap();
            let b = chaotic.step_with_recovery(&data, policy).unwrap();
            assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
        }

        // The soak must have actually exercised the machinery.
        assert!(
            chaotic.metrics().counter("rebalances_total") >= 1,
            "fault schedule never triggered a rebalance — seed went stale"
        );
        assert!(chaotic.metrics().counter("recoveries_total") >= 1);
        assert!(chaotic.metrics().counter("checkpoints_total") >= 2);
        assert!(!chaotic.runtime().retired_actors().is_empty());

        // Final state is bit-identical to the fault-free twin.
        let pa = smooth.params().unwrap();
        let pb = chaotic.params().unwrap();
        for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
        }

        // Store hygiene: after a quiescent step the live bytes must be
        // exactly reproducible step-over-step — nothing leaked by the
        // aborted epochs, folds, or snapshot restores the soak caused.
        chaotic.step_with_recovery(&data, policy).unwrap();
        let baseline = chaotic.runtime().live_store_bytes().unwrap();
        chaotic.step_with_recovery(&data, policy).unwrap();
        let after = chaotic.runtime().live_store_bytes().unwrap();
        assert_eq!(baseline, after, "live store bytes drifted across steps");
        let retired = chaotic.runtime().retired_actors();
        for &a in &retired {
            assert_eq!(after[a], 0, "retired actor {a} still holds bytes");
        }

        let _ = fs::remove_dir_all(&ckpt_dir);
    });
}

/// The tensor-parallel soak: a 2-way-sharded pipeline (8 shard actors)
/// under PRNG-driven deaths and task errors. TP fleets recover by
/// respawn only (`rebalance_after` is ignored under TP: folding a shard
/// actor away would break its collective group), and the survivor must
/// end bit-identical to an *unsharded* fault-free twin — chaining the
/// TP-vs-PP and faulty-vs-smooth determinism contracts in one run.
#[test]
fn tp_chaotic_run_matches_unsharded_fault_free_run_bitwise() {
    with_watchdog(
        "tp_chaotic_run_matches_unsharded_fault_free_run_bitwise",
        || {
            let schedule = gpipe(4, 4).unwrap();
            let model = mlp_chain(6, 3, 4, schedule.n_stages(), 74).unwrap();
            let mut rng = StdRng::seed_from_u64(75);
            let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
                .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
                .collect()];

            let smooth = build(&model, &schedule);
            let chaotic = {
                let t = compile_train_step(
                    &model.jaxpr,
                    model.n_params,
                    &schedule,
                    Optimizer::Sgd { lr: 0.05 },
                    CompileOptions {
                        tp: Some(TpConfig::model_parallel(2)),
                        ..CompileOptions::default()
                    },
                )
                .unwrap();
                t.init(&model.init).unwrap();
                t
            };
            let n_shard_actors = chaotic.runtime().program().actors.len();
            assert_eq!(n_shard_actors, 2 * schedule.n_actors());
            let policy = RetryPolicy {
                max_retries: 3,
                backoff: Duration::ZERO,
                rebalance_after: None,
            };

            let mut faults = StdRng::seed_from_u64(76);
            for step in 0..STEPS {
                let target = faults.gen_range(0..n_shard_actors);
                match faults.gen_range(0..4u32) {
                    0 => {
                        let at = faults.gen_range(0..3usize);
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::DieAtInstr(at))
                            .unwrap();
                    }
                    1 => {
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::ErrorAtTask("bwd".into()))
                            .unwrap();
                    }
                    _ => {}
                }
                let a = smooth.step_with_recovery(&data, policy).unwrap();
                let b = chaotic.step_with_recovery(&data, policy).unwrap();
                assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
            }

            assert!(
                chaotic.metrics().counter("recoveries_total") >= 1,
                "fault schedule never triggered a recovery — seed went stale"
            );
            assert!(chaotic.metrics().counter("tp_collectives_total") > 0);
            assert!(
                chaotic.runtime().retired_actors().is_empty(),
                "TP soak must never fold an actor away"
            );

            let pa = smooth.params().unwrap();
            let pb = chaotic.params().unwrap();
            for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
                assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
            }
        },
    );
}
