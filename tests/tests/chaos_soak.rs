//! Seeded chaos soak: many training steps under a deterministic,
//! PRNG-driven fault schedule — injected deaths (which permanently fold
//! actors via elastic rebalancing), task errors (which recover by
//! respawn), periodic on-disk checkpoints — must end **bit-identical**
//! to a fault-free twin run, with the object stores back at their
//! quiescent baseline (no leaked buffers across aborted epochs,
//! rebalances, or restores).

use std::fs;
use std::time::Duration;

use raxpp_core::{
    compile_train_step, CheckpointPolicy, CompileOptions, DpConfig, Optimizer, RetryPolicy,
    TpConfig, Trainer,
};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{Rng, SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_runtime::{Fault, TransportKind, DRIVER_PEER};
use raxpp_sched::gpipe;

const STEPS: usize = 10;

fn build(model: &raxpp_models::BuiltModel, schedule: &raxpp_sched::Schedule) -> Trainer {
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
    )
    .unwrap();
    t.init(&model.init).unwrap();
    t
}

#[test]
fn chaotic_run_matches_fault_free_run_bitwise() {
    with_watchdog("chaotic_run_matches_fault_free_run_bitwise", || {
        let schedule = gpipe(4, 4).unwrap();
        let model = mlp_chain(6, 3, 4, schedule.n_stages(), 71).unwrap();
        let mut rng = StdRng::seed_from_u64(72);
        let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
            .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
            .collect()];

        let ckpt_dir = std::env::temp_dir().join(format!("raxpp-chaos-{}", std::process::id()));
        let _ = fs::remove_dir_all(&ckpt_dir);

        let smooth = build(&model, &schedule);
        let chaotic = build(&model, &schedule);
        chaotic.set_checkpoint_policy(Some(CheckpointPolicy::new(&ckpt_dir, 3, 2)));
        let policy = RetryPolicy {
            max_retries: 3,
            backoff: Duration::ZERO,
            // One death = permanent loss: fold, don't respawn.
            rebalance_after: Some(1),
        };

        // Deterministic fault schedule: the PRNG picks, per step, no
        // fault (~1/2), a death (permanent: triggers a fold while >1
        // actor survives), or a task error (transient: recover+retry).
        let mut faults = StdRng::seed_from_u64(73);
        for step in 0..STEPS {
            let retired = chaotic.runtime().retired_actors();
            let alive: Vec<usize> = (0..schedule.n_actors())
                .filter(|a| !retired.contains(a))
                .collect();
            let target = alive[faults.gen_range(0..alive.len())];
            match faults.gen_range(0..4u32) {
                0 => {
                    let at = faults.gen_range(0..3usize);
                    chaotic
                        .runtime()
                        .inject_fault(target, Fault::DieAtInstr(at))
                        .unwrap();
                }
                1 => {
                    chaotic
                        .runtime()
                        .inject_fault(target, Fault::ErrorAtTask("bwd".into()))
                        .unwrap();
                }
                _ => {}
            }
            let a = smooth.step_with_recovery(&data, policy).unwrap();
            let b = chaotic.step_with_recovery(&data, policy).unwrap();
            assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
        }

        // The soak must have actually exercised the machinery.
        assert!(
            chaotic.metrics().counter("rebalances_total") >= 1,
            "fault schedule never triggered a rebalance — seed went stale"
        );
        assert!(chaotic.metrics().counter("recoveries_total") >= 1);
        assert!(chaotic.metrics().counter("checkpoints_total") >= 2);
        assert!(!chaotic.runtime().retired_actors().is_empty());

        // Final state is bit-identical to the fault-free twin.
        let pa = smooth.params().unwrap();
        let pb = chaotic.params().unwrap();
        for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
        }

        // Store hygiene: after a quiescent step the live bytes must be
        // exactly reproducible step-over-step — nothing leaked by the
        // aborted epochs, folds, or snapshot restores the soak caused.
        chaotic.step_with_recovery(&data, policy).unwrap();
        let baseline = chaotic.runtime().live_store_bytes().unwrap();
        chaotic.step_with_recovery(&data, policy).unwrap();
        let after = chaotic.runtime().live_store_bytes().unwrap();
        assert_eq!(baseline, after, "live store bytes drifted across steps");
        let retired = chaotic.runtime().retired_actors();
        for &a in &retired {
            assert_eq!(after[a], 0, "retired actor {a} still holds bytes");
        }

        let _ = fs::remove_dir_all(&ckpt_dir);
    });
}

/// The wire soak: the same pipeline on the Unix-socket transport under
/// the **extended** fault palette — the thread-mode kinds (deaths, task
/// errors) *plus* the wire-only kinds (kill -9 severs, forced
/// connection drops, frame delays, one-way partitions toward a peer or
/// toward the driver) — all drawn from one seeded PRNG. Every step and
/// the final parameters must stay bit-identical to a fault-free
/// **mpsc** twin: the wire, its failures, and its recovery are
/// transparent to training.
#[test]
fn wire_chaotic_run_matches_mpsc_fault_free_run_bitwise() {
    with_watchdog(
        "wire_chaotic_run_matches_mpsc_fault_free_run_bitwise",
        || {
            let schedule = gpipe(4, 4).unwrap();
            let model = mlp_chain(6, 3, 4, schedule.n_stages(), 81).unwrap();
            let mut rng = StdRng::seed_from_u64(82);
            let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
                .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
                .collect()];

            let smooth = build(&model, &schedule); // resolves to mpsc by default
            let chaotic = {
                let t = compile_train_step(
                    &model.jaxpr,
                    model.n_params,
                    &schedule,
                    Optimizer::Sgd { lr: 0.05 },
                    CompileOptions {
                        transport: Some(TransportKind::UnixSocket),
                        ..CompileOptions::default()
                    },
                )
                .unwrap();
                t.init(&model.init).unwrap();
                t
            };
            // Partitions are only caught by the step-timeout backstop when
            // they cut a worker↔worker edge; shrink it so each such fault
            // costs seconds, not the 60 s default.
            chaotic.runtime().set_step_timeout(Duration::from_secs(3));
            let policy = RetryPolicy {
                max_retries: 3,
                backoff: Duration::ZERO,
                // Respawn, don't fold: the wire respawn path (sever →
                // re-bind → re-dial) is exactly what this soak targets.
                rebalance_after: None,
            };

            let n = schedule.n_actors();
            let mut faults = StdRng::seed_from_u64(83);
            for step in 0..STEPS {
                let target = faults.gen_range(0..n);
                match faults.gen_range(0..8u32) {
                    0 => {
                        let at = faults.gen_range(0..3usize);
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::DieAtInstr(at))
                            .unwrap();
                    }
                    1 => {
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::ErrorAtTask("bwd".into()))
                            .unwrap();
                    }
                    2 => {
                        let at = faults.gen_range(0..3usize);
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::KillAtInstr(at))
                            .unwrap();
                    }
                    3 => {
                        let peer = (target + 1) % n;
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::DropLink { peer })
                            .unwrap();
                    }
                    4 => {
                        let peer = (target + 1) % n;
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::DelayLink { peer, ms: 30 })
                            .unwrap();
                    }
                    5 => {
                        // One-way partition: half toward a neighbour (step
                        // timeout catches it), half toward the driver
                        // (heartbeat silence catches it).
                        let to = if faults.gen_range(0..2u32) == 0 {
                            (target + 1) % n
                        } else {
                            DRIVER_PEER
                        };
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::Partition { to })
                            .unwrap();
                    }
                    _ => {}
                }
                let a = smooth.step_with_recovery(&data, policy).unwrap();
                let b = chaotic.step_with_recovery(&data, policy).unwrap();
                assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
            }

            // The soak must have actually exercised the wire machinery.
            assert!(
                chaotic.metrics().counter("recoveries_total") >= 1,
                "fault schedule never triggered a recovery — seed went stale"
            );
            let stats = chaotic.runtime().transport_stats();
            assert!(stats.bytes_tx > 0 && stats.bytes_rx > 0);

            // Final state is bit-identical to the fault-free mpsc twin.
            let pa = smooth.params().unwrap();
            let pb = chaotic.params().unwrap();
            for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
                assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
            }
        },
    );
}

/// The tensor-parallel soak: a 2-way-sharded pipeline (8 shard actors)
/// under PRNG-driven deaths and task errors, **with elastic rebalance
/// enabled**: a death permanently folds the dead shard's whole host
/// group (both ranks) onto a survivor, collective groups remapping
/// rank-preservingly. The shrunken fleet must end bit-identical to an
/// *unsharded* fault-free twin — chaining the TP-vs-PP,
/// faulty-vs-smooth, and fold determinism contracts in one run — and
/// the collective hub must end with zero live rendezvous slots (the
/// stale-slot GC contract after aborts and folds).
#[test]
fn tp_chaotic_run_matches_unsharded_fault_free_run_bitwise() {
    with_watchdog(
        "tp_chaotic_run_matches_unsharded_fault_free_run_bitwise",
        || {
            let schedule = gpipe(4, 4).unwrap();
            let model = mlp_chain(6, 3, 4, schedule.n_stages(), 74).unwrap();
            let mut rng = StdRng::seed_from_u64(75);
            let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
                .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
                .collect()];

            let smooth = build(&model, &schedule);
            let chaotic = {
                let t = compile_train_step(
                    &model.jaxpr,
                    model.n_params,
                    &schedule,
                    Optimizer::Sgd { lr: 0.05 },
                    CompileOptions {
                        tp: Some(TpConfig::model_parallel(2)),
                        ..CompileOptions::default()
                    },
                )
                .unwrap();
                t.init(&model.init).unwrap();
                t
            };
            let n_shard_actors = chaotic.runtime().program().actors.len();
            assert_eq!(n_shard_actors, 2 * schedule.n_actors());
            let policy = RetryPolicy {
                max_retries: 3,
                backoff: Duration::ZERO,
                // One death = permanent loss: fold the host group.
                rebalance_after: Some(1),
            };

            let mut faults = StdRng::seed_from_u64(76);
            for step in 0..STEPS {
                let retired = chaotic.runtime().retired_actors();
                let alive: Vec<usize> = (0..n_shard_actors)
                    .filter(|a| !retired.contains(a))
                    .collect();
                let target = alive[faults.gen_range(0..alive.len())];
                match faults.gen_range(0..4u32) {
                    0 => {
                        let at = faults.gen_range(0..3usize);
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::DieAtInstr(at))
                            .unwrap();
                    }
                    1 => {
                        chaotic
                            .runtime()
                            .inject_fault(target, Fault::ErrorAtTask("bwd".into()))
                            .unwrap();
                    }
                    _ => {}
                }
                let a = smooth.step_with_recovery(&data, policy).unwrap();
                let b = chaotic.step_with_recovery(&data, policy).unwrap();
                assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
            }

            assert!(
                chaotic.metrics().counter("recoveries_total") >= 1,
                "fault schedule never triggered a recovery — seed went stale"
            );
            assert!(
                chaotic.metrics().counter("rebalances_total") >= 1,
                "fault schedule never triggered a TP fold — seed went stale"
            );
            assert!(chaotic.metrics().counter("tp_collectives_total") > 0);
            // Folds retire whole host groups: every retired actor's
            // lane partner is retired with it.
            let retired = chaotic.runtime().retired_actors();
            assert!(!retired.is_empty());
            for &a in &retired {
                assert!(
                    retired.contains(&(a ^ 1)),
                    "actor {a} folded without its lane partner"
                );
            }
            // Stale-slot GC: no rendezvous slot survives the soak.
            assert_eq!(
                chaotic.runtime().lane_live_slots(),
                0,
                "lane hub leaked rendezvous slots across aborts/folds"
            );

            let pa = smooth.params().unwrap();
            let pb = chaotic.params().unwrap();
            for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
                assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
            }
        },
    );
}

/// The data-parallel soak: a dp=2-replicated, batch-sharded pipeline
/// (8 raw actors, each replica consuming half the global batch) under
/// the same PRNG-driven chaos, with elastic rebalance enabled — a death
/// folds the dead actor's pipeline host in **both** replicas, keeping
/// the replica streams aligned and the DP collective groups intact.
/// Must end bit-identical to a fault-free twin of the **same degree**
/// (tier 1 of `docs/determinism.md`) with zero live rendezvous slots.
#[test]
fn dp_chaotic_run_matches_fault_free_run_bitwise() {
    with_watchdog("dp_chaotic_run_matches_fault_free_run_bitwise", || {
        let schedule = gpipe(4, 4).unwrap();
        let model = mlp_chain(6, 3, 4, schedule.n_stages(), 77).unwrap();
        let mut rng = StdRng::seed_from_u64(78);
        // dp=2 doubles the global batch: 2 × n_mubatches() tensors.
        let data: Vec<Vec<Tensor>> = vec![(0..2 * schedule.n_mubatches())
            .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
            .collect()];

        let build_dp = || {
            let t = compile_train_step(
                &model.jaxpr,
                model.n_params,
                &schedule,
                Optimizer::Sgd { lr: 0.05 },
                CompileOptions {
                    dp: Some(DpConfig::replicas(2)),
                    ..CompileOptions::default()
                },
            )
            .unwrap();
            t.init(&model.init).unwrap();
            t
        };
        let smooth = build_dp();
        let chaotic = build_dp();
        let n_raw = chaotic.runtime().program().actors.len();
        assert_eq!(n_raw, 2 * schedule.n_actors());
        let base = schedule.n_actors();
        let policy = RetryPolicy {
            max_retries: 3,
            backoff: Duration::ZERO,
            rebalance_after: Some(1),
        };

        let mut faults = StdRng::seed_from_u64(79);
        for step in 0..STEPS {
            let retired = chaotic.runtime().retired_actors();
            let alive: Vec<usize> = (0..n_raw).filter(|a| !retired.contains(a)).collect();
            let target = alive[faults.gen_range(0..alive.len())];
            match faults.gen_range(0..4u32) {
                0 => {
                    let at = faults.gen_range(0..3usize);
                    chaotic
                        .runtime()
                        .inject_fault(target, Fault::DieAtInstr(at))
                        .unwrap();
                }
                1 => {
                    chaotic
                        .runtime()
                        .inject_fault(target, Fault::ErrorAtTask("bwd".into()))
                        .unwrap();
                }
                _ => {}
            }
            let a = smooth.step_with_recovery(&data, policy).unwrap();
            let b = chaotic.step_with_recovery(&data, policy).unwrap();
            assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
        }

        assert!(
            chaotic.metrics().counter("recoveries_total") >= 1,
            "fault schedule never triggered a recovery — seed went stale"
        );
        assert!(
            chaotic.metrics().counter("rebalances_total") >= 1,
            "fault schedule never triggered a DP fold — seed went stale"
        );
        assert!(chaotic.metrics().counter("dp_collectives_total") > 0);
        // Folds act replica-uniformly: actor a retired ⇔ its copy in
        // the other replica retired.
        let retired = chaotic.runtime().retired_actors();
        assert!(!retired.is_empty());
        for &a in &retired {
            let twin = (a + base) % (2 * base);
            assert!(
                retired.contains(&twin),
                "actor {a} folded without its replica twin {twin}"
            );
        }
        assert_eq!(
            chaotic.runtime().lane_live_slots(),
            0,
            "lane hub leaked rendezvous slots across aborts/folds"
        );

        let pa = smooth.params().unwrap();
        let pb = chaotic.params().unwrap();
        for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
        }
    });
}
