//! Failure semantics of the MPMD runtime: any task error or actor death
//! at any stage of a pipelined step surfaces as a bounded-time
//! `RuntimeError` (never a hang), the same runtime stays usable for the
//! next step (no reply-channel desync, no stale data messages), and the
//! recovery path restores training exactly.
//!
//! The sweeping tests run on **both** transports — the in-process mpsc
//! fabric and the Unix-domain-socket wire — and always compare against
//! an mpsc baseline, so every recovery is also a cross-transport
//! bitwise-parity proof. Wire-only failure modes (kill -9 while the
//! driver waits on a reply, one-way partitions) get dedicated tests
//! with explicit detection-time bounds.
//!
//! Every test runs under the watchdog helper, so a reintroduced
//! deadlock fails fast instead of hanging the suite.

use std::time::{Duration, Instant};

use raxpp_core::{compile_train_step, CompileOptions, CoreError, Optimizer, RetryPolicy, Trainer};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_runtime::{Fault, RuntimeError, TransportKind, DRIVER_PEER};
use raxpp_sched::gpipe;

const N_STAGES: usize = 4;

/// Both fabrics the failure contract must hold on.
const TRANSPORTS: [TransportKind; 2] = [TransportKind::Mpsc, TransportKind::UnixSocket];

/// Bound on how long any single failure may take to surface. Generous
/// for loaded CI, but far below the watchdog and the point of the
/// contract: detection is *bounded*, never a hang.
const DETECT_BUDGET: Duration = Duration::from_secs(30);

fn build_trainer_on(seed: u64, kind: TransportKind) -> (Trainer, Vec<Vec<Tensor>>) {
    let schedule = gpipe(N_STAGES, 4).unwrap();
    let model = mlp_chain(6, 3, 4, N_STAGES, seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
        .collect()];
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions {
            transport: Some(kind),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    (trainer, data)
}

fn build_trainer(seed: u64) -> (Trainer, Vec<Vec<Tensor>>) {
    build_trainer_on(seed, TransportKind::Mpsc)
}

/// The losses of one uninterrupted step on the in-process transport —
/// the oracle every faulted/recovered run must match bitwise.
fn mpsc_baseline(seed: u64) -> Vec<f32> {
    let (twin, twin_data) = build_trainer(seed);
    twin.step(&twin_data).unwrap().losses
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    }
}

#[test]
fn actor_death_at_any_stage_is_bounded_error_then_recoverable() {
    with_watchdog("actor_death_at_any_stage", || {
        for kind in TRANSPORTS {
            for stage in 0..N_STAGES {
                let seed = 70 + stage as u64;
                let (trainer, data) = build_trainer_on(seed, kind);
                let baseline = mpsc_baseline(seed);
                trainer
                    .runtime()
                    .inject_fault(stage, Fault::DieAtInstr(2))
                    .unwrap();
                // The death must surface as an error in bounded time —
                // stage `stage`'s peers are blocked in `Recv` and must be
                // woken by the abort broadcast, not wait forever.
                match trainer.step(&data) {
                    Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
                    other => panic!("{kind}/stage {stage}: expected ActorDied, got {other:?}"),
                }
                // Recovery respawns the dead actor, restores the snapshot,
                // and the retried step matches an uninterrupted mpsc run
                // bitwise — on either transport.
                let recovered = trainer.step_with_recovery(&data, fast_retry()).unwrap();
                assert_eq!(
                    recovered.losses, baseline,
                    "{kind}/stage {stage}: recovered step is not bitwise identical"
                );
            }
        }
    });
}

#[test]
fn task_error_at_any_stage_drains_and_next_step_succeeds() {
    with_watchdog("task_error_at_any_stage", || {
        for kind in TRANSPORTS {
            for stage in 0..N_STAGES {
                let seed = 80 + stage as u64;
                let (trainer, data) = build_trainer_on(seed, kind);
                let baseline = mpsc_baseline(seed);
                trainer
                    .runtime()
                    .inject_fault(stage, Fault::ErrorAtInstr(0))
                    .unwrap();
                // A task error on one actor: every other actor drains (no
                // hang), and the root cause — not a cascade abort — is
                // reported.
                match trainer.step(&data) {
                    Err(CoreError::Runtime(RuntimeError::Exec { actor, message })) => {
                        assert_eq!(actor, stage, "root cause must name the failing actor");
                        assert!(
                            message.contains("injected fault"),
                            "unexpected message: {message}"
                        );
                    }
                    other => panic!("{kind}/stage {stage}: expected Exec error, got {other:?}"),
                }
                // All actors are still alive: memory accounting still answers.
                let peaks = trainer.runtime().peak_store_bytes().unwrap();
                assert_eq!(peaks.len(), N_STAGES);
                // The error fired at instruction 0, so no parameter was
                // updated anywhere: the next step must succeed on the same
                // runtime (reply-channel resync + stale-message drain) and
                // reproduce the uninterrupted first step bitwise.
                let after = trainer.step(&data).unwrap();
                assert_eq!(
                    after.losses, baseline,
                    "{kind}/stage {stage}: step after failed step diverged"
                );
            }
        }
    });
}

#[test]
fn failing_step_then_succeeding_step_regression() {
    // Regression for the reply-channel desync: `step` used to return on
    // the first `Executed(Err)` while other actors' replies were still
    // in flight, so the next `place`/`step` consumed stale replies and
    // mismatched variants. With epoch tagging the same runtime now runs
    // an arbitrary error→success sequence — on either fabric.
    with_watchdog("failing_then_succeeding", || {
        for kind in TRANSPORTS {
            let (trainer, data) = build_trainer_on(90, kind);
            for round in 0..3 {
                trainer
                    .runtime()
                    .inject_fault(2, Fault::ErrorAtTask("fwd".into()))
                    .unwrap();
                assert!(
                    matches!(trainer.step(&data), Err(CoreError::Runtime(_))),
                    "{kind}/round {round}: injected fault did not surface"
                );
                trainer
                    .step(&data)
                    .unwrap_or_else(|e| panic!("{kind}/round {round}: step after failure: {e}"));
            }
        }
    });
}

#[test]
fn recover_respawns_dead_actors_and_replaces_resident_buffers() {
    with_watchdog("recover_respawns", || {
        for kind in TRANSPORTS {
            let (trainer, data) = build_trainer_on(91, kind);
            trainer.runtime().inject_fault(1, Fault::DieNow).unwrap();
            match trainer.step(&data) {
                Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
                other => panic!("{kind}: expected ActorDied, got {other:?}"),
            }
            let report = trainer.runtime().recover().unwrap();
            assert_eq!(report.respawned, vec![1], "exactly actor 1 respawned");
            assert!(
                report.replaced_buffers > 0,
                "driver-held param/state copies re-placed on the respawn"
            );
            // A second recover is a no-op.
            let again = trainer.runtime().recover().unwrap();
            assert!(again.respawned.is_empty());
            // The runtime is fully functional again.
            trainer.step(&data).unwrap();
            let peaks = trainer.runtime().peak_store_bytes().unwrap();
            assert_eq!(peaks.len(), N_STAGES);
        }
    });
}

#[test]
fn retry_exhaustion_reports_last_error() {
    with_watchdog("retry_exhaustion", || {
        let (trainer, data) = build_trainer(92);
        // Arm one fault per allowed attempt (initial + 1 retry), so the
        // policy runs out while faults keep firing.
        let policy = RetryPolicy {
            max_retries: 1,
            backoff: Duration::ZERO,
            rebalance_after: None,
        };
        trainer
            .runtime()
            .inject_fault(0, Fault::ErrorAtInstr(0))
            .unwrap();
        // Faults queue: the actor consumes one per execution, so the
        // retry trips over the second injection too.
        trainer
            .runtime()
            .inject_fault(0, Fault::ErrorAtInstr(0))
            .unwrap();
        match trainer.step_with_recovery(&data, policy) {
            Err(CoreError::Runtime(RuntimeError::Exec { actor: 0, .. })) => {}
            other => panic!("expected exhaustion with Exec on actor 0, got {other:?}"),
        }
        // And with faults cleared, the same trainer still trains.
        trainer.step_with_recovery(&data, fast_retry()).unwrap();
    });
}

/// Satellite regression for the step-timeout backstop: a worker that
/// vanishes with kill -9 semantics *while the driver is blocked waiting
/// for its reply* must surface as `ActorDied` or `Timeout` in bounded
/// time — no abort broadcast ever comes from a SIGKILLed process, so
/// detection rests on reply-link EOF and heartbeat silence alone. Runs
/// on both socket fabrics (UDS and TCP loopback).
#[test]
fn kill9_while_driver_awaits_reply_is_bounded_then_recoverable() {
    with_watchdog("kill9_while_driver_awaits_reply", || {
        for kind in [TransportKind::UnixSocket, TransportKind::Tcp] {
            let seed = 93;
            let (trainer, data) = build_trainer_on(seed, kind);
            let baseline = mpsc_baseline(seed);
            // Kill mid-stream: the driver has already dispatched the
            // fused Execute and is waiting on actor 1's reply.
            trainer
                .runtime()
                .inject_fault(1, Fault::KillAtInstr(2))
                .unwrap();
            let t0 = Instant::now();
            match trainer.step(&data) {
                Err(CoreError::Runtime(
                    RuntimeError::ActorDied { .. } | RuntimeError::Timeout { .. },
                )) => {}
                other => panic!("{kind}: expected ActorDied/Timeout, got {other:?}"),
            }
            assert!(
                t0.elapsed() < DETECT_BUDGET,
                "{kind}: kill -9 took {:?} to surface (budget {DETECT_BUDGET:?})",
                t0.elapsed()
            );
            // recover() respawns the severed endpoint and the retry is
            // bitwise identical to the uninterrupted mpsc run.
            let recovered = trainer.step_with_recovery(&data, fast_retry()).unwrap();
            assert_eq!(
                recovered.losses, baseline,
                "{kind}: post-kill recovery is not bitwise identical"
            );
        }
    });
}

/// One-way partition on the reply path: the actor keeps *receiving*
/// commands but all its outbound frames toward the driver — replies and
/// heartbeats — are silently discarded. The driver must notice via
/// heartbeat silence and surface `Timeout` naming the partitioned
/// actor; `recover()` heals the wire and the retry is bitwise clean.
#[test]
fn one_way_partition_toward_driver_is_bounded_timeout_then_heals() {
    with_watchdog("partition_toward_driver", || {
        let seed = 94;
        let (trainer, data) = build_trainer_on(seed, TransportKind::UnixSocket);
        let baseline = mpsc_baseline(seed);
        trainer
            .runtime()
            .inject_fault(2, Fault::Partition { to: DRIVER_PEER })
            .unwrap();
        let t0 = Instant::now();
        match trainer.step(&data) {
            Err(CoreError::Runtime(RuntimeError::Timeout { actor })) => {
                assert_eq!(actor, 2, "timeout must name the partitioned actor");
            }
            // The abort that tears the step down can also reveal the
            // partitioned actor as hung-up to a peer first.
            Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(
            t0.elapsed() < DETECT_BUDGET,
            "partition took {:?} to surface (budget {DETECT_BUDGET:?})",
            t0.elapsed()
        );
        // Recovery heals the partition (chaos state is wire state, not
        // actor state) and the retried step matches the oracle bitwise.
        let recovered = trainer.step_with_recovery(&data, fast_retry()).unwrap();
        assert_eq!(
            recovered.losses, baseline,
            "post-partition recovery is not bitwise identical"
        );
    });
}

/// One-way partition between two *workers*: stage 0's activations
/// toward stage 1 vanish, both keep heartbeating, so the only backstop
/// is the step timeout (`RAXPP_STEP_TIMEOUT_MS`, here shrunk via
/// `set_step_timeout`). The step must fail in bounded time — not hang —
/// and recovery must heal the link and retry to bitwise parity.
#[test]
fn one_way_partition_between_workers_hits_step_timeout_then_heals() {
    with_watchdog("partition_between_workers", || {
        let seed = 95;
        let (trainer, data) = build_trainer_on(seed, TransportKind::UnixSocket);
        let baseline = mpsc_baseline(seed);
        trainer.runtime().set_step_timeout(Duration::from_secs(3));
        trainer
            .runtime()
            .inject_fault(0, Fault::Partition { to: 1 })
            .unwrap();
        let t0 = Instant::now();
        match trainer.step(&data) {
            Err(CoreError::Runtime(RuntimeError::Timeout { .. } | RuntimeError::Exec { .. })) => {}
            other => panic!("expected step-timeout failure, got {other:?}"),
        }
        assert!(
            t0.elapsed() < DETECT_BUDGET,
            "worker partition took {:?} to surface (budget {DETECT_BUDGET:?})",
            t0.elapsed()
        );
        // Keep the short timeout: the first attempt inside
        // `step_with_recovery` still runs against the active partition
        // (only `recover()` heals chaos state) and must fail fast too.
        let recovered = trainer.step_with_recovery(&data, fast_retry()).unwrap();
        assert_eq!(
            recovered.losses, baseline,
            "post-partition recovery is not bitwise identical"
        );
    });
}

/// Wire faults are *transparent* where they can be: a dropped
/// connection re-dials, a delayed frame arrives late but identical, and
/// on the in-process transport all three kinds are documented no-ops —
/// so one seeded chaos schedule can drive both fabrics and stay
/// bitwise-equal.
#[test]
fn drop_and_delay_are_bitwise_transparent_and_noops_on_mpsc() {
    with_watchdog("drop_delay_transparent", || {
        let seed = 96;
        let (twin, twin_data) = build_trainer(seed);
        let base1 = twin.step(&twin_data).unwrap().losses;
        let base2 = twin.step(&twin_data).unwrap().losses;
        for kind in TRANSPORTS {
            let (trainer, data) = build_trainer_on(seed, kind);
            // A clean first step establishes every data link, so the
            // injected drop below severs a *live* connection.
            assert_eq!(trainer.step(&data).unwrap().losses, base1);
            trainer
                .runtime()
                .inject_fault(0, Fault::DropLink { peer: 1 })
                .unwrap();
            trainer
                .runtime()
                .inject_fault(1, Fault::DelayLink { peer: 2, ms: 40 })
                .unwrap();
            trainer
                .runtime()
                .inject_fault(2, Fault::DropLink { peer: 3 })
                .unwrap();
            let out = trainer.step(&data).unwrap_or_else(|e| {
                panic!("{kind}: drop/delay must be transparent, step failed: {e}")
            });
            assert_eq!(
                out.losses, base2,
                "{kind}: wire chaos changed training bits"
            );
            // On the wire, the forced drop really reconnected.
            if kind != TransportKind::Mpsc {
                assert!(
                    trainer.runtime().transport_stats().reconnects >= 1,
                    "{kind}: DropLink did not force a re-dial"
                );
            }
        }
    });
}
