//! Failure semantics of the MPMD runtime: any task error or actor death
//! at any stage of a pipelined step surfaces as a bounded-time
//! `RuntimeError` (never a hang), the same runtime stays usable for the
//! next step (no reply-channel desync, no stale data messages), and the
//! recovery path restores training exactly.
//!
//! Every test runs under the watchdog helper, so a reintroduced
//! deadlock fails fast instead of hanging the suite.

use std::time::Duration;

use raxpp_core::{compile_train_step, CompileOptions, CoreError, Optimizer, RetryPolicy, Trainer};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_runtime::{Fault, RuntimeError};
use raxpp_sched::gpipe;

const N_STAGES: usize = 4;

fn build_trainer(seed: u64) -> (Trainer, Vec<Vec<Tensor>>) {
    let schedule = gpipe(N_STAGES, 4).unwrap();
    let model = mlp_chain(6, 3, 4, N_STAGES, seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data: Vec<Vec<Tensor>> = vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
        .collect()];
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    (trainer, data)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    }
}

#[test]
fn actor_death_at_any_stage_is_bounded_error_then_recoverable() {
    with_watchdog("actor_death_at_any_stage", || {
        for stage in 0..N_STAGES {
            let (trainer, data) = build_trainer(70 + stage as u64);
            let baseline = {
                let (twin, twin_data) = build_trainer(70 + stage as u64);
                twin.step(&twin_data).unwrap().losses
            };
            trainer
                .runtime()
                .inject_fault(stage, Fault::DieAtInstr(2))
                .unwrap();
            // The death must surface as an error in bounded time — stage
            // `stage`'s peers are blocked in `Recv` and must be woken by
            // the abort broadcast, not wait forever.
            match trainer.step(&data) {
                Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
                other => panic!("stage {stage}: expected ActorDied, got {other:?}"),
            }
            // Recovery respawns the dead actor, restores the snapshot,
            // and the retried step matches an uninterrupted run bitwise.
            let recovered = trainer.step_with_recovery(&data, fast_retry()).unwrap();
            assert_eq!(
                recovered.losses, baseline,
                "stage {stage}: recovered step is not bitwise identical"
            );
        }
    });
}

#[test]
fn task_error_at_any_stage_drains_and_next_step_succeeds() {
    with_watchdog("task_error_at_any_stage", || {
        for stage in 0..N_STAGES {
            let (trainer, data) = build_trainer(80 + stage as u64);
            let baseline = {
                let (twin, twin_data) = build_trainer(80 + stage as u64);
                twin.step(&twin_data).unwrap().losses
            };
            trainer
                .runtime()
                .inject_fault(stage, Fault::ErrorAtInstr(0))
                .unwrap();
            // A task error on one actor: every other actor drains (no
            // hang), and the root cause — not a cascade abort — is
            // reported.
            match trainer.step(&data) {
                Err(CoreError::Runtime(RuntimeError::Exec { actor, message })) => {
                    assert_eq!(actor, stage, "root cause must name the failing actor");
                    assert!(
                        message.contains("injected fault"),
                        "unexpected message: {message}"
                    );
                }
                other => panic!("stage {stage}: expected Exec error, got {other:?}"),
            }
            // All actors are still alive: memory accounting still answers.
            let peaks = trainer.runtime().peak_store_bytes().unwrap();
            assert_eq!(peaks.len(), N_STAGES);
            // The error fired at instruction 0, so no parameter was
            // updated anywhere: the next step must succeed on the same
            // runtime (reply-channel resync + stale-message drain) and
            // reproduce the uninterrupted first step bitwise.
            let after = trainer.step(&data).unwrap();
            assert_eq!(
                after.losses, baseline,
                "stage {stage}: step after failed step diverged"
            );
        }
    });
}

#[test]
fn failing_step_then_succeeding_step_regression() {
    // Regression for the reply-channel desync: `step` used to return on
    // the first `Executed(Err)` while other actors' replies were still
    // in flight, so the next `place`/`step` consumed stale replies and
    // mismatched variants. With epoch tagging the same runtime now runs
    // an arbitrary error→success sequence.
    with_watchdog("failing_then_succeeding", || {
        let (trainer, data) = build_trainer(90);
        for round in 0..3 {
            trainer
                .runtime()
                .inject_fault(2, Fault::ErrorAtTask("fwd".into()))
                .unwrap();
            assert!(
                matches!(trainer.step(&data), Err(CoreError::Runtime(_))),
                "round {round}: injected fault did not surface"
            );
            trainer
                .step(&data)
                .unwrap_or_else(|e| panic!("round {round}: step after failure: {e}"));
        }
    });
}

#[test]
fn recover_respawns_dead_actors_and_replaces_resident_buffers() {
    with_watchdog("recover_respawns", || {
        let (trainer, data) = build_trainer(91);
        trainer.runtime().inject_fault(1, Fault::DieNow).unwrap();
        match trainer.step(&data) {
            Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
            other => panic!("expected ActorDied, got {other:?}"),
        }
        let report = trainer.runtime().recover().unwrap();
        assert_eq!(report.respawned, vec![1], "exactly actor 1 respawned");
        assert!(
            report.replaced_buffers > 0,
            "driver-held param/state copies re-placed on the respawn"
        );
        // A second recover is a no-op.
        let again = trainer.runtime().recover().unwrap();
        assert!(again.respawned.is_empty());
        // The runtime is fully functional again.
        trainer.step(&data).unwrap();
        let peaks = trainer.runtime().peak_store_bytes().unwrap();
        assert_eq!(peaks.len(), N_STAGES);
    });
}

#[test]
fn retry_exhaustion_reports_last_error() {
    with_watchdog("retry_exhaustion", || {
        let (trainer, data) = build_trainer(92);
        // Arm one fault per allowed attempt (initial + 1 retry), so the
        // policy runs out while faults keep firing.
        let policy = RetryPolicy {
            max_retries: 1,
            backoff: Duration::ZERO,
            rebalance_after: None,
        };
        trainer
            .runtime()
            .inject_fault(0, Fault::ErrorAtInstr(0))
            .unwrap();
        // Faults queue: the actor consumes one per execution, so the
        // retry trips over the second injection too.
        trainer
            .runtime()
            .inject_fault(0, Fault::ErrorAtInstr(0))
            .unwrap();
        match trainer.step_with_recovery(&data, policy) {
            Err(CoreError::Runtime(RuntimeError::Exec { actor: 0, .. })) => {}
            other => panic!("expected exhaustion with Exec on actor 0, got {other:?}"),
        }
        // And with faults cleared, the same trainer still trains.
        trainer.step_with_recovery(&data, fast_retry()).unwrap();
    });
}
