//! Elastic degraded-mode rebalancing: a run that **permanently** loses
//! an actor mid-step must fold that actor's stages onto the survivors
//! (via `Trainer::rebalance` / `Runtime::rebalance`) and keep training
//! **bit-identically** to an uninterrupted full-fleet run — the `Run`
//! instructions survive re-placement byte-for-byte, so only where they
//! execute changes, never what they compute.

use std::time::Duration;

use raxpp_core::{compile_train_step, CompileOptions, Optimizer, RetryPolicy, Trainer};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::{set_num_threads, Tensor};
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::Fault;
use raxpp_sched::{gpipe, one_f1b, Schedule};

fn elastic_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: Some(1),
    }
}

fn smooth_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    }
}

fn build(model: &BuiltModel, schedule: &Schedule) -> Trainer {
    let t = compile_train_step(
        &model.jaxpr,
        model.n_params,
        schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
    )
    .unwrap();
    t.init(&model.init).unwrap();
    t
}

fn make_data(schedule: &Schedule, seed: u64) -> Vec<Vec<Tensor>> {
    let mut rng = StdRng::seed_from_u64(seed + 1);
    vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([3, 6], 1.0, &mut rng))
        .collect()]
}

/// Twin runs — one smooth on the full fleet, one that permanently loses
/// actor 1 at step 2 and rebalances onto the survivors — must produce
/// bit-identical losses and parameters at every kernel thread count.
fn run_elastic(schedule: &Schedule, seed: u64) {
    let model = mlp_chain(6, 3, 4, schedule.n_stages(), seed).unwrap();
    let data = make_data(schedule, seed);
    let n = schedule.n_actors();

    for threads in [1usize, 4] {
        set_num_threads(threads);
        let smooth = build(&model, schedule);
        let elastic = build(&model, schedule);

        for step in 0..4 {
            if step == 2 {
                // With `rebalance_after: Some(1)` a single death is
                // already a permanent loss: no respawn, fold instead.
                elastic
                    .runtime()
                    .inject_fault(1, Fault::DieAtInstr(2))
                    .unwrap();
            }
            let a = smooth.step_with_recovery(&data, smooth_policy()).unwrap();
            let b = elastic.step_with_recovery(&data, elastic_policy()).unwrap();
            assert_eq!(
                a.losses,
                b.losses,
                "step {step}: losses diverged after rebalance \
                 ({} @ {threads} threads)",
                schedule.name()
            );
        }

        // The fleet genuinely shrank — and stayed shrunk.
        assert_eq!(elastic.runtime().alive_actors(), n - 1);
        assert_eq!(elastic.runtime().retired_actors(), vec![1]);
        assert_eq!(elastic.metrics().counter("rebalances_total"), 1);
        assert_eq!(
            elastic.metrics().gauge("actors_alive"),
            Some((n - 1) as f64)
        );
        assert_eq!(elastic.metrics().gauge("stages_per_actor_max"), Some(2.0));
        assert_eq!(smooth.runtime().alive_actors(), n);

        let pa = smooth.params().unwrap();
        let pb = elastic.params().unwrap();
        for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(
                a.data(),
                b.data(),
                "param {p} not bit-identical after rebalance \
                 ({} @ {threads} threads)",
                schedule.name()
            );
        }
    }
    set_num_threads(1);
}

#[test]
fn gpipe_survives_permanent_actor_loss_bitwise() {
    with_watchdog("gpipe_survives_permanent_actor_loss_bitwise", || {
        run_elastic(&gpipe(4, 4).unwrap(), 61);
    });
}

#[test]
fn one_f1b_survives_permanent_actor_loss_bitwise() {
    with_watchdog("one_f1b_survives_permanent_actor_loss_bitwise", || {
        run_elastic(&one_f1b(4, 8).unwrap(), 62);
    });
}

/// The traced recovery path must record the `"rebalanced"` step event
/// (schema v2) and stay bit-identical too.
#[test]
fn rebalance_is_traced_and_bitwise() {
    with_watchdog("rebalance_is_traced_and_bitwise", || {
        let schedule = gpipe(4, 4).unwrap();
        let model = mlp_chain(6, 3, 4, schedule.n_stages(), 63).unwrap();
        let data = make_data(&schedule, 63);
        let smooth = build(&model, &schedule);
        let elastic = build(&model, &schedule);

        elastic
            .runtime()
            .inject_fault(2, Fault::DieAtInstr(1))
            .unwrap();
        let a = smooth.step_with_recovery(&data, smooth_policy()).unwrap();
        let (b, trace) = elastic
            .step_traced_with_recovery(&data, elastic_policy())
            .unwrap();
        assert_eq!(a.losses, b.losses);
        assert!(trace.has_event("retry"));
        assert!(
            trace.has_event("rebalanced"),
            "traced elastic recovery must record the rebalanced event; got {:?}",
            trace.events
        );
        assert_eq!(elastic.runtime().retired_actors(), vec![2]);
        // Another step on the shrunken fleet still matches.
        let a2 = smooth.step_with_recovery(&data, smooth_policy()).unwrap();
        let b2 = elastic.step_with_recovery(&data, elastic_policy()).unwrap();
        assert_eq!(a2.losses, b2.losses);
    });
}

/// Losing two actors across separate incidents folds both away; the
/// remaining half-size fleet still trains bit-identically.
#[test]
fn successive_losses_fold_down_to_half_the_fleet() {
    with_watchdog("successive_losses_fold_down_to_half_the_fleet", || {
        let schedule = gpipe(4, 4).unwrap();
        let model = mlp_chain(6, 3, 4, schedule.n_stages(), 64).unwrap();
        let data = make_data(&schedule, 64);
        let smooth = build(&model, &schedule);
        let elastic = build(&model, &schedule);

        for step in 0..4 {
            if step == 1 {
                elastic
                    .runtime()
                    .inject_fault(3, Fault::DieAtInstr(0))
                    .unwrap();
            }
            if step == 3 {
                elastic
                    .runtime()
                    .inject_fault(0, Fault::DieAtInstr(0))
                    .unwrap();
            }
            let a = smooth.step_with_recovery(&data, smooth_policy()).unwrap();
            let b = elastic.step_with_recovery(&data, elastic_policy()).unwrap();
            assert_eq!(a.losses, b.losses, "step {step}: losses diverged");
        }
        assert_eq!(elastic.runtime().alive_actors(), 2);
        assert_eq!(elastic.runtime().retired_actors(), vec![0, 3]);
        assert_eq!(elastic.metrics().counter("rebalances_total"), 2);
        let pa = smooth.params().unwrap();
        let pb = elastic.params().unwrap();
        for (p, (a, b)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(a.data(), b.data(), "param {p} not bit-identical");
        }
    });
}
