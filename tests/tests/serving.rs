//! The serving tier's contracts (`docs/serving.md`):
//!
//! * the forward-only program is the forward *half* of the training
//!   step — same jaxprs, same buffers — so serving outputs are
//!   bitwise-identical to a training step's pre-update outputs, across
//!   schedules and tensor-parallel degrees;
//! * a served request is bitwise-identical to running it alone through
//!   an unbatched (`n_mubatches = 1`) forward program — padding and
//!   slot packing never leak into results;
//! * a mid-request rank kill errors the carried requests in bounded
//!   time and the next request succeeds (degraded-mode serving);
//! * weight generations swap between dispatches and are never mixed
//!   within one request;
//! * serving resumes from the newest valid training checkpoint
//!   generation;
//! * traced dispatches carry `"serve"` request spans (trace schema v7).

use std::path::PathBuf;
use std::time::Duration;

use raxpp_core::{
    compile_train_step, CheckpointPolicy, CompileOptions, Optimizer, RetryPolicy, TpConfig, Trainer,
};
use raxpp_integration::with_watchdog;
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::{Jaxpr, Tensor, TraceCtx};
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::Fault;
use raxpp_sched::{gpipe, one_f1b, Schedule};
use raxpp_serve::{
    compile_forward_step, ForwardOptions, ForwardStep, ServeConfig, ServeError, Server,
};
use raxpp_taskgraph::TaskLabel;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("raxpp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two linear stages: y = (x @ w1) @ w2, loss = 0.5 Σ y². With
/// w = s·I the prediction is exactly s₁·s₂·x (bitwise: scaling by a
/// power of two and adding zeros are exact), which makes mixed weight
/// generations detectable from a single output.
fn linear_model() -> Jaxpr {
    let ctx = TraceCtx::new();
    let w1 = ctx.input([4, 4]);
    let w2 = ctx.input([4, 4]);
    let x = ctx.input([2, 4]);
    let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap());
    let y = h.matmul(&w2).unwrap();
    let loss = y.mul(&y).unwrap().sum().scale(0.5);
    ctx.finish(&[loss, y]).unwrap()
}

fn scaled_eye(s: f32) -> Vec<Tensor> {
    let eye = Tensor::eye(4);
    let scaled = Tensor::from_vec([4, 4], eye.data().iter().map(|v| s * v).collect()).unwrap();
    vec![scaled.clone(), scaled]
}

fn mb_data(model: &BuiltModel, schedule: &Schedule, width: usize, seed: u64) -> Vec<Vec<Tensor>> {
    let _ = model;
    let mut rng = StdRng::seed_from_u64(seed);
    vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([2, width], 1.0, &mut rng))
        .collect()]
}

/// The headline parity contract: for every (schedule × tp) cell, the
/// forward-only program's outputs are bitwise-identical to the
/// training step's pre-update outputs on the same data, and the
/// projected program carries no backward/optimizer work at all.
#[test]
fn forward_projection_matches_training_forward_bitwise() {
    with_watchdog(
        "forward_projection_matches_training_forward_bitwise",
        || {
            for (schedule, seed) in [(gpipe(2, 4).unwrap(), 31), (one_f1b(2, 4).unwrap(), 32)] {
                let model = mlp_chain(8, 2, 4, schedule.n_stages(), seed).unwrap();
                let data = mb_data(&model, &schedule, 8, seed + 1);
                for tp in [1usize, 2] {
                    let tp_cfg = (tp > 1).then(|| TpConfig::model_parallel(tp));
                    let trainer: Trainer = compile_train_step(
                        &model.jaxpr,
                        model.n_params,
                        &schedule,
                        Optimizer::Sgd { lr: 0.05 },
                        CompileOptions {
                            tp: tp_cfg.clone(),
                            ..CompileOptions::default()
                        },
                    )
                    .unwrap();
                    trainer.init(&model.init).unwrap();
                    // A step's outputs are computed before its update.
                    let train_out = trainer.step(&data).unwrap().outputs;

                    let step = compile_forward_step(
                        &model.jaxpr,
                        model.n_params,
                        &schedule,
                        ForwardOptions {
                            tp: tp_cfg,
                            ..ForwardOptions::default()
                        },
                    )
                    .unwrap();
                    let program = step.runtime().program();
                    assert_eq!(
                        program.count_runs(|l| !matches!(l, TaskLabel::Fwd { .. })),
                        0,
                        "{} tp={tp}: projected program is forward-only",
                        schedule.name()
                    );
                    step.load_params(&model.init).unwrap();
                    let fwd_out = step.forward(&data).unwrap();

                    assert_eq!(train_out.len(), fwd_out.len());
                    for (o, (a, b)) in train_out.iter().zip(&fwd_out).enumerate() {
                        for (mb, (ta, tb)) in a.iter().zip(b).enumerate() {
                            assert_eq!(
                                ta.data(),
                                tb.data(),
                                "{} tp={tp}: output {o} microbatch {mb} must be bitwise equal",
                                schedule.name()
                            );
                        }
                    }
                }
            }
        },
    );
}

/// The acceptance gate: a request served through a padded multi-slot
/// dispatch is bitwise-identical to running it alone through an
/// unbatched (one-slot) forward program.
#[test]
fn served_request_matches_the_unbatched_forward_program() {
    with_watchdog(
        "served_request_matches_the_unbatched_forward_program",
        || {
            let jaxpr = linear_model();
            let params = scaled_eye(1.0);
            let mut rng = StdRng::seed_from_u64(7);
            let req = Tensor::randn([2, 4], 1.0, &mut rng);

            // The unbatched reference: one pipeline slot, the request alone.
            let single =
                compile_forward_step(&jaxpr, 2, &gpipe(2, 1).unwrap(), ForwardOptions::default())
                    .unwrap();
            single.load_params(&params).unwrap();
            let want = single.forward(&[vec![req.clone()]]).unwrap();

            // The serving path: four slots, three of them padded.
            let step =
                compile_forward_step(&jaxpr, 2, &gpipe(2, 4).unwrap(), ForwardOptions::default())
                    .unwrap();
            step.load_params(&params).unwrap();
            let server = Server::start(
                step,
                ServeConfig {
                    max_wait: Duration::from_millis(2),
                    ..ServeConfig::default()
                },
            );
            let got = server.infer(vec![req]).unwrap();
            assert_eq!(got.len(), want.len());
            for (o, t) in got.iter().enumerate() {
                assert_eq!(
                    t.data(),
                    want[o][0].data(),
                    "output {o}: batched+padded serving must equal the unbatched forward"
                );
            }
            server.shutdown();
        },
    );
}

/// A rank killed mid-request errors the carried requests in bounded
/// time (no ticket waits forever) and the engine repairs the fleet:
/// the next request succeeds with correct outputs.
#[test]
fn rank_kill_mid_request_is_bounded_and_service_resumes() {
    with_watchdog(
        "rank_kill_mid_request_is_bounded_and_service_resumes",
        || {
            let jaxpr = linear_model();
            let step =
                compile_forward_step(&jaxpr, 2, &gpipe(2, 2).unwrap(), ForwardOptions::default())
                    .unwrap();
            step.load_params(&scaled_eye(1.0)).unwrap();
            // The next dispatch will lose actor 1 mid-stream.
            step.runtime()
                .inject_fault(1, Fault::DieAtInstr(1))
                .unwrap();
            let server = Server::start(step, ServeConfig::default());

            let x = Tensor::full([2, 4], 0.5);
            let t0 = server.submit(vec![x.clone()]).unwrap();
            let t1 = server.submit(vec![x.clone()]).unwrap();
            for t in [t0, t1] {
                match t.wait() {
                    Err(ServeError::Dispatch(m)) => {
                        assert!(!m.is_empty(), "dispatch error carries a reason")
                    }
                    other => panic!("expected a bounded Dispatch error, got {other:?}"),
                }
            }
            assert_eq!(server.metrics().counter("serve_failed_batches_total"), 1);

            // The engine recovered the fleet; service resumes with exact
            // results (identity weights: y == x).
            let out = server.infer(vec![x.clone()]).unwrap();
            assert_eq!(out[1].data(), x.data());
            assert_eq!(server.metrics().counter("serve_batches_total"), 1);
            assert_eq!(server.queue_depth(), 0);
            server.shutdown();
        },
    );
}

/// Weight generations are swapped only between dispatches: while one
/// client hammers the server and another thread flips generations,
/// every reply is *entirely* from one generation (y == x or y == 4x,
/// never the mixed 2x).
#[test]
fn weight_generations_never_mix_within_a_request() {
    with_watchdog("weight_generations_never_mix_within_a_request", || {
        let jaxpr = linear_model();
        let step =
            compile_forward_step(&jaxpr, 2, &gpipe(2, 2).unwrap(), ForwardOptions::default())
                .unwrap();
        step.load_params(&scaled_eye(1.0)).unwrap();
        let server = Server::start(
            step,
            ServeConfig {
                max_wait: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        );

        let x = Tensor::from_vec([2, 4], (1..=8).map(|i| i as f32 * 0.25).collect()).unwrap();
        let gen_a: Vec<f32> = x.data().to_vec(); //  I ·  I -> y = x
        let gen_b: Vec<f32> = x.data().iter().map(|v| 4.0 * v).collect(); // 2I · 2I -> y = 4x

        std::thread::scope(|s| {
            let client = s.spawn(|| {
                let mut seen = [0usize; 2];
                for _ in 0..40 {
                    let out = server.infer(vec![x.clone()]).unwrap();
                    let y = out[1].data();
                    if y == gen_a.as_slice() {
                        seen[0] += 1;
                    } else if y == gen_b.as_slice() {
                        seen[1] += 1;
                    } else {
                        panic!("reply mixes weight generations: {y:?}");
                    }
                }
                seen
            });
            for _ in 0..12 {
                server.swap_weights(scaled_eye(2.0)).unwrap();
                std::thread::sleep(Duration::from_micros(300));
                server.swap_weights(scaled_eye(1.0)).unwrap();
                std::thread::sleep(Duration::from_micros(300));
            }
            let seen = client.join().unwrap();
            assert_eq!(seen[0] + seen[1], 40, "every reply is a pure generation");
        });

        // Deterministic coda: after a final swap, the new generation
        // answers.
        server.swap_weights(scaled_eye(2.0)).unwrap();
        let out = server.infer(vec![x.clone()]).unwrap();
        assert_eq!(out[1].data(), gen_b.as_slice());
        server.shutdown();
    });
}

/// Serving picks up the newest valid checkpoint generation written by
/// training (parameters only — optimizer moments are ignored) and then
/// answers bitwise-identically to a forward step fed the trainer's
/// live parameters.
#[test]
fn serving_resumes_from_the_latest_checkpoint_generation() {
    with_watchdog(
        "serving_resumes_from_the_latest_checkpoint_generation",
        || {
            let dir = temp_dir("ckpt");
            let schedule = gpipe(2, 2).unwrap();
            let model = mlp_chain(8, 2, 4, 2, 91).unwrap();
            let trainer = compile_train_step(
                &model.jaxpr,
                model.n_params,
                &schedule,
                Optimizer::adam(5e-3),
                CompileOptions::default(),
            )
            .unwrap();
            trainer.init(&model.init).unwrap();
            trainer.set_checkpoint_policy(Some(CheckpointPolicy::new(&dir, 1, 3)));
            let data = mb_data(&model, &schedule, 8, 92);
            for _ in 0..3 {
                // Checkpoints are written on the recovered-step path.
                trainer
                    .step_with_recovery(&data, RetryPolicy::default())
                    .unwrap();
            }
            let live = trainer.params().unwrap();

            // Reference: the trainer's live parameters, loaded directly.
            let reference: ForwardStep = compile_forward_step(
                &model.jaxpr,
                model.n_params,
                &schedule,
                ForwardOptions::default(),
            )
            .unwrap();
            reference.load_params(&live).unwrap();
            let want = reference.forward(&data).unwrap();

            // Serving: the same generation, restored from disk.
            let step = compile_forward_step(
                &model.jaxpr,
                model.n_params,
                &schedule,
                ForwardOptions::default(),
            )
            .unwrap();
            let server = Server::start(step, ServeConfig::default());
            let generation = server.load_latest_checkpoint(&dir).unwrap();
            assert_eq!(generation, Some(3), "newest valid generation is step 3");
            let t0 = server.submit(vec![data[0][0].clone()]).unwrap();
            let t1 = server.submit(vec![data[0][1].clone()]).unwrap();
            let o0 = t0.wait().unwrap();
            let o1 = t1.wait().unwrap();
            for (o, t) in o0.iter().enumerate() {
                assert_eq!(t.data(), want[o][0].data(), "slot 0 output {o}");
            }
            for (o, t) in o1.iter().enumerate() {
                assert_eq!(t.data(), want[o][1].data(), "slot 1 output {o}");
            }
            server.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
        },
    );
}

/// Traced dispatches carry the serving tier's pseudo-actor track:
/// one `"serve"` span per carried request, named `request <id>
/// (slot <s>)`, on actor index `n_actors` (trace schema v7).
#[test]
fn traced_dispatches_carry_serve_spans() {
    with_watchdog("traced_dispatches_carry_serve_spans", || {
        let jaxpr = linear_model();
        let step =
            compile_forward_step(&jaxpr, 2, &gpipe(2, 2).unwrap(), ForwardOptions::default())
                .unwrap();
        step.load_params(&scaled_eye(1.0)).unwrap();
        let n_actors = step.runtime().program().n_actors();
        step.runtime().set_tracing(true);
        let server = Server::start(step, ServeConfig::default());

        let x = Tensor::full([2, 4], 0.25);
        let t0 = server.submit(vec![x.clone()]).unwrap();
        let t1 = server.submit(vec![x.clone()]).unwrap();
        t0.wait().unwrap();
        t1.wait().unwrap();

        let trace = server.take_step_trace().expect("a traced dispatch");
        let serve_track = trace
            .actors
            .iter()
            .find(|a| a.actor == n_actors)
            .expect("pseudo-actor track appended after the real actors");
        assert_eq!(serve_track.spans.len(), 2, "one span per carried request");
        for (slot, span) in serve_track.spans.iter().enumerate() {
            assert_eq!(span.kind, "serve");
            assert!(
                span.name.contains(&format!("(slot {slot})")),
                "span name {:?} carries its slot",
                span.name
            );
            assert!(span.dur_ns > 0, "admission-to-reply duration");
        }
        // Real pipeline spans are present too (the dispatch itself).
        assert!(trace
            .actors
            .iter()
            .any(|a| a.spans.iter().any(|s| s.kind == "fwd")));
        // And the whole thing exports to Chrome JSON with the serve cat.
        assert!(trace.chrome_trace_json().contains("\"cat\": \"serve\""));
        server.shutdown();
    });
}
