//! Shared helpers for the integration tests in `tests/tests/`.

use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

/// Default watchdog budget per test body, overridable with
/// `RAXPP_TEST_TIMEOUT_SECS`.
const DEFAULT_TEST_TIMEOUT_SECS: u64 = 120;

/// Runs a test body under a watchdog: if it does not finish within
/// `RAXPP_TEST_TIMEOUT_SECS` (default 120 s), the test fails immediately
/// instead of hanging the whole suite — a reintroduced runtime deadlock
/// shows up as a fast, named failure in `scripts/verify.sh`.
///
/// Panics from the body are propagated unchanged, so assertion messages
/// stay intact.
pub fn with_watchdog<F>(name: &str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let timeout = std::env::var("RAXPP_TEST_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_TEST_TIMEOUT_SECS);
    let (done_tx, done_rx) = channel::<()>();
    let handle = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            f();
            let _ = done_tx.send(());
        })
        .expect("spawn watchdog thread");
    match done_rx.recv_timeout(Duration::from_secs(timeout)) {
        Ok(()) => {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(RecvTimeoutError::Disconnected) => {
            // The body panicked (sender dropped without sending).
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            // The body thread is abandoned; the process stays alive until
            // the harness exits, but this test fails *now*. Name the
            // fabric under test: a hang that only reproduces with
            // `RAXPP_TRANSPORT=socket` is a wire bug, not a runtime bug.
            let transport =
                std::env::var("RAXPP_TRANSPORT").unwrap_or_else(|_| "mpsc (default)".into());
            panic!(
                "watchdog: test {name:?} did not finish within {timeout}s \
                 (deadlock? transport={transport})"
            );
        }
    }
}
