//! End-to-end tests for the `raxpp-launch` binary: real worker
//! *processes*, real sockets, real SIGKILL — asserting the runs end in
//! `PARITY OK` (bitwise against the in-process mpsc oracle).

use std::process::Command;
use std::time::{Duration, Instant};

/// Hard wall-clock bound per launch run. Generous (debug builds,
/// loaded CI), but finite: a hang is a failure, not a wait.
const RUN_BUDGET: Duration = Duration::from_secs(120);

fn launch(args: &[&str]) -> (bool, String) {
    let t0 = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_raxpp-launch"))
        .args(args)
        .output()
        .expect("spawn raxpp-launch");
    assert!(
        t0.elapsed() < RUN_BUDGET,
        "raxpp-launch {args:?} exceeded {RUN_BUDGET:?}"
    );
    let text = format!(
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn smoke_uds_fleet_matches_mpsc_oracle_bitwise() {
    let (ok, text) = launch(&["--steps", "3", "--seed", "11"]);
    assert!(ok, "launch failed:\n{text}");
    assert!(text.contains("PARITY OK"), "no parity line:\n{text}");
}

#[test]
fn kill9_mid_training_recovers_to_bitwise_parity() {
    let (ok, text) = launch(&["--steps", "4", "--seed", "23", "--kill", "2:1"]);
    assert!(ok, "launch failed:\n{text}");
    assert!(
        text.contains("SIGKILL worker 1 (delivered: true)"),
        "kill not delivered:\n{text}"
    );
    assert!(text.contains("PARITY OK"), "no parity line:\n{text}");
}

#[test]
fn tcp_fleet_survives_kill9_of_last_stage() {
    let (ok, text) = launch(&["--steps", "3", "--seed", "5", "--tcp", "--kill", "1:3"]);
    assert!(ok, "launch failed:\n{text}");
    assert!(
        text.contains("SIGKILL worker 3 (delivered: true)"),
        "kill not delivered:\n{text}"
    );
    assert!(text.contains("PARITY OK"), "no parity line:\n{text}");
}

#[test]
fn one_f1b_schedule_runs_over_the_wire() {
    let (ok, text) = launch(&[
        "--steps", "2", "--seed", "3", "--1f1b", "--stages", "2", "--mb", "4",
    ]);
    assert!(ok, "launch failed:\n{text}");
    assert!(text.contains("PARITY OK"), "no parity line:\n{text}");
}
