//! `raxpp-launch` — the multi-process MPMD fleet launcher.
//!
//! This binary is both halves of a distributed RaxPP run, selected by
//! `--worker`:
//!
//! * **Driver** (default): compiles the training step, spawns one
//!   worker *process* per actor (re-executing this same binary with
//!   `--worker <id>`), and drives training through the single
//!   controller over Unix-domain sockets (or TCP with `--tcp`).
//!   Unless `--no-oracle` is given, an in-process mpsc twin trains on
//!   the same data and every loss and final parameter is compared
//!   **bitwise** — the run ends with `PARITY OK` only if the wire
//!   changed nothing.
//! * **Worker**: compiles the *identical* program from the same spec
//!   (compilation is deterministic — programs never cross the wire)
//!   and serves it via [`raxpp_runtime::serve_worker`] until the
//!   driver hangs up.
//!
//! `--kill STEP:ACTOR` delivers a real SIGKILL to a worker right
//! before the given step: the driver must surface the death as a
//! bounded-time `ActorDied`, respawn the process, restore the
//! last-known-good snapshot, and retry to a bit-identical trajectory.
//!
//! The model spec (`--width/--batch/--layers/--stages/--mb/--seed`)
//! must be identical between driver and workers; the driver forwards
//! its own spec when spawning, so this only matters when launching
//! workers by hand.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use raxpp_core::{
    compile_train_step, compile_train_step_on, compile_worker_program, CompileOptions, Optimizer,
    RetryPolicy, Trainer,
};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_runtime::{serve_worker, Runtime, TransportKind, WorkerConfig};
use raxpp_sched::{gpipe, one_f1b, Schedule};

/// The model/schedule spec shared verbatim between driver and workers.
#[derive(Debug, Clone)]
struct Spec {
    width: usize,
    batch: usize,
    layers: usize,
    stages: usize,
    mb: usize,
    seed: u64,
    one_f1b: bool,
}

impl Spec {
    fn model(&self) -> BuiltModel {
        mlp_chain(self.width, self.batch, self.layers, self.stages, self.seed)
            .expect("model spec is valid")
    }

    fn schedule(&self) -> Schedule {
        if self.one_f1b {
            one_f1b(self.stages, self.mb).expect("schedule spec is valid")
        } else {
            gpipe(self.stages, self.mb).expect("schedule spec is valid")
        }
    }

    /// The spec as command-line arguments, for spawning workers.
    fn forward_args(&self) -> Vec<String> {
        let mut v = vec![
            "--width".into(),
            self.width.to_string(),
            "--batch".into(),
            self.batch.to_string(),
            "--layers".into(),
            self.layers.to_string(),
            "--stages".into(),
            self.stages.to_string(),
            "--mb".into(),
            self.mb.to_string(),
            "--seed".into(),
            self.seed.to_string(),
        ];
        if self.one_f1b {
            v.push("--1f1b".into());
        }
        v
    }
}

struct Args {
    spec: Spec,
    steps: u64,
    tcp: bool,
    dir: Option<PathBuf>,
    worker: Option<usize>,
    /// SIGKILL worker `actor` right before step `step` (0-based).
    kill: Option<(u64, usize)>,
    oracle: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: raxpp-launch [--steps N] [--width W] [--batch B] [--layers L] [--stages S]\n\
         \u{20}                   [--mb M] [--seed SEED] [--1f1b] [--tcp] [--dir PATH]\n\
         \u{20}                   [--kill STEP:ACTOR] [--no-oracle]\n\
         \u{20}      raxpp-launch --worker ID --dir PATH <same spec flags>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: Spec {
            width: 6,
            batch: 3,
            layers: 4,
            stages: 4,
            mb: 4,
            seed: 7,
            one_f1b: false,
        },
        steps: 4,
        tcp: false,
        dir: None,
        worker: None,
        kill: None,
        oracle: true,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--width" => args.spec.width = parse(&need(&mut it, "--width"), "--width"),
            "--batch" => args.spec.batch = parse(&need(&mut it, "--batch"), "--batch"),
            "--layers" => args.spec.layers = parse(&need(&mut it, "--layers"), "--layers"),
            "--stages" => args.spec.stages = parse(&need(&mut it, "--stages"), "--stages"),
            "--mb" => args.spec.mb = parse(&need(&mut it, "--mb"), "--mb"),
            "--seed" => args.spec.seed = parse(&need(&mut it, "--seed"), "--seed"),
            "--1f1b" => args.spec.one_f1b = true,
            "--steps" => args.steps = parse(&need(&mut it, "--steps"), "--steps"),
            "--tcp" => args.tcp = true,
            "--dir" => args.dir = Some(PathBuf::from(need(&mut it, "--dir"))),
            "--worker" => args.worker = Some(parse(&need(&mut it, "--worker"), "--worker")),
            "--kill" => {
                let v = need(&mut it, "--kill");
                let (s, a) = v.split_once(':').unwrap_or_else(|| {
                    eprintln!("--kill wants STEP:ACTOR, got {v}");
                    usage()
                });
                args.kill = Some((parse(s, "--kill step"), parse(a, "--kill actor")));
            }
            "--no-oracle" => args.oracle = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {flag}: {v}");
        usage()
    })
}

/// Seeded training data: `data[input][mubatch]`, derived from the spec
/// seed so driver and oracle consume identical bits.
fn make_data(spec: &Spec, schedule: &Schedule) -> Vec<Vec<Tensor>> {
    let mut rng = StdRng::seed_from_u64(spec.seed + 1);
    vec![(0..schedule.n_mubatches())
        .map(|_| Tensor::randn([spec.batch, spec.width], 1.0, &mut rng))
        .collect()]
}

fn run_worker(args: &Args) -> std::io::Result<()> {
    let me = args.worker.expect("worker mode");
    let dir = args.dir.clone().unwrap_or_else(|| {
        eprintln!("--worker requires --dir");
        usage()
    });
    let model = args.spec.model();
    let schedule = args.spec.schedule();
    let program = compile_worker_program(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
    )
    .expect("worker compiles the shared spec");
    serve_worker(
        program,
        &WorkerConfig {
            me,
            n_actors: schedule.n_actors(),
            dir,
            tcp: args.tcp,
        },
    )
}

fn run_driver(args: &Args) -> Result<(), String> {
    let model = args.spec.model();
    let schedule = args.spec.schedule();
    let data = make_data(&args.spec, &schedule);
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("raxpp-launch-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating fleet dir: {e}"))?;

    let exe = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
    let spec_args = args.spec.forward_args();
    let tcp = args.tcp;
    let spawn_dir = dir.clone();
    let spawn = Box::new(move |a: usize| {
        let mut cmd = Command::new(&exe);
        cmd.arg("--worker")
            .arg(a.to_string())
            .arg("--dir")
            .arg(&spawn_dir)
            .args(&spec_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if tcp {
            cmd.arg("--tcp");
        }
        cmd.spawn()
    });

    let t0 = Instant::now();
    let trainer = compile_train_step_on(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.05 },
        CompileOptions::default(),
        |program| Runtime::with_process_fleet(program, &dir, tcp, spawn),
    )
    .map_err(|e| format!("compile/launch: {e}"))?;
    trainer
        .init(&model.init)
        .map_err(|e| format!("init: {e}"))?;
    eprintln!(
        "fleet up: {} workers over {} in {:?}",
        schedule.n_actors(),
        if tcp { "tcp" } else { "uds" },
        t0.elapsed()
    );

    let oracle: Option<Trainer> = if args.oracle {
        let t = compile_train_step(
            &model.jaxpr,
            model.n_params,
            &schedule,
            Optimizer::Sgd { lr: 0.05 },
            CompileOptions {
                transport: Some(TransportKind::Mpsc),
                ..CompileOptions::default()
            },
        )
        .map_err(|e| format!("oracle compile: {e}"))?;
        t.init(&model.init)
            .map_err(|e| format!("oracle init: {e}"))?;
        Some(t)
    } else {
        None
    };

    let policy = RetryPolicy {
        max_retries: 3,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };
    for step in 0..args.steps {
        if let Some((kstep, actor)) = args.kill {
            if kstep == step {
                let killed = trainer.runtime().kill_worker(actor);
                eprintln!("step {step}: SIGKILL worker {actor} (delivered: {killed})");
            }
        }
        let t_step = Instant::now();
        let out = trainer
            .step_with_recovery(&data, policy)
            .map_err(|e| format!("step {step}: {e}"))?;
        println!(
            "step {step}: mean_loss={:.6} wall={:?}",
            out.mean_loss,
            t_step.elapsed()
        );
        if let Some(oracle) = &oracle {
            let want = oracle
                .step_with_recovery(&data, policy)
                .map_err(|e| format!("oracle step {step}: {e}"))?;
            if out.losses != want.losses {
                return Err(format!(
                    "step {step}: losses diverged from mpsc oracle\n  wire:   {:?}\n  oracle: {:?}",
                    out.losses, want.losses
                ));
            }
        }
    }
    if let Some(oracle) = &oracle {
        let got = trainer.params().map_err(|e| format!("params: {e}"))?;
        let want = oracle.params().map_err(|e| format!("oracle params: {e}"))?;
        for (p, (a, b)) in got.iter().zip(&want).enumerate() {
            if a.data() != b.data() {
                return Err(format!("param {p} not bit-identical to mpsc oracle"));
            }
        }
        let stats = trainer.runtime().transport_stats();
        println!(
            "PARITY OK ({} steps, {} params bitwise; wire tx={}B rx={}B reconnects={})",
            args.steps,
            got.len(),
            stats.bytes_tx,
            stats.bytes_rx,
            stats.reconnects
        );
    } else {
        println!("DONE ({} steps)", args.steps);
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    if let Some(me) = args.worker {
        if let Err(e) = run_worker(&args) {
            eprintln!("worker {me} failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Err(e) = run_driver(&args) {
        eprintln!("raxpp-launch: {e}");
        std::process::exit(1);
    }
}
