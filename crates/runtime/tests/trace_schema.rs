//! Step-trace observability tests: the golden chrome-trace schema
//! (external tooling parses these field names and their order — do not
//! change it casually), end-to-end span recording on a real pipeline
//! step, and the object-store accounting regression around aborted
//! epochs.

use raxpp_ir::{EvalStats, Jaxpr, Tensor, TraceCtx};
use raxpp_runtime::{
    ActorTrace, Fault, Runtime, SpanEvent, StepEvent, StepTrace, TRACE_SCHEMA_VERSION,
};
use raxpp_sched::{gpipe, one_f1b, Schedule};
use raxpp_taskgraph::{
    check_send_recv_order, insert_frees, pipeline_model, unroll_loop, Instr, MpmdProgram,
    UnrollOptions,
};

fn chain(emb: usize, n_stages: usize) -> (Jaxpr, usize) {
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..n_stages).map(|_| ctx.input([emb, emb])).collect();
    let x = ctx.input([2, emb]);
    let mut h = x;
    for (i, w) in ws.iter().enumerate() {
        h = h.matmul(w).unwrap().tanh();
        if i + 1 < n_stages {
            h = ctx.pipeline_yield(&h);
        }
    }
    let loss = h.mul(&h).unwrap().sum().scale(0.5);
    (ctx.finish(&[loss]).unwrap(), n_stages)
}

fn compile(jaxpr: &Jaxpr, n_params: usize, schedule: &Schedule) -> MpmdProgram {
    let model = pipeline_model(jaxpr, n_params).unwrap();
    let mut compiled = unroll_loop(&model, schedule, UnrollOptions::default()).unwrap();
    check_send_recv_order(&compiled.program).unwrap();
    insert_frees(&mut compiled.program);
    compiled.program
}

fn rand_inputs(
    jaxpr: &Jaxpr,
    n_params: usize,
    n_mb: usize,
    seed: u64,
) -> (Vec<Tensor>, Vec<Vec<Tensor>>) {
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    let shapes = jaxpr.in_shapes();
    let params = shapes[..n_params]
        .iter()
        .map(|s| Tensor::randn(s.clone(), 0.4, &mut rng))
        .collect();
    let data = shapes[n_params..]
        .iter()
        .map(|s| {
            (0..n_mb)
                .map(|_| Tensor::randn(s.clone(), 1.0, &mut rng))
                .collect()
        })
        .collect();
    (params, data)
}

/// The golden trace: every field name, every separator, the exact
/// ordering. `docs/observability.md` documents this schema and
/// `raxpp-simcluster`'s predicted-timeline export mirrors it; any change
/// here is a breaking change for external trace consumers.
#[test]
fn golden_chrome_trace_schema() {
    let trace = StepTrace {
        step: 3,
        actors: vec![ActorTrace {
            actor: 1,
            spans: vec![
                SpanEvent {
                    instr: 0,
                    kind: "fwd",
                    name: "fwd(mb=0, s=1)".into(),
                    start_ns: 1_000,
                    dur_ns: 2_500,
                    bytes: 0,
                    alloc: Some(EvalStats {
                        allocated: 3,
                        reused: 1,
                        freed: 2,
                    }),
                },
                SpanEvent {
                    instr: 1,
                    kind: "send",
                    name: "send b2 -> actor 0".into(),
                    start_ns: 4_000,
                    dur_ns: 500,
                    bytes: 64,
                    alloc: None,
                },
            ],
            dropped: 0,
        }],
        events: vec![
            StepEvent {
                ts_ns: 5_000,
                actor: None,
                kind: "retry".into(),
                detail: "attempt 2".into(),
            },
            StepEvent {
                ts_ns: 6_000,
                actor: None,
                kind: "rebalanced".into(),
                detail: "retired [2], migrated 3 buffers".into(),
            },
        ],
    };
    let expected = concat!(
        "[\n",
        "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 1, ",
        "\"args\": {\"name\": \"actor 1\"}},\n",
        "  {\"name\": \"fwd(mb=0, s=1)\", \"cat\": \"fwd\", \"ph\": \"X\", \"ts\": 1.000, ",
        "\"dur\": 2.500, \"pid\": 0, \"tid\": 1, ",
        "\"args\": {\"instr\": 0, \"step\": 3, \"allocated\": 3, \"reused\": 1, \"freed\": 2}},\n",
        "  {\"name\": \"send b2 -> actor 0\", \"cat\": \"send\", \"ph\": \"X\", \"ts\": 4.000, ",
        "\"dur\": 0.500, \"pid\": 0, \"tid\": 1, ",
        "\"args\": {\"instr\": 1, \"step\": 3, \"bytes\": 64}},\n",
        "  {\"name\": \"retry: attempt 2\", \"cat\": \"retry\", \"ph\": \"i\", \"ts\": 5.000, ",
        "\"pid\": 0, \"tid\": 0, \"s\": \"g\", \"args\": {\"step\": 3}},\n",
        "  {\"name\": \"rebalanced: retired [2], migrated 3 buffers\", ",
        "\"cat\": \"rebalanced\", \"ph\": \"i\", \"ts\": 6.000, ",
        "\"pid\": 0, \"tid\": 0, \"s\": \"g\", \"args\": {\"step\": 3}}\n",
        "]",
    );
    assert_eq!(trace.chrome_trace_json(), expected);
    // Schema v6: the additions of v2 (the "copy" span kind and the
    // "rebalanced" step event) are covered by this golden file; the
    // "collective" span kind added in v3, the "collective_wait" span
    // kind added in v4, and the "dp_collective"/"dp_collective_wait"
    // span kinds added in v5 use the same X-event fields as send/recv
    // spans and are exercised end-to-end by tests/tensor_parallel.rs
    // and tests/data_parallel.rs. The "wire" span kind added in v6
    // (socket-transport write inside a Send) uses the same X-event
    // fields and is exercised by the socket-transport suites. The
    // "serve" span kind added in v7 (one served request's lifetime on
    // a pseudo-actor track) also uses the same X-event fields and is
    // exercised by tests/serving.rs.
    assert_eq!(TRACE_SCHEMA_VERSION, 7);
}

#[test]
fn traced_step_records_spans_end_to_end() {
    let (jaxpr, n_params) = chain(4, 2);
    let schedule = one_f1b(2, 4).unwrap();
    let program = compile(&jaxpr, n_params, &schedule);
    let (params, data) = rand_inputs(&jaxpr, n_params, 4, 41);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();

    // Untraced by default: no trace in the outputs, none stashed.
    let out = rt.step(&data).unwrap();
    assert!(out.trace.is_none());
    assert!(rt.take_step_trace().is_none());

    rt.set_tracing(true);
    assert!(rt.tracing_enabled());
    let out = rt.step(&data).unwrap();
    let trace = out.trace.expect("traced step returns a trace");
    assert_eq!(trace.actors.len(), 2, "one ActorTrace per actor");
    assert!(trace.events.is_empty(), "clean step has no step events");

    for at in &trace.actors {
        assert!(!at.spans.is_empty(), "actor {} recorded spans", at.actor);
        assert_eq!(at.dropped, 0);
        // Spans are in execution order on a shared monotonic timeline.
        // Nested kinds ("op" inside Run, "wire" inside a socket send,
        // the "*_wait" kinds inside their collective) are pushed before
        // their parent instruction span and start later, so exempt them.
        let nested = |k: &str| {
            k == "op" || k == "wire" || k == "collective_wait" || k == "dp_collective_wait"
        };
        for w in at.spans.windows(2) {
            if !nested(w[0].kind) && !nested(w[1].kind) {
                assert!(w[0].start_ns <= w[1].start_ns);
            }
        }
        // Every send/recv span carries the payload size: activations and
        // cotangents here are [2, 4] f32 = 32 bytes.
        for s in at
            .spans
            .iter()
            .filter(|s| s.kind == "send" || s.kind == "recv")
        {
            assert_eq!(s.bytes, 4 * 2 * 4, "{} span bytes", s.kind);
        }
        // Run spans carry the interpreter's buffer-reuse counters and
        // contain nested per-primitive op spans.
        assert!(at.spans.iter().any(|s| s.alloc.is_some()));
        assert!(at.spans.iter().any(|s| s.kind == "op"));
        // 4 microbatches of fwd and bwd each.
        assert_eq!(at.spans.iter().filter(|s| s.kind == "fwd").count(), 4);
        assert_eq!(at.spans.iter().filter(|s| s.kind == "bwd").count(), 4);
    }
    // The same trace is also stashed for `take_step_trace` (the path
    // `Trainer::step_traced` uses); taking it is one-shot.
    assert_eq!(rt.take_step_trace(), Some(trace));
    assert!(rt.take_step_trace().is_none());

    // Tracing off again: back to zero-overhead mode.
    rt.set_tracing(false);
    assert!(rt.step(&data).unwrap().trace.is_none());
}

#[test]
fn failed_traced_step_keeps_partial_trace_with_abort_events() {
    let (jaxpr, n_params) = chain(4, 2);
    let program = compile(&jaxpr, n_params, &gpipe(2, 2).unwrap());
    // Fail stage 1 at its first Recv: stage 0 has already run (and
    // traced) its forward sends by then.
    let recv_idx = program.actors[1]
        .iter()
        .position(|i| matches!(i, Instr::Recv { .. }))
        .unwrap();
    let (params, data) = rand_inputs(&jaxpr, n_params, 2, 42);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    rt.set_tracing(true);
    rt.inject_fault(1, Fault::ErrorAtInstr(recv_idx)).unwrap();
    rt.step(&data).unwrap_err();

    let trace = rt.take_step_trace().expect("failed step keeps its trace");
    assert!(trace.has_event("abort"), "events: {:?}", trace.events);
    let abort = trace.events.iter().find(|e| e.kind == "abort").unwrap();
    assert_eq!(abort.actor, Some(1));
    assert!(
        abort.detail.contains("injected"),
        "detail: {}",
        abort.detail
    );
    // The surviving stage aborted in cascade, and both stages still
    // report the spans they executed before the failure.
    assert!(trace.has_event("cascade"), "events: {:?}", trace.events);
    assert!(trace
        .actors
        .iter()
        .any(|a| a.actor == 0 && a.spans.iter().any(|s| s.kind == "fwd")));
}

/// Regression: ghost parked deletions from aborted epochs must not
/// stay resident in the store accounting forever.
///
/// Under GPipe, stage 1's stream tail (backwards + cotangent sends +
/// update) contains no Recv, so when stage 0 fails *after* forwarding
/// all its microbatches, stage 1 finishes its whole stream successfully
/// — with every cotangent send unconsumed. The deferred deletions of
/// those send buffers park with tokens nobody will ever complete. Each
/// such failed epoch used to stack another copy of those bytes onto
/// `live_bytes` (the next epoch re-inserts the same buffer ids while
/// the ghosts stay parked), ratcheting live/peak accounting up on every
/// fail/recover cycle. The fix reclaims abandoned sends at each command
/// boundary, so residency after a fail/recover cycle is identical to
/// residency after a clean step.
#[test]
fn store_live_bytes_stable_across_aborted_epochs() {
    let (jaxpr, n_params) = chain(4, 2);
    let program = compile(&jaxpr, n_params, &gpipe(2, 4).unwrap());
    // Stage 0's first Recv is the first cotangent receive — past every
    // forward send, so stage 1 runs to completion.
    let recv_idx = program.actors[0]
        .iter()
        .position(|i| matches!(i, Instr::Recv { .. }))
        .unwrap();
    let (params, data) = rand_inputs(&jaxpr, n_params, 4, 43);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    rt.step(&data).unwrap();
    // The deterministic quiescent resident set: params plus the step's
    // surviving output buffers (every later step overwrites the same
    // ids).
    let base = rt.live_store_bytes().unwrap();

    for round in 0..4 {
        rt.inject_fault(0, Fault::ErrorAtInstr(recv_idx)).unwrap();
        rt.step(&data).unwrap_err();
        rt.step(&data).unwrap();
        assert_eq!(
            rt.live_store_bytes().unwrap(),
            base,
            "round {round}: aborted epochs must not leave ghost bytes resident"
        );
    }
}
