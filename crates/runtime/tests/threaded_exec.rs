//! Threaded end-to-end tests: compile pipelines, execute them on the
//! multi-threaded MPMD runtime, and validate gradients/losses against
//! single-device autodiff — plus failure injection.

use raxpp_ir::{eval, value_and_grad, Jaxpr, Tensor, TraceCtx};
use raxpp_runtime::{Runtime, RuntimeError};
use raxpp_sched::{gpipe, interleaved_1f1b, one_f1b, Schedule};
use raxpp_taskgraph::{
    check_send_recv_order, insert_frees, pipeline_model, unroll_loop, FetchRole, MpmdProgram,
    UnrollOptions,
};

fn chain(emb: usize, n_stages: usize) -> (Jaxpr, usize) {
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..n_stages).map(|_| ctx.input([emb, emb])).collect();
    let x = ctx.input([2, emb]);
    let mut h = x;
    for (i, w) in ws.iter().enumerate() {
        h = h.matmul(w).unwrap().tanh();
        if i + 1 < n_stages {
            h = ctx.pipeline_yield(&h);
        }
    }
    let loss = h.mul(&h).unwrap().sum().scale(0.5);
    (ctx.finish(&[loss]).unwrap(), n_stages)
}

fn compile(jaxpr: &Jaxpr, n_params: usize, schedule: &Schedule) -> MpmdProgram {
    let model = pipeline_model(jaxpr, n_params).unwrap();
    let mut compiled = unroll_loop(&model, schedule, UnrollOptions::default()).unwrap();
    check_send_recv_order(&compiled.program).unwrap();
    insert_frees(&mut compiled.program);
    compiled.program
}

fn rand_inputs(
    jaxpr: &Jaxpr,
    n_params: usize,
    n_mb: usize,
    seed: u64,
) -> (Vec<Tensor>, Vec<Vec<Tensor>>) {
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    let shapes = jaxpr.in_shapes();
    let params = shapes[..n_params]
        .iter()
        .map(|s| Tensor::randn(s.clone(), 0.4, &mut rng))
        .collect();
    let data = shapes[n_params..]
        .iter()
        .map(|s| {
            (0..n_mb)
                .map(|_| Tensor::randn(s.clone(), 1.0, &mut rng))
                .collect()
        })
        .collect();
    (params, data)
}

fn reference_grads(
    jaxpr: &Jaxpr,
    n_params: usize,
    params: &[Tensor],
    data: &[Vec<Tensor>],
) -> Vec<Tensor> {
    let wrt: Vec<usize> = (0..n_params).collect();
    let g = value_and_grad(jaxpr, &wrt).unwrap();
    let mut grads: Vec<Option<Tensor>> = vec![None; n_params];
    for mb in 0..data[0].len() {
        let mut args = params.to_vec();
        for d in data {
            args.push(d[mb].clone());
        }
        let outs = eval(&g, &args).unwrap();
        for p in 0..n_params {
            let gp = outs[1 + p].clone();
            grads[p] = Some(match grads[p].take() {
                None => gp,
                Some(acc) => acc.zip(&gp, |a, b| a + b).unwrap(),
            });
        }
    }
    grads.into_iter().map(Option::unwrap).collect()
}

fn run_and_check(schedule: &Schedule, n_stages: usize, seed: u64) {
    let (jaxpr, n_params) = chain(4, n_stages);
    let program = compile(&jaxpr, n_params, schedule);
    let (params, data) = rand_inputs(&jaxpr, n_params, schedule.n_mubatches(), seed);

    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    let out = rt.step(&data).unwrap();

    let reference = reference_grads(&jaxpr, n_params, &params, &data);
    for (f, t) in &out.fetched {
        if let FetchRole::Grad(p) = f.role {
            assert!(
                t.allclose(&reference[p], 1e-4),
                "grad {p} mismatch under {}",
                schedule.name()
            );
        }
    }
    assert_eq!(out.stats.rpcs, schedule.n_actors());
}

#[test]
fn threaded_gpipe_two_actors() {
    run_and_check(&gpipe(2, 4).unwrap(), 2, 21);
}

#[test]
fn threaded_1f1b_four_actors() {
    run_and_check(&one_f1b(4, 8).unwrap(), 4, 22);
}

#[test]
fn threaded_interleaved_two_actors_repeat_three() {
    run_and_check(&interleaved_1f1b(2, 4, 3).unwrap(), 6, 23);
}

#[test]
fn threaded_interleaved_four_actors_repeat_two() {
    run_and_check(&interleaved_1f1b(4, 8, 2).unwrap(), 8, 24);
}

#[test]
fn repeated_steps_are_deterministic() {
    let (jaxpr, n_params) = chain(4, 2);
    let schedule = one_f1b(2, 4).unwrap();
    let program = compile(&jaxpr, n_params, &schedule);
    let (params, data) = rand_inputs(&jaxpr, n_params, 4, 25);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    let a = rt.step(&data).unwrap();
    let b = rt.step(&data).unwrap();
    for ((_, ta), (_, tb)) in a.fetched.iter().zip(&b.fetched) {
        assert_eq!(ta.data(), tb.data(), "steps are not deterministic");
    }
}

#[test]
fn losses_match_per_microbatch() {
    let (jaxpr, n_params) = chain(4, 2);
    let schedule = gpipe(2, 3).unwrap();
    let program = compile(&jaxpr, n_params, &schedule);
    let (params, data) = rand_inputs(&jaxpr, n_params, 3, 26);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    let out = rt.step(&data).unwrap();
    for (f, t) in &out.fetched {
        if let FetchRole::Output { output: 0, mubatch } = f.role {
            let mut args = params.clone();
            for d in &data {
                args.push(d[mubatch].clone());
            }
            let expect = eval(&jaxpr, &args).unwrap()[0].item().unwrap();
            let got = t.item().unwrap();
            assert!(
                (got - expect).abs() <= 1e-5 * expect.abs().max(1.0),
                "mb {mubatch}: {got} vs {expect}"
            );
        }
    }
}

#[test]
fn bad_param_shape_is_rejected() {
    let (jaxpr, n_params) = chain(4, 2);
    let program = compile(&jaxpr, n_params, &gpipe(2, 2).unwrap());
    let rt = Runtime::new(program);
    let bad = vec![Tensor::zeros([1, 1]), Tensor::zeros([4, 4])];
    assert!(matches!(
        rt.place_params(&bad),
        Err(RuntimeError::BadInput(_))
    ));
}

#[test]
fn missing_data_is_rejected() {
    let (jaxpr, n_params) = chain(4, 2);
    let program = compile(&jaxpr, n_params, &gpipe(2, 4).unwrap());
    let (params, _) = rand_inputs(&jaxpr, n_params, 4, 27);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    // Only 2 microbatches provided; program wants 4.
    let short: Vec<Vec<Tensor>> = vec![vec![Tensor::zeros([2, 4]); 2]];
    assert!(matches!(rt.step(&short), Err(RuntimeError::BadInput(_))));
}

#[test]
fn actor_failure_surfaces_as_error_not_hang() {
    let (jaxpr, n_params) = chain(4, 2);
    let program = compile(&jaxpr, n_params, &gpipe(2, 2).unwrap());
    let (params, data) = rand_inputs(&jaxpr, n_params, 2, 28);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    rt.inject_failure(1);
    // Either the dispatch send or the reply fails, never a hang.
    match rt.step(&data) {
        Err(RuntimeError::ActorDied { .. }) | Err(RuntimeError::Exec { .. }) => {}
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn step_stats_profile_accounts_for_work() {
    let (jaxpr, n_params) = chain(4, 2);
    let program = compile(&jaxpr, n_params, &one_f1b(2, 4).unwrap());
    let (params, data) = rand_inputs(&jaxpr, n_params, 4, 30);
    let rt = Runtime::new(program);
    rt.place_params(&params).unwrap();
    let out = rt.step(&data).unwrap();
    assert_eq!(out.stats.profiles.len(), 2);
    for (a, p) in out.stats.profiles.iter().enumerate() {
        let (_, fwd_count) = p
            .get("fwd")
            .unwrap_or_else(|| panic!("actor {a} ran no fwd"));
        assert_eq!(fwd_count, 4, "actor {a} forward count");
        let (_, bwd_count) = p.get("bwd").unwrap();
        assert_eq!(bwd_count, 4);
        assert!(p.get("free").is_some(), "liveness pass emitted frees");
    }
    // Actor 1 receives activations; actor 0 receives cotangents.
    assert!(out.stats.profiles[1].get("recv").is_some());
    assert!(out.stats.profiles[0].get("recv").is_some());
}

#[test]
fn read_buffer_returns_resident_params() {
    let (jaxpr, n_params) = chain(4, 2);
    let model = pipeline_model(&jaxpr, n_params).unwrap();
    let schedule = gpipe(2, 2).unwrap();
    let mut compiled = unroll_loop(&model, &schedule, UnrollOptions::default()).unwrap();
    insert_frees(&mut compiled.program);
    let (params, data) = rand_inputs(&jaxpr, n_params, 2, 29);
    let rt = Runtime::new(compiled.program.clone());
    rt.place_params(&params).unwrap();
    rt.step(&data).unwrap();
    // Parameters stay resident after the step.
    for ((p, actor), buf) in &compiled.param_buffers {
        let t = rt.read_buffer(*actor, *buf).unwrap();
        assert_eq!(t.data(), params[*p].data());
    }
}
