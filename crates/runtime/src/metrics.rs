//! A small, dependency-free metrics registry: named counters, gauges,
//! and histogram summaries behind an `Arc<Mutex<..>>` so the registry
//! can be cloned into trainers, benches, and tests.
//!
//! Keys are plain strings sorted lexicographically on
//! [`Metrics::snapshot`], so renders are deterministic and easy to diff
//! in tests. The catalog of metrics RaxPP records is documented in
//! `docs/observability.md`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Summary statistics of an observed distribution (histogram values are
/// summarized, not bucketed, to stay allocation-light).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Most recent observation.
    pub last: f64,
}

impl HistogramSummary {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One metric value: a monotonic counter, a last-write gauge, or a
/// histogram summary.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last written value.
    Gauge(f64),
    /// Distribution summary of observed values.
    Histogram(HistogramSummary),
}

/// A cloneable, thread-safe registry of named metrics.
///
/// # Examples
///
/// ```
/// use raxpp_runtime::{Metrics, MetricValue};
///
/// let m = Metrics::new();
/// m.inc("steps_total", 1);
/// m.set_gauge("alloc_reuse_rate", 0.85);
/// m.observe("step_time_s", 0.012);
/// assert_eq!(m.counter("steps_total"), 1);
/// assert_eq!(m.gauge("alloc_reuse_rate"), Some(0.85));
/// let snap = m.snapshot();
/// assert!(matches!(snap["step_time_s"], MetricValue::Histogram(h) if h.count == 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics(Arc<Mutex<BTreeMap<String, MetricValue>>>);

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `by` to counter `name`, creating it at zero if absent.
    /// Writing a counter over an existing gauge/histogram replaces it.
    pub fn inc(&self, name: &str, by: u64) {
        let mut map = self.0.lock().unwrap();
        match map.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c += by,
            _ => {
                map.insert(name.to_string(), MetricValue::Counter(by));
            }
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.0
            .lock()
            .unwrap()
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Records `value` into histogram `name`, creating it if absent.
    pub fn observe(&self, name: &str, value: f64) {
        let mut map = self.0.lock().unwrap();
        match map.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.observe(value),
            _ => {
                map.insert(
                    name.to_string(),
                    MetricValue::Histogram(HistogramSummary {
                        count: 1,
                        sum: value,
                        min: value,
                        max: value,
                        last: value,
                    }),
                );
            }
        }
    }

    /// Current value of counter `name` (0 if absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.0.lock().unwrap().get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.0.lock().unwrap().get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Summary of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        match self.0.lock().unwrap().get(name) {
            Some(MetricValue::Histogram(h)) => Some(*h),
            _ => None,
        }
    }

    /// A sorted copy of every metric (BTreeMap iteration order is
    /// lexicographic, so renders are deterministic).
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.0.lock().unwrap().clone()
    }

    /// Renders the registry as one `name value` line per metric,
    /// sorted by name — handy for logs and tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.snapshot() {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name} {g:.6}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name} count={} mean={:.6} min={:.6} max={:.6} last={:.6}",
                        h.count,
                        h.mean(),
                        h.min,
                        h.max,
                        h.last
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc("a", 2);
        m.inc("a", 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histograms_summarize() {
        let m = Metrics::new();
        m.observe("h", 2.0);
        m.observe("h", 4.0);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 4.0);
        assert_eq!(h.last, 4.0);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn render_is_sorted() {
        let m = Metrics::new();
        m.set_gauge("zeta", 1.0);
        m.inc("alpha", 1);
        let r = m.render();
        let alpha = r.find("alpha").unwrap();
        let zeta = r.find("zeta").unwrap();
        assert!(alpha < zeta);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.inc("shared", 7);
        assert_eq!(m.counter("shared"), 7);
    }
}
