//! In-actor rendezvous for collective groups (tensor-parallel shard
//! lanes and data-parallel replica groups alike).
//!
//! When a compiled program carries collectives ([`TpMeta`] from
//! `shard_program`, [`DpMeta`] from `replicate_program`, or both), the
//! participating actors already run on their own threads. In the
//! default *lane* mode those threads coordinate through the
//! shared-memory structures in this module instead of the
//! per-collective `(t-1)`-round message ring:
//!
//! * every [`crate::Instr::Collective`] resolves through a [`CollSlot`]
//!   of its *membership group* — each member publishes its contribution
//!   (possibly panel-by-panel, streamed out of the producing matmul
//!   while it is still multiplying), the first member to see all
//!   contributions assembles the combined tensor once, and all members
//!   share the result — versus `t` serialized ring walks each
//!   re-deriving the same combine;
//! * replicated jaxprs ([`TpMeta::replicated`]) execute once per TP
//!   lane group through a [`RunSlot`] and the other lanes adopt the
//!   outputs (O(1) `Arc` handle clones) instead of recomputing them
//!   `t` times.
//!
//! Groups are keyed by their exact membership (the rank-ascending actor
//! list of the collective instruction) and created on first touch, so
//! one [`LaneHub`] serves TP lane groups (`{h·t .. h·t+t-1}`), DP
//! replica groups (the same stream position in every replica), and the
//! folded groups a rebalance produces, with no axis-specific paths.
//!
//! All transformations preserve the bitwise contract: the assembly is
//! either the exact legacy rank-ascending fold/concat, or (for TP's
//! disjoint `-0.0`-padded all-reduces) a block copy that equals that
//! fold bit for bit — DP gradient sums always take the pinned
//! ascending-replica fold, since their contributions genuinely differ;
//! replicated runs are bit-identical on every rank by the
//! replicated-buffer invariant, so executing one of them is
//! indistinguishable from executing all.
//!
//! Failure discipline: any actor that fails (task error, cascade abort,
//! injected death) *poisons every group it belongs to* for the epoch,
//! waking every parked peer; waits also poll the actor mailbox so
//! aborts arriving from outside the group (driver timeout, non-member
//! peers, a member that died before its group was ever created) bound
//! the wait too. See `driver.rs` for the wait loop itself.
//!
//! Slot retirement: completed slots retire when every member has taken
//! the result; slots of aborted epochs retire at the next
//! `begin_epoch`, and [`LaneHub::gc`] — called from `Runtime::recover`
//! and `Runtime::rebalance` — retires stale slots and poison
//! immediately after a failure, and drops whole groups whose membership
//! includes a permanently retired actor (otherwise a rebalance would
//! strand their staged tensors forever — the same live-bytes ratchet
//! class as the aborted-epoch `ObjectStore` ghost-deletion bug).

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex};

use raxpp_ir::{Shape, Tensor};
use raxpp_taskgraph::{CollectiveKind, TpMeta};

/// A step sequence number (the driver's `Execute` seq).
type Epoch = u64;

/// Default lane mode from `RAXPP_TP_LANES`: `"0"` or `"1"` selects the
/// serial fallback (one lane's worth of concurrency, i.e. the legacy
/// ring path); anything else — including unset — enables lanes.
pub(crate) fn lanes_default_from_env() -> bool {
    !matches!(
        std::env::var("RAXPP_TP_LANES").as_deref(),
        Ok("0") | Ok("1")
    )
}

/// Runtime-wide collective coordination: one [`LaneGroup`] per distinct
/// collective membership, created on first touch and shared by the
/// member actors. Built once per program with collectives; immutable
/// except for the `serial` switch and the group map.
pub(crate) struct LaneHub {
    /// When set, actors run collectives over the legacy message ring
    /// (the serial fallback). Latched into each `Execute` dispatch so a
    /// step never mixes modes across lanes.
    pub(crate) serial: AtomicBool,
    /// Tensor-parallel degree (1 when the program has no TP axis; TP
    /// lane groups and run dedup then do not exist).
    degree: usize,
    replicated: Arc<Vec<bool>>,
    disjoint_reduce: bool,
    /// Membership-keyed rendezvous groups (rank-ascending actor lists).
    groups: Mutex<HashMap<Vec<usize>, Arc<LaneGroup>>>,
}

impl LaneHub {
    pub(crate) fn new(tp: Option<&TpMeta>) -> LaneHub {
        LaneHub {
            serial: AtomicBool::new(!lanes_default_from_env()),
            degree: tp.map_or(1, |m| m.degree),
            replicated: Arc::new(tp.map(|m| m.replicated.clone()).unwrap_or_default()),
            disjoint_reduce: tp.is_none_or(|m| m.disjoint_reduce),
            groups: Mutex::new(HashMap::new()),
        }
    }

    /// The rendezvous group with exactly `members` (rank-ascending),
    /// created on first touch.
    pub(crate) fn group(&self, members: &[usize]) -> Arc<LaneGroup> {
        let mut groups = self.groups.lock().unwrap();
        if let Some(g) = groups.get(members) {
            return Arc::clone(g);
        }
        let g = Arc::new(LaneGroup::new(members.len()));
        groups.insert(members.to_vec(), Arc::clone(&g));
        g
    }

    /// The lane context actor `a` executes under: a hub handle for
    /// membership lookups, plus the actor's TP lane group and rank when
    /// the program is tensor-parallel.
    pub(crate) fn ctx_for(self: &Arc<Self>, a: usize) -> LaneCtx {
        let lane = (self.degree > 1).then(|| {
            let host = a / self.degree;
            let members: Vec<usize> = (host * self.degree..(host + 1) * self.degree).collect();
            (self.group(&members), a % self.degree)
        });
        LaneCtx {
            hub: Arc::clone(self),
            lane,
            replicated: Arc::clone(&self.replicated),
            disjoint_reduce: self.disjoint_reduce,
        }
    }

    /// Retires slots and poison from epochs before `epoch` in every
    /// group containing actor `a` — called by the actor itself on
    /// `Execute` receipt, before it can touch this epoch's slots.
    pub(crate) fn begin_epoch_actor(&self, a: usize, epoch: Epoch) {
        let groups: Vec<Arc<LaneGroup>> = {
            let g = self.groups.lock().unwrap();
            g.iter()
                .filter(|(k, _)| k.contains(&a))
                .map(|(_, v)| Arc::clone(v))
                .collect()
        };
        for g in groups {
            g.begin_epoch(epoch);
        }
    }

    /// Poisons `epoch` in every group containing actor `a` on behalf of
    /// actor `by` — the death/error path. Groups the failed actor never
    /// touched may not exist yet; their future waiters are bounded by
    /// the mailbox abort polling instead.
    pub(crate) fn poison_actor(&self, a: usize, epoch: Epoch, by: usize, reason: &str) {
        let groups: Vec<Arc<LaneGroup>> = {
            let g = self.groups.lock().unwrap();
            g.iter()
                .filter(|(k, _)| k.contains(&a))
                .map(|(_, v)| Arc::clone(v))
                .collect()
        };
        for g in groups {
            g.poison(epoch, by, reason);
        }
    }

    /// Recovery-time garbage collection: drops every group whose
    /// membership includes a retired actor (their slots would otherwise
    /// hold staged tensors forever — no survivor ever begins a new
    /// epoch on a stale membership), then retires slots and poison from
    /// epochs before `epoch` in the groups that remain.
    pub(crate) fn gc(&self, retired: &[bool], epoch: Epoch) {
        let survivors: Vec<Arc<LaneGroup>> = {
            let mut groups = self.groups.lock().unwrap();
            groups.retain(|k, _| !k.iter().any(|&m| retired.get(m).copied().unwrap_or(false)));
            groups.values().map(Arc::clone).collect()
        };
        for g in survivors {
            g.begin_epoch(epoch);
        }
    }

    /// Total in-flight rendezvous slots across all groups (collective
    /// and run-dedup) — the leak detector the chaos soak asserts on.
    pub(crate) fn live_slots(&self) -> usize {
        let groups = self.groups.lock().unwrap();
        groups
            .values()
            .map(|g| {
                let s = g.state.lock().unwrap();
                s.colls.len() + s.runs.len()
            })
            .sum()
    }
}

/// One actor's handle into the collective hub (cheap to clone: Arcs).
#[derive(Clone)]
pub(crate) struct LaneCtx {
    /// The runtime-wide hub, for membership-keyed group lookups.
    pub(crate) hub: Arc<LaneHub>,
    /// This actor's TP lane group and rank within it, when the program
    /// is tensor-parallel (`None` under pure DP) — drives replicated-run
    /// dedup and fast poison/epoch paths.
    pub(crate) lane: Option<(Arc<LaneGroup>, usize)>,
    /// Per-jaxpr replication flags ([`TpMeta::replicated`]).
    pub(crate) replicated: Arc<Vec<bool>>,
    /// Whether TP all-reduces may use block assembly
    /// ([`TpMeta::disjoint_reduce`]). DP all-reduces never do: they are
    /// true sums of differing per-replica gradients, folded elementwise
    /// in pinned ascending-replica order.
    pub(crate) disjoint_reduce: bool,
}

/// The rendezvous shared by the member actors of one collective group.
pub(crate) struct LaneGroup {
    pub(crate) state: Mutex<GroupState>,
    pub(crate) cv: Condvar,
    pub(crate) degree: usize,
}

/// Mutable rendezvous state, keyed by `(epoch, instruction index)` —
/// member streams are index-aligned by construction (`shard_program`
/// and `replicate_program` emit identical instruction kinds at
/// identical positions, and `replace_program` folds hosts uniformly
/// across ranks and replicas), so the instruction index identifies one
/// collective or run across all members.
#[derive(Default)]
pub(crate) struct GroupState {
    /// A failed member's epoch poison: wakes and aborts every group
    /// wait for that epoch (or earlier).
    pub(crate) poison: Option<(Epoch, usize, String)>,
    /// In-flight collective rendezvous slots.
    pub(crate) colls: HashMap<(Epoch, u32), CollSlot>,
    /// In-flight replicated-run dedup slots.
    pub(crate) runs: HashMap<(Epoch, u32), RunSlot>,
}

/// One collective's rendezvous: per-rank contributions, the combined
/// result, and bookkeeping for single-assembly and slot retirement.
pub(crate) struct CollSlot {
    /// `(kind, dim)`, recorded by the first member to *process* the
    /// collective instruction. Panel stagers may create the slot
    /// earlier without it; assembly only happens from a processing
    /// member, so the metadata is always present by then.
    pub(crate) meta: Option<(CollectiveKind, usize)>,
    pub(crate) parts: Vec<Option<Contribution>>,
    /// The combined tensor (pre-scatter for reduce-scatter), or the
    /// combine error every member must surface.
    pub(crate) assembled: Option<Result<Tensor, String>>,
    /// A member is combining outside the lock; peers keep waiting.
    pub(crate) assembling: bool,
    /// Members that have taken `assembled`; at `degree` the slot
    /// retires.
    pub(crate) takers: usize,
}

/// One rank's contribution to a [`CollSlot`].
pub(crate) enum Contribution {
    /// Row panels streamed out of the producing matmul land here as
    /// they complete; converts to `Ready` at the last panel.
    Staging {
        shape: Shape,
        buf: Vec<f32>,
        filled: usize,
    },
    /// The full contribution tensor.
    Ready(Tensor),
}

/// One replicated jaxpr execution shared across a lane group's members.
pub(crate) enum RunSlot {
    /// A lane claimed execution; peers wait.
    Claimed,
    /// Outputs ready for adoption. Peers clone the handles (the store
    /// keeps its own references on every lane, so in-place stealing
    /// inside a later interpreter run can never touch a shared buffer).
    Done { outs: Vec<Tensor>, takers: usize },
}

impl LaneGroup {
    fn new(degree: usize) -> LaneGroup {
        LaneGroup {
            state: Mutex::new(GroupState::default()),
            cv: Condvar::new(),
            degree,
        }
    }

    /// Starts a new epoch on this group: retires slots and poison from
    /// earlier epochs. Epochs are never reused (the driver's seq is
    /// monotone), so entries at `epoch` or later are left untouched.
    pub(crate) fn begin_epoch(&self, epoch: Epoch) {
        let mut s = self.state.lock().unwrap();
        s.colls.retain(|k, _| k.0 >= epoch);
        s.runs.retain(|k, _| k.0 >= epoch);
        if matches!(s.poison, Some((e, _, _)) if e < epoch) {
            s.poison = None;
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Marks `epoch` failed on behalf of actor `by`, waking every
    /// parked member. First poison wins (mirrors the mailbox's
    /// first-abort-wins rule); later epochs' poisons overwrite earlier
    /// ones so a stale poison can never mask a live failure.
    pub(crate) fn poison(&self, epoch: Epoch, by: usize, reason: &str) {
        let mut s = self.state.lock().unwrap();
        if !matches!(s.poison, Some((e, _, _)) if e >= epoch) {
            s.poison = Some((epoch, by, reason.to_string()));
        }
        drop(s);
        self.cv.notify_all();
    }
}

impl GroupState {
    /// The slot for collective `key`, created empty on first touch.
    pub(crate) fn coll_slot(&mut self, key: (Epoch, u32), degree: usize) -> &mut CollSlot {
        self.colls.entry(key).or_insert_with(|| CollSlot {
            meta: None,
            parts: (0..degree).map(|_| None).collect(),
            assembled: None,
            assembling: false,
            takers: 0,
        })
    }
}
