//! In-actor rendezvous for tensor-parallel shard lanes.
//!
//! When a compiled program carries [`TpMeta`] (it was expanded by
//! `shard_program`), the `t` rank streams of each pipeline host already
//! run on their own actor threads. In the default *lane* mode those
//! threads coordinate through the shared-memory structures in this
//! module instead of the per-collective `(t-1)`-round message ring:
//!
//! * every [`crate::Instr::Collective`] resolves through a [`CollSlot`]
//!   — each lane publishes its contribution (possibly panel-by-panel,
//!   streamed out of the producing matmul while it is still
//!   multiplying), the first lane to see all contributions assembles
//!   the combined tensor once, and all lanes share the result — versus
//!   `t` serialized ring walks each re-deriving the same combine;
//! * replicated jaxprs ([`TpMeta::replicated`]) execute once per group
//!   through a [`RunSlot`] and the other lanes adopt the outputs (O(1)
//!   `Arc` handle clones) instead of recomputing them `t` times.
//!
//! Both transformations preserve the bitwise contract: the assembly is
//! either the exact legacy rank-ascending fold/concat, or (for
//! disjoint `-0.0`-padded all-reduces, [`TpMeta::disjoint_reduce`]) a
//! block copy that equals that fold bit for bit; replicated runs are
//! bit-identical on every rank by the replicated-buffer invariant, so
//! executing one of them is indistinguishable from executing all.
//!
//! Failure discipline: any lane that fails (task error, cascade abort,
//! injected death) *poisons* its group for the epoch, waking every
//! parked peer; waits also poll the actor mailbox so aborts arriving
//! from outside the group (driver timeout, non-lane peers) bound the
//! wait too. See `driver.rs` for the wait loop itself.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex};

use raxpp_ir::{Shape, Tensor};
use raxpp_taskgraph::{CollectiveKind, TpMeta};

/// A step sequence number (the driver's `Execute` seq).
type Epoch = u64;

/// Default lane mode from `RAXPP_TP_LANES`: `"0"` or `"1"` selects the
/// serial fallback (one lane's worth of concurrency, i.e. the legacy
/// ring path); anything else — including unset — enables lanes.
pub(crate) fn lanes_default_from_env() -> bool {
    !matches!(
        std::env::var("RAXPP_TP_LANES").as_deref(),
        Ok("0") | Ok("1")
    )
}

/// Runtime-wide lane coordination: one [`LaneGroup`] per pipeline host,
/// shared by that host's `t` rank actors. Built once from the
/// program's [`TpMeta`]; immutable except for the `serial` switch.
pub(crate) struct LaneHub {
    /// When set, actors run collectives over the legacy message ring
    /// (the serial fallback). Latched into each `Execute` dispatch so a
    /// step never mixes modes across lanes.
    pub(crate) serial: AtomicBool,
    degree: usize,
    groups: Vec<Arc<LaneGroup>>,
    replicated: Arc<Vec<bool>>,
    disjoint_reduce: bool,
}

impl LaneHub {
    pub(crate) fn new(n_actors: usize, meta: &TpMeta) -> LaneHub {
        let degree = meta.degree;
        LaneHub {
            serial: AtomicBool::new(!lanes_default_from_env()),
            degree,
            groups: (0..n_actors.div_ceil(degree))
                .map(|_| Arc::new(LaneGroup::new(degree)))
                .collect(),
            replicated: Arc::new(meta.replicated.clone()),
            disjoint_reduce: meta.disjoint_reduce,
        }
    }

    /// The lane context actor `a` executes under: its host's group and
    /// its rank within it.
    pub(crate) fn ctx_for(&self, a: usize) -> LaneCtx {
        LaneCtx {
            group: Arc::clone(&self.groups[a / self.degree]),
            rank: a % self.degree,
            replicated: Arc::clone(&self.replicated),
            disjoint_reduce: self.disjoint_reduce,
        }
    }
}

/// One actor's handle into its lane group (cheap to clone: two `Arc`s).
#[derive(Clone)]
pub(crate) struct LaneCtx {
    pub(crate) group: Arc<LaneGroup>,
    /// This actor's rank within the group (`me % degree`).
    pub(crate) rank: usize,
    /// Per-jaxpr replication flags ([`TpMeta::replicated`]).
    pub(crate) replicated: Arc<Vec<bool>>,
    /// Whether all-reduces may use block assembly
    /// ([`TpMeta::disjoint_reduce`]).
    pub(crate) disjoint_reduce: bool,
}

/// The rendezvous shared by the `t` rank actors of one pipeline host.
pub(crate) struct LaneGroup {
    pub(crate) state: Mutex<GroupState>,
    pub(crate) cv: Condvar,
    pub(crate) degree: usize,
}

/// Mutable rendezvous state, keyed by `(epoch, instruction index)` —
/// lane streams are index-aligned by construction (`shard_program`
/// emits identical instruction kinds at identical positions), so the
/// instruction index identifies one collective or run across all lanes.
#[derive(Default)]
pub(crate) struct GroupState {
    /// A failed lane's epoch poison: wakes and aborts every group wait
    /// for that epoch (or earlier).
    pub(crate) poison: Option<(Epoch, usize, String)>,
    /// In-flight collective rendezvous slots.
    pub(crate) colls: HashMap<(Epoch, u32), CollSlot>,
    /// In-flight replicated-run dedup slots.
    pub(crate) runs: HashMap<(Epoch, u32), RunSlot>,
}

/// One collective's rendezvous: per-rank contributions, the combined
/// result, and bookkeeping for single-assembly and slot retirement.
pub(crate) struct CollSlot {
    /// `(kind, dim)`, recorded by the first lane to *process* the
    /// collective instruction. Panel stagers may create the slot
    /// earlier without it; assembly only happens from a processing
    /// lane, so the metadata is always present by then.
    pub(crate) meta: Option<(CollectiveKind, usize)>,
    pub(crate) parts: Vec<Option<Contribution>>,
    /// The combined tensor (pre-scatter for reduce-scatter), or the
    /// combine error every lane must surface.
    pub(crate) assembled: Option<Result<Tensor, String>>,
    /// A lane is combining outside the lock; peers keep waiting.
    pub(crate) assembling: bool,
    /// Lanes that have taken `assembled`; at `degree` the slot retires.
    pub(crate) takers: usize,
}

/// One rank's contribution to a [`CollSlot`].
pub(crate) enum Contribution {
    /// Row panels streamed out of the producing matmul land here as
    /// they complete; converts to `Ready` at the last panel.
    Staging {
        shape: Shape,
        buf: Vec<f32>,
        filled: usize,
    },
    /// The full contribution tensor.
    Ready(Tensor),
}

/// One replicated jaxpr execution shared across a group's lanes.
pub(crate) enum RunSlot {
    /// A lane claimed execution; peers wait.
    Claimed,
    /// Outputs ready for adoption. Peers clone the handles (the store
    /// keeps its own references on every lane, so in-place stealing
    /// inside a later interpreter run can never touch a shared buffer).
    Done { outs: Vec<Tensor>, takers: usize },
}

impl LaneGroup {
    fn new(degree: usize) -> LaneGroup {
        LaneGroup {
            state: Mutex::new(GroupState::default()),
            cv: Condvar::new(),
            degree,
        }
    }

    /// Starts a new epoch on this lane: retires slots and poison from
    /// earlier epochs. Epochs are never reused (the driver's seq is
    /// monotone), so entries at `epoch` or later are left untouched.
    pub(crate) fn begin_epoch(&self, epoch: Epoch) {
        let mut s = self.state.lock().unwrap();
        s.colls.retain(|k, _| k.0 >= epoch);
        s.runs.retain(|k, _| k.0 >= epoch);
        if matches!(s.poison, Some((e, _, _)) if e < epoch) {
            s.poison = None;
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Marks `epoch` failed on behalf of actor `by`, waking every
    /// parked lane. First poison wins (mirrors the mailbox's
    /// first-abort-wins rule); later epochs' poisons overwrite earlier
    /// ones so a stale poison can never mask a live failure.
    pub(crate) fn poison(&self, epoch: Epoch, by: usize, reason: &str) {
        let mut s = self.state.lock().unwrap();
        if !matches!(s.poison, Some((e, _, _)) if e >= epoch) {
            s.poison = Some((epoch, by, reason.to_string()));
        }
        drop(s);
        self.cv.notify_all();
    }
}

impl GroupState {
    /// The slot for collective `key`, created empty on first touch.
    pub(crate) fn coll_slot(&mut self, key: (Epoch, u32), degree: usize) -> &mut CollSlot {
        self.colls.entry(key).or_insert_with(|| CollSlot {
            meta: None,
            parts: (0..degree).map(|_| None).collect(),
            assembled: None,
            assembling: false,
            takers: 0,
        })
    }
}
