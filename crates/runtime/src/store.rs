//! Per-actor on-device object store with the pending-deletions queue of
//! paper §4.3.
//!
//! A buffer with an outstanding asynchronous send cannot be deleted
//! immediately: the store parks it in a pending queue and reclaims it at
//! a later deletion point once the send has completed — exactly the
//! behaviour the paper describes for its NCCL-backed stores.
//!
//! Since [`Tensor`] is itself an `Arc`-backed handle, the store holds
//! tensors directly: inserting, reading, and sending a buffer are O(1)
//! handle copies with no extra indirection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use raxpp_ir::Tensor;
use raxpp_taskgraph::BufferId;

/// Completion token of one asynchronous send: set once the receiver has
/// taken the payload.
#[derive(Debug, Clone, Default)]
pub struct SendToken(Arc<AtomicBool>);

impl SendToken {
    /// Creates an incomplete token.
    pub fn new() -> SendToken {
        SendToken::default()
    }

    /// Marks the send complete (called by the receiving side).
    pub fn complete(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the send has completed.
    pub fn is_complete(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// An actor's buffer store.
#[derive(Debug, Default)]
pub struct ObjectStore {
    bufs: HashMap<BufferId, Tensor>,
    outstanding: HashMap<BufferId, Vec<SendToken>>,
    pending: Vec<(BufferId, Tensor, Vec<SendToken>)>,
    peak_bytes: usize,
    live_bytes: usize,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Inserts or overwrites a buffer, updating the memory high-water
    /// mark (4 bytes per element, the interpreter's f32).
    ///
    /// Overwriting a buffer that still has outstanding sends parks the
    /// *old* tensor (with its tokens) in the pending queue, exactly as
    /// [`ObjectStore::free`] would: the tokens belong to the old
    /// allocation, and must never pin the new one.
    pub fn insert(&mut self, buf: BufferId, t: Tensor) {
        self.live_bytes += 4 * t.numel();
        if let Some(old) = self.bufs.insert(buf, t) {
            let tokens = self.outstanding.remove(&buf).unwrap_or_default();
            if tokens.iter().all(SendToken::is_complete) {
                self.live_bytes -= 4 * old.numel();
            } else {
                self.pending.push((buf, old, tokens));
            }
        }
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    /// Reads a buffer.
    pub fn get(&self, buf: BufferId) -> Option<&Tensor> {
        self.bufs.get(&buf)
    }

    /// Records an in-flight send of `buf` tracked by `token`.
    pub fn record_send(&mut self, buf: BufferId, token: SendToken) {
        self.outstanding.entry(buf).or_default().push(token);
    }

    /// Deletes `buf`, deferring to the pending queue if it still has
    /// incomplete sends (§4.3). Every call first drains previously
    /// pending deletions whose sends have since completed.
    ///
    /// A deferred deletion stays resident: its bytes keep counting
    /// toward [`ObjectStore::live_bytes`] (and hence the high-water
    /// mark) until [`ObjectStore::drain_pending`] reclaims it.
    ///
    /// Returns `false` if the buffer was unknown.
    pub fn free(&mut self, buf: BufferId) -> bool {
        self.drain_pending();
        let Some(t) = self.bufs.remove(&buf) else {
            return false;
        };
        let tokens = self.outstanding.remove(&buf).unwrap_or_default();
        if tokens.iter().all(SendToken::is_complete) {
            self.live_bytes -= 4 * t.numel();
            drop(t); // reclaimed immediately
        } else {
            self.pending.push((buf, t, tokens));
        }
        true
    }

    /// Reclaims pending deletions whose sends have completed. Returns how
    /// many buffers were reclaimed.
    pub fn drain_pending(&mut self) -> usize {
        let before = self.pending.len();
        let mut reclaimed_bytes = 0;
        self.pending.retain(|(_, t, tokens)| {
            if tokens.iter().all(SendToken::is_complete) {
                reclaimed_bytes += 4 * t.numel();
                false
            } else {
                true
            }
        });
        self.live_bytes -= reclaimed_bytes;
        before - self.pending.len()
    }

    /// Abandons every outstanding send and force-reclaims the pending
    /// queue. Called when a step is aborted: the receivers that would
    /// have completed the tokens may never run, and the aborted epoch's
    /// sends are semantically void, so nothing may stay pinned.
    ///
    /// Returns how many parked buffers were reclaimed.
    pub fn abandon_outstanding_sends(&mut self) -> usize {
        self.outstanding.clear();
        let reclaimed = self.pending.len();
        for (_, t, _) in self.pending.drain(..) {
            self.live_bytes -= 4 * t.numel();
        }
        reclaimed
    }

    /// Number of live buffers (excluding parked pending deletions).
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether the store holds no live buffers.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Number of deletions parked awaiting send completion.
    pub fn pending_deletions(&self) -> usize {
        self.pending.len()
    }

    /// Ids of all live buffers (unordered).
    pub fn buffer_ids(&self) -> Vec<BufferId> {
        self.bufs.keys().copied().collect()
    }

    /// Peak bytes ever resident in this store (the executable analogue
    /// of the paper's activation-memory discussion, §2.2.1). Deletions
    /// parked in the pending queue still count until reclaimed.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Bytes currently resident, including deletions parked in the
    /// pending queue (their memory is not reclaimed until
    /// [`ObjectStore::drain_pending`]).
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Tensor {
        Tensor::scalar(1.0)
    }

    #[test]
    fn insert_get_free() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        assert!(s.get(b).is_some());
        assert!(s.free(b));
        assert!(s.get(b).is_none());
        assert!(!s.free(b));
    }

    #[test]
    fn free_with_incomplete_send_is_deferred() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        let token = SendToken::new();
        s.record_send(b, token.clone());
        assert!(s.free(b));
        // The buffer left the visible store but is parked, not reclaimed.
        assert!(s.get(b).is_none());
        assert_eq!(s.pending_deletions(), 1);
        // Completing the send lets the next deletion point reclaim it.
        token.complete();
        assert_eq!(s.drain_pending(), 1);
        assert_eq!(s.pending_deletions(), 0);
    }

    #[test]
    fn later_free_drains_earlier_pending() {
        let mut s = ObjectStore::new();
        let b0 = BufferId(0);
        let b1 = BufferId(1);
        s.insert(b0, tensor());
        s.insert(b1, tensor());
        let token = SendToken::new();
        s.record_send(b0, token.clone());
        s.free(b0);
        assert_eq!(s.pending_deletions(), 1);
        token.complete();
        // The next deletion operation checks the queue (paper §4.3).
        s.free(b1);
        assert_eq!(s.pending_deletions(), 0);
    }

    #[test]
    fn completed_send_frees_immediately() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        let token = SendToken::new();
        token.complete();
        s.record_send(b, token);
        s.free(b);
        assert_eq!(s.pending_deletions(), 0);
    }

    #[test]
    fn overwrite_does_not_inherit_stale_send_tokens() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        // An incomplete send of the *old* tensor...
        let token = SendToken::new();
        s.record_send(b, token.clone());
        // ...must not pin the *new* tensor after an overwrite: the old
        // tensor is parked with its token, the new one has a clean slate.
        s.insert(b, tensor());
        assert_eq!(s.pending_deletions(), 1);
        assert!(s.free(b), "new tensor frees without consulting old tokens");
        assert_eq!(
            s.pending_deletions(),
            1,
            "only the old allocation stays parked"
        );
        token.complete();
        assert_eq!(s.drain_pending(), 1);
    }

    #[test]
    fn overwrite_with_completed_sends_reclaims_old() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, Tensor::ones([8]));
        let token = SendToken::new();
        token.complete();
        s.record_send(b, token);
        s.insert(b, Tensor::ones([8]));
        assert_eq!(s.pending_deletions(), 0);
        assert_eq!(s.live_bytes(), 4 * 8);
    }

    #[test]
    fn parked_deletion_bytes_stay_resident_until_drained() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, Tensor::ones([16]));
        assert_eq!(s.live_bytes(), 64);
        let token = SendToken::new();
        s.record_send(b, token.clone());
        s.free(b);
        // Deferred, not reclaimed: the bytes are still resident.
        assert_eq!(s.pending_deletions(), 1);
        assert_eq!(s.live_bytes(), 64, "parked deletion still counts");
        // A new allocation while the old one is parked raises the peak
        // above a single buffer — the §2.2.1 accounting the docstring
        // promises.
        s.insert(BufferId(1), Tensor::ones([16]));
        assert_eq!(s.peak_bytes(), 128);
        token.complete();
        assert_eq!(s.drain_pending(), 1);
        assert_eq!(s.live_bytes(), 64, "reclaim subtracts the parked bytes");
    }

    #[test]
    fn abandon_outstanding_sends_unpins_everything() {
        let mut s = ObjectStore::new();
        let b0 = BufferId(0);
        let b1 = BufferId(1);
        s.insert(b0, Tensor::ones([4]));
        s.insert(b1, Tensor::ones([4]));
        s.record_send(b0, SendToken::new());
        s.record_send(b1, SendToken::new());
        s.free(b0);
        assert_eq!(s.pending_deletions(), 1);
        assert_eq!(s.abandon_outstanding_sends(), 1);
        assert_eq!(s.pending_deletions(), 0);
        // b1's token was abandoned too: its free is immediate.
        s.free(b1);
        assert_eq!(s.pending_deletions(), 0);
        assert_eq!(s.live_bytes(), 0);
    }

    #[test]
    fn store_reads_share_storage() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        let t = Tensor::ones([16]);
        let ptr = t.data().as_ptr();
        s.insert(b, t);
        let got = s.get(b).cloned().unwrap();
        assert!(std::ptr::eq(ptr, got.data().as_ptr()));
    }
}
