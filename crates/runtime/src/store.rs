//! Per-actor on-device object store with the pending-deletions queue of
//! paper §4.3.
//!
//! A buffer with an outstanding asynchronous send cannot be deleted
//! immediately: the store parks it in a pending queue and reclaims it at
//! a later deletion point once the send has completed — exactly the
//! behaviour the paper describes for its NCCL-backed stores.
//!
//! Since [`Tensor`] is itself an `Arc`-backed handle, the store holds
//! tensors directly: inserting, reading, and sending a buffer are O(1)
//! handle copies with no extra indirection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use raxpp_ir::Tensor;
use raxpp_taskgraph::BufferId;

/// Completion token of one asynchronous send: set once the receiver has
/// taken the payload.
#[derive(Debug, Clone, Default)]
pub struct SendToken(Arc<AtomicBool>);

impl SendToken {
    /// Creates an incomplete token.
    pub fn new() -> SendToken {
        SendToken::default()
    }

    /// Marks the send complete (called by the receiving side).
    pub fn complete(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the send has completed.
    pub fn is_complete(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// An actor's buffer store.
#[derive(Debug, Default)]
pub struct ObjectStore {
    bufs: HashMap<BufferId, Tensor>,
    outstanding: HashMap<BufferId, Vec<SendToken>>,
    pending: Vec<(BufferId, Tensor, Vec<SendToken>)>,
    peak_bytes: usize,
    live_bytes: usize,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Inserts or overwrites a buffer, updating the memory high-water
    /// mark (4 bytes per element, the interpreter's f32).
    pub fn insert(&mut self, buf: BufferId, t: Tensor) {
        self.live_bytes += 4 * t.numel();
        if let Some(old) = self.bufs.insert(buf, t) {
            self.live_bytes -= 4 * old.numel();
        }
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    /// Reads a buffer.
    pub fn get(&self, buf: BufferId) -> Option<&Tensor> {
        self.bufs.get(&buf)
    }

    /// Records an in-flight send of `buf` tracked by `token`.
    pub fn record_send(&mut self, buf: BufferId, token: SendToken) {
        self.outstanding.entry(buf).or_default().push(token);
    }

    /// Deletes `buf`, deferring to the pending queue if it still has
    /// incomplete sends (§4.3). Every call first drains previously
    /// pending deletions whose sends have since completed.
    ///
    /// Returns `false` if the buffer was unknown.
    pub fn free(&mut self, buf: BufferId) -> bool {
        self.drain_pending();
        let Some(t) = self.bufs.remove(&buf) else {
            return false;
        };
        self.live_bytes -= 4 * t.numel();
        let tokens = self.outstanding.remove(&buf).unwrap_or_default();
        if tokens.iter().all(SendToken::is_complete) {
            drop(t); // reclaimed immediately
        } else {
            self.pending.push((buf, t, tokens));
        }
        true
    }

    /// Reclaims pending deletions whose sends have completed. Returns how
    /// many buffers were reclaimed.
    pub fn drain_pending(&mut self) -> usize {
        let before = self.pending.len();
        self.pending
            .retain(|(_, _, tokens)| !tokens.iter().all(SendToken::is_complete));
        before - self.pending.len()
    }

    /// Number of live buffers (excluding parked pending deletions).
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether the store holds no live buffers.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Number of deletions parked awaiting send completion.
    pub fn pending_deletions(&self) -> usize {
        self.pending.len()
    }

    /// Ids of all live buffers (unordered).
    pub fn buffer_ids(&self) -> Vec<BufferId> {
        self.bufs.keys().copied().collect()
    }

    /// Peak bytes ever resident in this store (the executable analogue
    /// of the paper's activation-memory discussion, §2.2.1). Deletions
    /// parked in the pending queue still count until reclaimed.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Bytes currently resident.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Tensor {
        Tensor::scalar(1.0)
    }

    #[test]
    fn insert_get_free() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        assert!(s.get(b).is_some());
        assert!(s.free(b));
        assert!(s.get(b).is_none());
        assert!(!s.free(b));
    }

    #[test]
    fn free_with_incomplete_send_is_deferred() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        let token = SendToken::new();
        s.record_send(b, token.clone());
        assert!(s.free(b));
        // The buffer left the visible store but is parked, not reclaimed.
        assert!(s.get(b).is_none());
        assert_eq!(s.pending_deletions(), 1);
        // Completing the send lets the next deletion point reclaim it.
        token.complete();
        assert_eq!(s.drain_pending(), 1);
        assert_eq!(s.pending_deletions(), 0);
    }

    #[test]
    fn later_free_drains_earlier_pending() {
        let mut s = ObjectStore::new();
        let b0 = BufferId(0);
        let b1 = BufferId(1);
        s.insert(b0, tensor());
        s.insert(b1, tensor());
        let token = SendToken::new();
        s.record_send(b0, token.clone());
        s.free(b0);
        assert_eq!(s.pending_deletions(), 1);
        token.complete();
        // The next deletion operation checks the queue (paper §4.3).
        s.free(b1);
        assert_eq!(s.pending_deletions(), 0);
    }

    #[test]
    fn completed_send_frees_immediately() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        s.insert(b, tensor());
        let token = SendToken::new();
        token.complete();
        s.record_send(b, token);
        s.free(b);
        assert_eq!(s.pending_deletions(), 0);
    }

    #[test]
    fn store_reads_share_storage() {
        let mut s = ObjectStore::new();
        let b = BufferId(0);
        let t = Tensor::ones([16]);
        let ptr = t.data().as_ptr();
        s.insert(b, t);
        let got = s.get(b).cloned().unwrap();
        assert!(std::ptr::eq(ptr, got.data().as_ptr()));
    }
}
