//! Structured step tracing: per-instruction span events, collected per
//! actor into a [`StepTrace`] and exportable as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` and <https://ui.perfetto.dev>).
//!
//! Tracing is the executable counterpart of `raxpp-simcluster`'s
//! predicted timelines (the paper's Figure 8-style plots): each actor
//! thread records one [`SpanEvent`] per executed instruction — task
//! label, instruction kind, monotonic start/duration, bytes moved for
//! `Send`/`Recv`, and the interpreter's buffer-reuse counters for `Run`
//! — into a [`SpanRing`] it exclusively owns (one actor = one OS
//! thread, so recording is lock-free by construction). The driver
//! collects the rings with the `Executed` replies and assembles a
//! [`StepTrace`] keyed by the step's epoch.
//!
//! Tracing is off by default and zero-cost when disabled: actors see a
//! single `traced` flag per `Execute` dispatch and skip every recording
//! branch when it is false (asserted at ≤1% overhead by the `step_time`
//! bench). Recording only *observes* execution — timestamps and byte
//! counts — so it cannot perturb the bit-compatibility contract
//! (`determinism_guard` runs with tracing enabled).

use std::collections::VecDeque;
use std::fmt::Write as _;

use raxpp_ir::EvalStats;

/// Default capacity of one actor's span ring (events per step).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// Version of the trace schema: span kinds, step-event kinds, and the
/// Chrome `trace_event` field order pinned by the golden test.
///
/// History:
/// - **1** — initial schema (PR 3): span kinds `"fwd"`, `"bwd"`,
///   `"bwdw"`, `"accum_grad"`, `"ct_sum"`, `"grad_reduce"`, `"update"`,
///   `"send"`, `"recv"`, `"free"`, `"op"`; step-event kinds `"abort"`,
///   `"cascade"`, `"actor_died"`, `"timeout"`, `"retry"`.
/// - **2** — adds the `"copy"` span kind (local move produced by
///   program re-placement when a send/recv pair collapses onto one
///   actor) and the `"rebalanced"` step-event kind (emitted by
///   `Trainer` when elastic degraded-mode rebalancing folds lost
///   actors' stages onto survivors).
/// - **3** — adds the `"collective"` span kind (one tensor-parallel
///   ring collective — all-gather, all-reduce, or reduce-scatter —
///   executed by one rank; `bytes` carries the rank's ring-received
///   wire volume).
/// - **4** — adds the `"collective_wait"` span kind (the interval a
///   shard lane spent parked at the collective rendezvous waiting for
///   its peers' contributions — the exposed, non-overlapped share of
///   communication; emitted only in lane mode, nested inside its
///   `"collective"` span). In lane mode the `"collective"` span's
///   `bytes` carries the modelled wire volume `(t-1) * 4 * numel`
///   (equal to what the serial ring physically receives).
/// - **5** — adds the `"dp_collective"` and `"dp_collective_wait"`
///   span kinds: the data-parallel gradient all-reduce between
///   pipeline replicas and the interval a replica spent parked at its
///   rendezvous. Same shape as `"collective"`/`"collective_wait"`,
///   separate kinds so TP and DP traffic stay distinguishable in a
///   3-D (dp × tp × pp) trace.
/// - **6** — adds the `"wire"` span kind (the synchronous socket write
///   of one `Send` instruction on a socket transport — transport cost
///   separated from store bookkeeping; nested inside its `"send"` span,
///   `bytes` carries the payload size). Emitted only when
///   `RAXPP_TRANSPORT` selects a socket fabric; mpsc traces are
///   unchanged.
/// - **7** — adds the `"serve"` span kind: one served request's
///   lifetime inside the continuous-batching tier, recorded by
///   `raxpp-serve` onto a pseudo-actor track appended after the real
///   actors' tracks (its index is one past the highest real actor, so
///   its Perfetto thread name is `actor <n_actors>`); spans are named
///   `request <id> (slot s)`
///   with `ts` at admission and `dur` to reply, so queue wait and the
///   enclosing forward dispatch line up against the pipeline actors'
///   `fwd` spans on the shared timeline (`docs/serving.md`). Emitted
///   only when tracing is enabled on the serving runtime; training
///   traces are unchanged.
pub const TRACE_SCHEMA_VERSION: u32 = 7;

/// One traced span: a single executed instruction, or (for `cat ==
/// "op"`) one interpreter equation inside a `Run` instruction.
///
/// Timestamps are monotonic nanoseconds relative to the runtime's
/// launch instant, shared by every actor of the runtime, so spans from
/// different actors align on one timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Index of the instruction in the actor's fused stream (op spans
    /// carry their parent `Run`'s index).
    pub instr: u32,
    /// Instruction kind: one of `"fwd"`, `"bwd"`, `"bwdw"`,
    /// `"accum_grad"`, `"ct_sum"`, `"grad_reduce"`, `"update"`,
    /// `"send"`, `"recv"`, `"copy"`, `"collective"`, `"free"`, `"op"`
    /// for interpreter sub-spans, or `"collective_wait"` for the parked
    /// interval inside a lane-mode collective.
    pub kind: &'static str,
    /// Human-readable name: the task label rendering (`fwd(mb=0, s=1)`),
    /// a transport description (`send b12 -> actor 1`), or the primitive
    /// name for op spans.
    pub name: String,
    /// Start, in nanoseconds since the runtime's launch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Payload bytes for `send`/`recv` spans and ring-received wire
    /// bytes for `collective` spans (4 bytes per f32 element); 0
    /// otherwise.
    pub bytes: u64,
    /// Buffer-allocator counters for `Run` spans; `None` otherwise.
    pub alloc: Option<EvalStats>,
}

/// A fixed-capacity ring buffer of [`SpanEvent`]s, owned exclusively by
/// one actor thread while a traced step executes.
///
/// Because every actor is a single OS thread and the ring travels back
/// to the driver inside the actor's `Executed` reply, pushes never
/// contend with anything: no locks, no atomics. When the ring is full
/// the oldest span is overwritten and counted in
/// [`SpanRing::dropped`].
///
/// # Examples
///
/// ```
/// use raxpp_runtime::{SpanEvent, SpanRing};
///
/// let mut ring = SpanRing::new(2);
/// for i in 0..3 {
///     ring.push(SpanEvent {
///         instr: i,
///         kind: "fwd",
///         name: format!("fwd(mb={i}, s=0)"),
///         start_ns: 10 * u64::from(i),
///         dur_ns: 5,
///         bytes: 0,
///         alloc: None,
///     });
/// }
/// assert_eq!(ring.len(), 2); // capacity 2: the oldest span was evicted
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SpanRing {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(1);
        SpanRing {
            buf: VecDeque::with_capacity(cap.min(DEFAULT_SPAN_CAPACITY)),
            cap,
            dropped: 0,
        }
    }

    /// Appends a span, evicting the oldest one when full.
    pub fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into an [`ActorTrace`] for actor `actor`.
    pub fn into_trace(self, actor: usize) -> ActorTrace {
        ActorTrace {
            actor,
            spans: self.buf.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

/// One actor's spans for one step, in execution order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActorTrace {
    /// The actor that recorded these spans.
    pub actor: usize,
    /// Recorded spans in execution order.
    pub spans: Vec<SpanEvent>,
    /// Spans lost to ring overflow (0 unless the stream exceeded the
    /// ring capacity).
    pub dropped: u64,
}

/// A step-level (non-span) event: aborts, deaths, timeouts observed by
/// the driver, and retries recorded by `Trainer::step_with_recovery`.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    /// Nanoseconds since the runtime's launch when the driver recorded
    /// the event.
    pub ts_ns: u64,
    /// The actor the event concerns, if any (`None` for step-global
    /// events such as retries).
    pub actor: Option<usize>,
    /// Event kind: `"abort"`, `"cascade"`, `"actor_died"`, `"timeout"`,
    /// `"retry"`, or `"rebalanced"`.
    pub kind: String,
    /// Human-readable detail (error message, retry attempt, …).
    pub detail: String,
}

/// The trace of one step: every actor's spans plus the step-level
/// events, keyed by the step's epoch (the `Execute` sequence number).
///
/// Produced by the driver when tracing is enabled (`RAXPP_TRACE=1` or
/// `Runtime::set_tracing`); export with
/// [`StepTrace::chrome_trace_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepTrace {
    /// The step epoch this trace belongs to.
    pub step: u64,
    /// Per-actor spans (one entry per actor that returned a trace).
    pub actors: Vec<ActorTrace>,
    /// Step-level abort/death/timeout/retry events.
    pub events: Vec<StepEvent>,
}

impl StepTrace {
    /// Total spans across all actors.
    pub fn span_count(&self) -> usize {
        self.actors.iter().map(|a| a.spans.len()).sum()
    }

    /// Whether any step-level event of `kind` was recorded.
    pub fn has_event(&self, kind: &str) -> bool {
        self.events.iter().any(|e| e.kind == kind)
    }

    /// Serializes the trace to Chrome `trace_event` JSON (an array of
    /// events), loadable in `chrome://tracing` and Perfetto.
    ///
    /// The schema is stable (pinned by a golden test so external tooling
    /// can rely on it): per event, the fields appear in the order
    /// `name`, `cat`, `ph`, `ts`, `dur`, `pid`, `tid`, `args`.
    /// Durations are `ph: "X"` complete events; step-level events are
    /// `ph: "i"` instants. Timestamps are microseconds with three
    /// decimals; `tid` is the actor index; `pid` is always 0. `args`
    /// carries `instr` and `step` on every span, `bytes` on
    /// `send`/`recv`, and `allocated`/`reused`/`freed` on `Run` spans.
    /// `raxpp-simcluster`'s predicted-timeline exports use the same
    /// field order, so measured and predicted traces diff cleanly.
    pub fn chrome_trace_json(&self) -> String {
        let mut rows: Vec<String> = Vec::with_capacity(self.span_count() + self.actors.len() + 1);
        for at in &self.actors {
            rows.push(format!(
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"name\": \"actor {}\"}}}}",
                at.actor, at.actor
            ));
        }
        for at in &self.actors {
            for s in &at.spans {
                let mut args = format!("{{\"instr\": {}, \"step\": {}", s.instr, self.step);
                if s.bytes > 0 {
                    let _ = write!(args, ", \"bytes\": {}", s.bytes);
                }
                if let Some(a) = &s.alloc {
                    let _ = write!(
                        args,
                        ", \"allocated\": {}, \"reused\": {}, \"freed\": {}",
                        a.allocated, a.reused, a.freed
                    );
                }
                args.push('}');
                rows.push(format!(
                    "  {{\"name\": {}, \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \
                     \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, \"args\": {}}}",
                    json_str(&s.name),
                    s.kind,
                    s.start_ns as f64 / 1e3,
                    s.dur_ns as f64 / 1e3,
                    at.actor,
                    args
                ));
            }
        }
        for e in &self.events {
            let tid = e.actor.unwrap_or(0);
            rows.push(format!(
                "  {{\"name\": {}, \"cat\": \"{}\", \"ph\": \"i\", \"ts\": {:.3}, \
                 \"pid\": 0, \"tid\": {}, \"s\": \"g\", \"args\": {{\"step\": {}}}}}",
                json_str(&format!("{}: {}", e.kind, e.detail)),
                e.kind,
                e.ts_ns as f64 / 1e3,
                tid,
                self.step
            ));
        }
        let mut out = String::from("[\n");
        out.push_str(&rows.join(",\n"));
        out.push_str("\n]");
        out
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(instr: u32, kind: &'static str, name: &str) -> SpanEvent {
        SpanEvent {
            instr,
            kind,
            name: name.to_string(),
            start_ns: 1_000 * u64::from(instr),
            dur_ns: 500,
            bytes: 0,
            alloc: None,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = SpanRing::new(3);
        for i in 0..5 {
            r.push(span(i, "fwd", "t"));
        }
        let t = r.into_trace(0);
        assert_eq!(t.dropped, 2);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].instr, 2, "oldest spans evicted first");
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let trace = StepTrace {
            step: 7,
            actors: vec![ActorTrace {
                actor: 1,
                spans: vec![
                    span(0, "fwd", "fwd(mb=0, s=1)"),
                    SpanEvent {
                        bytes: 64,
                        ..span(1, "send", "send b3 -> actor 0")
                    },
                ],
                dropped: 0,
            }],
            events: vec![StepEvent {
                ts_ns: 9_000,
                actor: Some(1),
                kind: "abort".into(),
                detail: "boom".into(),
            }],
        };
        let json = trace.chrome_trace_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"fwd(mb=0, s=1)\""));
        assert!(json.contains("\"bytes\": 64"));
        assert!(json.contains("\"abort: boom\""));
        assert!(!json.contains(",\n]"), "no trailing comma");
    }
}
