//! Runtime error type.

use std::fmt;

/// Error raised by the MPMD runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// An actor's thread terminated or its channel closed.
    ActorDied {
        /// The actor that died.
        actor: usize,
    },
    /// A task failed to execute on an actor.
    Exec {
        /// The actor that failed.
        actor: usize,
        /// Failure description.
        message: String,
    },
    /// The driver was given inputs inconsistent with the program.
    BadInput(String),
    /// An actor failed to reply within the driver's step timeout
    /// (`RAXPP_STEP_TIMEOUT_MS`); the step was aborted.
    Timeout {
        /// The actor that did not reply.
        actor: usize,
    },
    /// Elastic rebalancing failed: either no survivor remains or the
    /// program could not be re-placed onto the surviving actors.
    Rebalance(String),
}

impl RuntimeError {
    /// Whether `Runtime::recover()` plus a retry can plausibly clear
    /// this error: actor deaths, task failures, and timeouts are
    /// recoverable; caller input errors and failed rebalances are not.
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, RuntimeError::BadInput(_) | RuntimeError::Rebalance(_))
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ActorDied { actor } => write!(f, "actor {actor} died"),
            RuntimeError::Exec { actor, message } => {
                write!(f, "execution failed on actor {actor}: {message}")
            }
            RuntimeError::BadInput(m) => write!(f, "{m}"),
            RuntimeError::Timeout { actor } => {
                write!(f, "actor {actor} did not reply before the step timeout")
            }
            RuntimeError::Rebalance(m) => write!(f, "rebalance failed: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}
