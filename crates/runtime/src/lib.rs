//! `raxpp-runtime` — the single-controller MPMD runtime of RaxPP
//! (paper §4).
//!
//! The [`Runtime`] plays the role of JaxPP's driver process plus its Ray
//! actor fleet: it spawns one thread per actor, places parameter and data
//! buffers into per-actor [`ObjectStore`]s, dispatches each actor's fused
//! instruction stream in a single message per step (§4.4), moves
//! activations over per-pair FIFO channels with NCCL-style matching-order
//! semantics (§4.2), and honours deferred buffer deletion through the
//! pending-deletions queue (§4.3).
//!
//! The compute substrate is the `raxpp-ir` CPU interpreter, so the
//! runtime executes *real* training steps whose gradients are validated
//! against single-device autodiff; wall-clock performance at paper scale
//! is modelled separately by `raxpp-simcluster`.
//!
//! Failure is a first-class outcome: step epochs, abort broadcasts, and
//! actor respawn via [`Runtime::recover`] make any task error or actor
//! death surface as a bounded-time [`RuntimeError`] that leaves the
//! runtime reusable (see `driver` module docs and
//! `docs/execution-backend.md` §6).
//!
//! Execution is observable: with tracing enabled (`RAXPP_TRACE=1` or
//! [`Runtime::set_tracing`]) every actor records per-instruction
//! [`SpanEvent`]s that the driver assembles into a [`StepTrace`],
//! exportable as Chrome `trace_event` JSON; the [`Metrics`] registry
//! aggregates counters/gauges/histograms across steps (see
//! `docs/observability.md`).

#![deny(missing_docs)]

mod driver;
mod error;
mod lane;
mod metrics;
mod store;
mod trace;
mod transport;

pub use driver::{
    ActorProfile, Fault, RebalanceReport, RecoveryReport, Runtime, StepOutputs, StepStats,
    DRIVER_PEER,
};
pub use error::RuntimeError;
pub use metrics::{HistogramSummary, MetricValue, Metrics};
pub use store::{ObjectStore, SendToken};
pub use trace::{
    ActorTrace, SpanEvent, SpanRing, StepEvent, StepTrace, DEFAULT_SPAN_CAPACITY,
    TRACE_SCHEMA_VERSION,
};
pub use transport::{serve_worker, TransportKind, TransportStats, WorkerConfig};
