//! The single-controller MPMD runtime (paper §4.1) with fail-fast
//! failure semantics.
//!
//! A [`Runtime`] spawns one OS thread per actor (standing in for the
//! paper's Ray workers, each managing an SPMD device group). The driver
//! dispatches each actor's *entire fused instruction stream* in a single
//! message per step (§4.4); all cross-actor coordination happens through
//! per-actor inbox channels carrying per-peer FIFO streams (standing in
//! for NCCL P2P, whose matching-order requirement the compiler's §4.2
//! pass guarantees).
//!
//! # Failure protocol
//!
//! Failure is a first-class, bounded-time outcome, mirroring what the
//! paper inherits from Ray actor supervision plus NCCL communicator
//! aborts:
//!
//! * **Step epochs.** Every driver command carries a sequence number
//!   that its reply echoes, and every data message carries the epoch
//!   (the `Execute` sequence number) it belongs to. Stale messages from
//!   an aborted step are drained instead of being matched against the
//!   next step's expectations, so one failed step can never desynchronize
//!   the command/reply channels or the data streams.
//! * **Abort broadcast.** When an instruction errors on an actor, the
//!   actor broadcasts a poison `Abort` message to *every* peer inbox
//!   before replying, so peers blocked in `Recv` wake and abandon the
//!   epoch instead of hanging. A dying actor thread (injected death or
//!   panic) broadcasts the same poison on its way out, and the driver
//!   broadcasts on the actors' behalf when it detects a death itself —
//!   the thread-scale analogue of Ray's death notifications.
//! * **Complete reply collection.** The driver collects one reply per
//!   dispatched actor per command — also on the error path — so the
//!   reply channels are in a clean, reusable state after a failed step
//!   and the same `Runtime` can run the next step.
//! * **Recovery.** [`Runtime::recover`] respawns dead actor threads,
//!   rewires the surviving actors' channels to the replacements, and
//!   re-places the parameter/state buffers the driver holds resident
//!   copies of (`raxpp-core`'s trainer then restores its post-step
//!   snapshot on top for bitwise-identical retries).
//!
//! Tensors are `Arc`-backed handles, so placing a buffer, sending it to
//! a peer actor, and fetching it back to the driver are all O(1) moves
//! of a reference. Each `Run` instruction executes through the liveness
//! interpreter and its allocator counters are accumulated into the
//! actor's [`ActorProfile`].

use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use raxpp_ir::{
    eval_with_stats, eval_with_stats_hooked, eval_with_stats_observed, EvalStats, PanelObserver,
    Shape, Tensor,
};
use raxpp_taskgraph::{
    replace_program, BufferId, CollectiveAxis, CollectiveKind, Fetch, InputSource, Instr,
    MpmdProgram,
};

use crate::error::RuntimeError;
use crate::lane::{Contribution, GroupState, LaneCtx, LaneGroup, LaneHub, RunSlot};
use crate::store::{ObjectStore, SendToken};
use crate::trace::{ActorTrace, SpanEvent, SpanRing, StepEvent, StepTrace, DEFAULT_SPAN_CAPACITY};
use crate::transport::{
    CmdPort, Fabric, MpscTransport, ReplyPort, Scheme, SocketTransport, Transport, TransportKind,
    TransportStats,
};

/// A step sequence number: the `Execute` command's sequence number tags
/// every data message the step produces.
pub(crate) type Epoch = u64;

/// `from` id the driver uses when it broadcasts aborts itself.
pub(crate) const DRIVER: usize = usize::MAX;

/// The peer id naming the *driver* in wire faults — e.g.
/// `Fault::Partition { to: DRIVER_PEER }` injected on an actor discards
/// its outbound reply/heartbeat frames, so the driver detects the
/// silence via heartbeat timeout.
pub const DRIVER_PEER: usize = DRIVER;

/// How long the driver blocks between reply polls while waiting on a
/// step — bounds the latency of detecting a silent actor death.
const REPLY_POLL: Duration = Duration::from_millis(20);

/// Default step timeout (overridable via `RAXPP_STEP_TIMEOUT_MS` or
/// [`Runtime::set_step_timeout`]) — the last-resort bound when the
/// abort protocol itself is broken.
const DEFAULT_STEP_TIMEOUT: Duration = Duration::from_secs(60);

pub(crate) enum Payload {
    /// A tensor for `buf`, completing via the send token.
    Data(BufferId, Tensor, SendToken),
    /// The sender abandoned this epoch; the receiver must too.
    Abort(String),
}

/// One message on an actor's inbox: the per-peer FIFO streams are
/// demultiplexed by `from` on the receiving side.
pub(crate) struct Msg {
    pub(crate) from: usize,
    pub(crate) epoch: Epoch,
    pub(crate) payload: Payload,
}

/// A deterministic, one-shot fault for failure testing: injected with
/// [`Runtime::inject_fault`], consumed when it triggers.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The actor thread exits as soon as it processes the injection —
    /// the classic "worker crashed between steps".
    DieNow,
    /// The actor thread exits just before executing instruction `n` of
    /// its next fused stream — "worker crashed mid-step".
    DieAtInstr(usize),
    /// Instruction `n` of the next stream fails with an injected task
    /// error (the actor survives).
    ErrorAtInstr(usize),
    /// The first `Run` instruction whose task label's rendering contains
    /// this substring fails with an injected task error.
    ErrorAtTask(String),
    /// kill -9 semantics, immediately: the actor vanishes without any
    /// abort broadcast or goodbye. On the in-process transport the
    /// thread exits silently; on a socket transport the endpoint is
    /// severed too; on the process backend the worker process calls
    /// `abort()`. Peers discover the death only through closed
    /// connections and the driver through reply-channel disconnect or
    /// heartbeat silence — always in bounded time.
    KillNow,
    /// kill -9 just before executing instruction `n` of the next fused
    /// stream — "worker SIGKILLed mid-step" (e.g. mid-collective).
    KillAtInstr(usize),
    /// Wire fault: close the established connection to `peer` before
    /// the next frame to it, forcing a transparent re-dial. Applied
    /// immediately (not queued); a documented no-op on the in-process
    /// transport, so one seeded chaos schedule drives both transports.
    DropLink {
        /// The peer whose link is dropped.
        peer: usize,
    },
    /// Wire fault: delay the next frame to `peer` by `ms` milliseconds.
    /// Bitwise-transparent (messages arrive late, never differently).
    /// Applied immediately; no-op on the in-process transport.
    DelayLink {
        /// The peer whose next frame is delayed.
        peer: usize,
        /// Delay in milliseconds.
        ms: u64,
    },
    /// Wire fault: one-way partition — outbound frames to `to` are
    /// silently discarded until recovery heals the wire
    /// (`Runtime::recover`). Partitioning the reply path toward the
    /// driver is detected by heartbeat silence and surfaced as
    /// `RuntimeError::Timeout`. Applied immediately; no-op on the
    /// in-process transport.
    Partition {
        /// The peer outbound frames are discarded toward.
        to: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Command {
    Place {
        seq: u64,
        bufs: Vec<(BufferId, Tensor)>,
    },
    Execute {
        seq: u64,
        /// Record per-instruction spans into a ring buffer this step.
        traced: bool,
        /// Execute tensor-parallel collectives through the shared-memory
        /// lane rendezvous rather than the serial message ring. Latched
        /// by the driver from the hub's mode switch at dispatch, so all
        /// lanes of a step agree on the mode.
        lanes: bool,
    },
    Fetch {
        seq: u64,
        bufs: Vec<BufferId>,
    },
    Read {
        seq: u64,
        buf: BufferId,
    },
    PeakBytes {
        seq: u64,
    },
    LiveBytes {
        seq: u64,
    },
    /// Re-place the executed program (after a rebalance): the actor
    /// applies `replace_program` with this assignment to its current
    /// program — deterministic, so it reproduces the driver's result
    /// without ever serializing a program. No reply.
    Reprogram {
        assign: Vec<usize>,
    },
    /// Arm a one-shot fault (wire faults apply immediately). No reply.
    InjectFault(Fault),
    /// Clear wire chaos (partitions, pending drops/delays) after
    /// recovery. No reply.
    HealWire,
    Shutdown,
}

/// Why an `Execute` failed on one actor, as reported on the wire.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ExecFailure {
    /// A genuine error on this actor (task error, protocol violation).
    Error(String),
    /// Cascade: peer `by` aborted the epoch and this actor abandoned it.
    Aborted { by: usize, reason: String },
}

/// What an actor reports back from one `Execute`: the result, plus the
/// recorded spans when the step was traced (also on the failure path —
/// partial traces of aborted steps are exactly what post-mortems need).
pub(crate) struct ExecOutcome {
    pub(crate) result: Result<ActorProfile, ExecFailure>,
    pub(crate) trace: Option<ActorTrace>,
}

pub(crate) enum ReplyKind {
    Placed,
    Executed(Box<ExecOutcome>),
    Fetched(Result<Vec<Tensor>, String>),
    Read(Result<Tensor, String>),
    PeakBytes(usize),
    LiveBytes(usize),
}

pub(crate) struct Reply {
    pub(crate) seq: u64,
    pub(crate) kind: ReplyKind,
}

/// The driver's handle on one actor, whatever the transport: a command
/// port out, an in-process reply receiver back (socket transports pump
/// into it and drop the sender on connection EOF — the same
/// `Disconnected` the mpsc transport produces on thread death).
pub(crate) struct ActorLink {
    pub(crate) cmd: CmdPort,
    pub(crate) reply: Receiver<Reply>,
    /// The actor thread, when the transport runs actors in this
    /// process (`None` on the process backend).
    pub(crate) handle: Option<JoinHandle<()>>,
    pub(crate) dead: bool,
}

impl std::fmt::Debug for ActorLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorLink {{ dead: {} }}", self.dead)
    }
}

/// Per-instruction-kind wall-clock accounting for one actor's step.
///
/// Keys are instruction kinds (`"fwd"`, `"bwd"`, `"bwdw"`,
/// `"accum_grad"`, `"ct_sum"`, `"grad_reduce"`, `"update"`, `"send"`,
/// `"recv"`, `"free"`). `recv` time is mostly *waiting* for upstream
/// data — the executable analogue of the pipeline bubble. The profile
/// also carries the interpreter's buffer-allocator counters summed over
/// the step's `Run` instructions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActorProfile {
    entries: HashMap<&'static str, (Duration, u32)>,
    alloc: EvalStats,
    bytes_reduced: u64,
    bytes_wire: u64,
    bytes_overlap: u64,
    dp_bytes_wire: u64,
}

impl ActorProfile {
    fn record(&mut self, kind: &'static str, dur: Duration) {
        let e = self.entries.entry(kind).or_insert((Duration::ZERO, 0));
        e.0 += dur;
        e.1 += 1;
    }

    /// Wire-decode support: reinstates one profile entry verbatim.
    pub(crate) fn restore_entry(&mut self, kind: &'static str, dur: Duration, count: u32) {
        let e = self.entries.entry(kind).or_insert((Duration::ZERO, 0));
        e.0 += dur;
        e.1 += count;
    }

    /// Wire-decode support: reinstates the allocator and byte counters
    /// verbatim.
    pub(crate) fn restore_counters(
        &mut self,
        alloc: EvalStats,
        bytes_reduced: u64,
        bytes_wire: u64,
        bytes_overlap: u64,
        dp_bytes_wire: u64,
    ) {
        self.alloc = alloc;
        self.bytes_reduced = bytes_reduced;
        self.bytes_wire = bytes_wire;
        self.bytes_overlap = bytes_overlap;
        self.dp_bytes_wire = dp_bytes_wire;
    }

    /// Total time and invocation count for an instruction kind.
    pub fn get(&self, kind: &str) -> Option<(Duration, u32)> {
        self.entries.get(kind).copied()
    }

    /// All recorded kinds with their totals, unordered.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, Duration, u32)> + '_ {
        self.entries.iter().map(|(&k, &(d, c))| (k, d, c))
    }

    /// Buffer-allocator counters (allocated / reused / freed) summed
    /// over this step's `Run` instructions.
    pub fn alloc_stats(&self) -> &EvalStats {
        &self.alloc
    }

    /// Bytes combined by tensor-parallel reduce collectives (all-reduce
    /// and reduce-scatter) on this actor this step: `(t-1) × 4 × numel`
    /// per collective, the wire volume of its ring exchange. All-gathers
    /// move blocks but reduce nothing, so they do not count here (their
    /// invocations still appear under the `"collective"` profile kind).
    pub fn bytes_reduced(&self) -> u64 {
        self.bytes_reduced
    }

    /// Ring wire volume of *every* tensor-parallel collective on this
    /// actor this step — `(t-1) × 4 × numel` per collective of any
    /// kind, including all-gathers (which move blocks without reducing
    /// and therefore do not appear in [`ActorProfile::bytes_reduced`]).
    /// Counted identically in lane and serial-ring modes, so overlap
    /// wins are measurable per kind.
    pub fn bytes_wire(&self) -> u64 {
        self.bytes_wire
    }

    /// Of [`ActorProfile::bytes_wire`], the bytes this actor published
    /// to the lane rendezvous *early* — row panels streamed out of a
    /// producing matmul while it was still multiplying, i.e. collective
    /// payload made available behind compute. Zero in serial-ring mode.
    pub fn bytes_overlap(&self) -> u64 {
        self.bytes_overlap
    }

    /// Ring wire volume of every *data-parallel* collective on this
    /// actor this step — `(R-1) × 4 × numel` per DP gradient or
    /// parameter exchange. Kept separate from
    /// [`ActorProfile::bytes_wire`] (the tensor-parallel volume) so the
    /// two mesh axes are observable independently; invocations appear
    /// under the `"dp_collective"` profile kind.
    pub fn dp_bytes_wire(&self) -> u64 {
        self.dp_bytes_wire
    }
}

/// Statistics of one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Wall-clock duration of the dispatched step (excluding input
    /// placement).
    pub wall: Duration,
    /// Number of driver→actor dispatch messages this step (1 per actor —
    /// task fusion, §4.4).
    pub rpcs: usize,
    /// Per-actor instruction-kind profiles.
    pub profiles: Vec<ActorProfile>,
}

impl StepStats {
    /// Buffer-allocator counters summed across all actors for this step.
    pub fn alloc_stats(&self) -> EvalStats {
        let mut total = EvalStats::default();
        for p in &self.profiles {
            total.merge(p.alloc_stats());
        }
        total
    }
}

/// The outputs of one step: every fetched buffer with its [`Fetch`]
/// descriptor (gradients, per-microbatch losses/metrics).
#[derive(Debug, Clone)]
pub struct StepOutputs {
    /// Fetched buffers in program fetch order.
    pub fetched: Vec<(Fetch, Tensor)>,
    /// Step statistics.
    pub stats: StepStats,
    /// The step's trace when tracing was enabled (`RAXPP_TRACE=1` or
    /// [`Runtime::set_tracing`]); `None` otherwise.
    pub trace: Option<StepTrace>,
}

/// What [`Runtime::recover`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Actors whose threads were respawned.
    pub respawned: Vec<usize>,
    /// Driver-held resident buffers re-placed onto respawned actors.
    pub replaced_buffers: usize,
}

/// What [`Runtime::rebalance`] did: which actors were permanently
/// retired, where every old actor's work now lives, and how many
/// driver-held resident buffers migrated to host survivors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Actors permanently retired by this call, ascending.
    pub retired: Vec<usize>,
    /// `assign[a]` is the actor now hosting old actor `a`'s stages
    /// (survivors map to themselves).
    pub assign: Vec<usize>,
    /// Driver-held resident buffers migrated from retired actors onto
    /// their hosts.
    pub migrated_buffers: usize,
}

struct Inner {
    /// The program currently executed; swapped atomically (under this
    /// lock, plus a `Reprogram` broadcast) by [`Runtime::rebalance`].
    program: Arc<MpmdProgram>,
    actors: Vec<ActorLink>,
    /// The fleet factory and carrier-specific driver operations.
    /// Declared after `actors` so links (reply receivers, cached
    /// command ports) drop before the transport tears the fleet down.
    transport: Box<dyn Transport>,
    /// Monotone command sequence counter; the `Execute` seq is the step
    /// epoch.
    seq: u64,
    /// Last tensor explicitly placed per (actor, buffer) — the
    /// driver-held copies re-placed onto respawned actors. Per-step data
    /// placements are not recorded.
    resident: HashMap<(usize, BufferId), Tensor>,
    /// Trace of the most recent traced step (success or failure),
    /// retrievable with [`Runtime::take_step_trace`].
    last_trace: Option<StepTrace>,
    /// Actors permanently removed by [`Runtime::rebalance`]: never
    /// dispatched to, never respawned by [`Runtime::recover`].
    retired: Vec<bool>,
    /// Every rebalance assignment applied so far, in order. Process
    /// workers respawn with the *original* program (recompiled from
    /// the spec), so [`Runtime::recover`] replays this history onto
    /// them via `Reprogram` to reconstruct the driver's current
    /// program deterministically.
    assign_history: Vec<Vec<usize>>,
}

/// A single-controller MPMD runtime executing a compiled
/// [`MpmdProgram`] on actor threads.
///
/// # Examples
///
/// See `raxpp-core`'s `distributed` API, which compiles traced training
/// steps into programs and drives this runtime.
pub struct Runtime {
    inner: Mutex<Inner>,
    /// Step timeout in milliseconds (atomic so tests can tighten it on
    /// a shared runtime without exclusive access).
    step_timeout: AtomicU64,
    /// Collective-group coordination (`Some` iff the program carries
    /// [`raxpp_taskgraph::TpMeta`] with degree > 1 or
    /// [`raxpp_taskgraph::DpMeta`] with more than one replica).
    hub: Option<Arc<LaneHub>>,
    /// Whether [`Runtime::step`] records per-instruction span traces.
    tracing: AtomicBool,
    /// The shared zero point of every span timestamp: all actors (and
    /// respawned replacements) measure against this instant, so spans
    /// from different threads align on one timeline.
    origin: Instant,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|i| i.actors.len()).unwrap_or(0);
        write!(f, "Runtime {{ n_actors: {n} }}")
    }
}

fn step_timeout_from_env() -> Duration {
    std::env::var("RAXPP_STEP_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_STEP_TIMEOUT)
}

fn tracing_from_env() -> bool {
    std::env::var("RAXPP_TRACE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

impl Runtime {
    /// Spawns the actor fleet on the transport selected by
    /// `RAXPP_TRANSPORT` (in-process mpsc by default; see
    /// [`TransportKind::from_env`]).
    pub fn new(program: MpmdProgram) -> Runtime {
        Runtime::with_transport(program, TransportKind::from_env())
    }

    /// Spawns the actor fleet on an explicit transport: in-process
    /// mpsc, or thread-backed workers whose every fabric byte crosses
    /// a Unix-domain/TCP socket. Execution is bitwise-identical across
    /// transports (socket transports disable the shared-memory lane
    /// rendezvous, so collectives take the message-ring path — itself
    /// bitwise-equal to lane mode by construction).
    pub fn with_transport(program: MpmdProgram, kind: TransportKind) -> Runtime {
        let n = program.n_actors();
        let transport: Box<dyn Transport> = match kind {
            TransportKind::Mpsc => Box::new(MpscTransport::new(n)),
            TransportKind::UnixSocket => Box::new(SocketTransport::threads(n, Scheme::Uds)),
            TransportKind::Tcp => Box::new(SocketTransport::threads(n, Scheme::Tcp)),
        };
        Runtime::build(program, transport)
    }

    /// Spawns the actor fleet as separate OS processes over sockets in
    /// `dir`: `spawn(a)` must launch a worker process that calls
    /// [`crate::serve_worker`] for actor `a` against the same
    /// directory (see the `raxpp-launch` binary). A worker SIGKILLed
    /// mid-step ([`Runtime::kill_worker`]) surfaces as
    /// [`RuntimeError::ActorDied`] in bounded time and is respawned by
    /// [`Runtime::recover`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the fleet directory or
    /// binding the driver's socket.
    pub fn with_process_fleet(
        program: MpmdProgram,
        dir: &std::path::Path,
        tcp: bool,
        spawn: Box<dyn FnMut(usize) -> std::io::Result<std::process::Child> + Send>,
    ) -> std::io::Result<Runtime> {
        let n = program.n_actors();
        let scheme = if tcp { Scheme::Tcp } else { Scheme::Uds };
        let transport = Box::new(SocketTransport::processes(n, dir, scheme, spawn)?);
        Ok(Runtime::build(program, transport))
    }

    fn build(program: MpmdProgram, mut transport: Box<dyn Transport>) -> Runtime {
        let n = program.n_actors();
        let tp_sharded = program.tp.as_ref().is_some_and(|m| m.degree > 1);
        let dp_replicated = program.dp.as_ref().is_some_and(|m| m.replicas > 1);
        let hub = (transport.supports_lanes() && (tp_sharded || dp_replicated))
            .then(|| Arc::new(LaneHub::new(program.tp.as_ref().filter(|m| m.degree > 1))));
        let program = Arc::new(program);
        let origin = Instant::now();
        let actors = (0..n)
            .map(|a| {
                let lane = hub.as_ref().map(|h| h.ctx_for(a));
                transport.spawn_actor(a, &program, origin, lane)
            })
            .collect();
        Runtime {
            inner: Mutex::new(Inner {
                program,
                actors,
                transport,
                seq: 0,
                resident: HashMap::new(),
                last_trace: None,
                retired: vec![false; n],
                assign_history: Vec::new(),
            }),
            step_timeout: AtomicU64::new(step_timeout_from_env().as_millis() as u64),
            hub,
            tracing: AtomicBool::new(tracing_from_env()),
            origin,
        }
    }

    /// Which transport the fleet runs on.
    pub fn transport_kind(&self) -> TransportKind {
        self.inner.lock().unwrap().transport.kind()
    }

    /// Cumulative wire counters (bytes, reconnects, heartbeat misses).
    /// All zero on the in-process transport.
    pub fn transport_stats(&self) -> TransportStats {
        self.inner.lock().unwrap().transport.stats()
    }

    /// Delivers a real SIGKILL to actor `a`'s worker process (process
    /// fleets only; returns `false` on thread-backed transports). The
    /// link is marked dead so the next step fails fast with
    /// [`RuntimeError::ActorDied`]; [`Runtime::recover`] respawns the
    /// worker.
    pub fn kill_worker(&self, a: usize) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if a >= inner.actors.len() {
            return false;
        }
        let killed = inner.transport.kill_process(a);
        if killed {
            inner.actors[a].dead = true;
        }
        killed
    }

    fn timeout(&self) -> Duration {
        Duration::from_millis(self.step_timeout.load(Ordering::Relaxed))
    }

    /// Switches tensor-parallel execution between shard-lane mode
    /// (`true`: shared-memory rendezvous, replicated-run dedup,
    /// compute/communication overlap) and the serial message-ring
    /// fallback (`false`). Both modes are bitwise-identical; the
    /// initial mode comes from `RAXPP_TP_LANES` (see
    /// `docs/parallelism.md`). No-op for programs without tensor
    /// parallelism. Takes effect on the next [`Runtime::step`].
    pub fn set_tp_lanes(&self, on: bool) {
        if let Some(h) = &self.hub {
            h.serial.store(!on, Ordering::Relaxed);
        }
    }

    /// Whether the next step will run tensor-parallel collectives in
    /// shard-lane mode. `false` for programs without tensor parallelism.
    pub fn tp_lanes_enabled(&self) -> bool {
        self.hub
            .as_ref()
            .is_some_and(|h| !h.serial.load(Ordering::Relaxed))
    }

    /// Number of live rendezvous slots (staged collective contributions
    /// plus deduplicated-run results) across every collective group.
    /// Between steps this should be exactly the slots of the last
    /// completed epoch — recovery and rebalance GC anything older, so a
    /// monotone growth here across fault/recover cycles is a leak.
    /// Always 0 for programs without collective groups.
    pub fn lane_live_slots(&self) -> usize {
        self.hub.as_ref().map_or(0, |h| h.live_slots())
    }

    /// Enables or disables per-instruction step tracing (initially set
    /// from `RAXPP_TRACE`). Takes effect on the next [`Runtime::step`].
    ///
    /// Tracing only records timestamps and byte counts — it cannot
    /// change what any kernel computes, so traced execution stays
    /// bitwise identical to untraced execution.
    pub fn set_tracing(&self, enabled: bool) {
        self.tracing.store(enabled, Ordering::Relaxed);
    }

    /// Whether the next step will be traced.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Takes the trace of the most recent traced step, successful or
    /// failed. Failed steps leave their (partial) trace here even though
    /// [`Runtime::step`] returns an error — the abort events and the
    /// spans executed before the failure are the post-mortem record.
    pub fn take_step_trace(&self) -> Option<StepTrace> {
        self.inner.lock().unwrap().last_trace.take()
    }

    /// Nanoseconds elapsed since the runtime's launch — the zero point
    /// of every span and event timestamp, so callers (e.g. the trainer's
    /// retry loop) can stamp their own [`StepEvent`]s on the same
    /// timeline.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// The program currently being executed. [`Runtime::rebalance`]
    /// swaps it, so callers get a snapshot handle rather than a
    /// reference.
    pub fn program(&self) -> Arc<MpmdProgram> {
        Arc::clone(&self.inner.lock().unwrap().program)
    }

    /// Number of actors still in service (neither retired by
    /// [`Runtime::rebalance`] — dead-but-recoverable actors count as
    /// alive, since [`Runtime::recover`] will respawn them).
    pub fn alive_actors(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.retired.iter().filter(|&&r| !r).count()
    }

    /// Actors permanently retired by [`Runtime::rebalance`], ascending.
    pub fn retired_actors(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap();
        (0..inner.retired.len())
            .filter(|&a| inner.retired[a])
            .collect()
    }

    /// Overrides the step timeout (default 60 s, or
    /// `RAXPP_STEP_TIMEOUT_MS`): the bound on how long the driver waits
    /// for any single actor's reply before declaring the step failed.
    /// On socket transports heartbeat suspicion usually fires first on
    /// a silently dead or partitioned peer; this is the backstop.
    pub fn set_step_timeout(&self, timeout: Duration) {
        self.step_timeout
            .store(timeout.as_millis().max(1) as u64, Ordering::Relaxed);
    }

    /// Places the model parameters on their actors (done once; parameters
    /// stay resident across steps and are updated in place by optimizer
    /// tasks). The driver keeps a handle to each placed tensor so
    /// [`Runtime::recover`] can re-place it after an actor respawn.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadInput`] on shape mismatch and
    /// [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn place_params(&self, params: &[Tensor]) -> Result<(), RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let program = Arc::clone(&inner.program);
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> =
            (0..program.n_actors()).map(|_| Vec::new()).collect();
        for p in &program.placements {
            if let InputSource::Param(i) = p.source {
                let t = params
                    .get(i)
                    .ok_or_else(|| RuntimeError::BadInput(format!("missing parameter {i}")))?;
                if t.shape() != &p.shape {
                    return Err(RuntimeError::BadInput(format!(
                        "parameter {i} has shape {} but program expects {}",
                        t.shape(),
                        p.shape
                    )));
                }
                per_actor[p.actor].push((p.buf, t.clone()));
            }
        }
        self.place(&mut inner, per_actor, true)
    }

    /// Runs one step: places the per-microbatch data inputs, dispatches
    /// every actor's fused stream (one message each), and fetches the
    /// result buffers.
    ///
    /// `data[input][mubatch]` follows the traced function's data-input
    /// order.
    ///
    /// A failed step returns in bounded time (the failing actor's abort
    /// broadcast wakes every blocked peer; the step timeout is the
    /// last-resort bound) and leaves the runtime in a clean state: the
    /// same `Runtime` can run the next step, after [`Runtime::recover`]
    /// if an actor died.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on bad inputs, actor failure, task
    /// execution errors, or timeout.
    pub fn step(&self, data: &[Vec<Tensor>]) -> Result<StepOutputs, RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let program = Arc::clone(&inner.program);
        let n = program.n_actors();
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> = (0..n).map(|_| Vec::new()).collect();
        for p in &program.placements {
            if let InputSource::Data { input, mubatch } = p.source {
                let t = data
                    .get(input)
                    .and_then(|mbs| mbs.get(mubatch))
                    .ok_or_else(|| {
                        RuntimeError::BadInput(format!(
                            "missing data input {input} microbatch {mubatch}"
                        ))
                    })?;
                if t.shape() != &p.shape {
                    return Err(RuntimeError::BadInput(format!(
                        "data input {input} mb {mubatch} has shape {} but program expects {}",
                        t.shape(),
                        p.shape
                    )));
                }
                per_actor[p.actor].push((p.buf, t.clone()));
            }
        }
        self.place(&mut inner, per_actor, false)?;

        // One fused dispatch per actor (§4.4): the Execute seq is the
        // step epoch tagging every data message of this step.
        let traced = self.tracing.load(Ordering::Relaxed);
        // Latch the lane mode once per step: every actor of this epoch
        // must agree (a serial/lanes mix would deadlock one side in the
        // ring and the other in the rendezvous).
        let lanes = self.tp_lanes_enabled();
        let start = Instant::now();
        inner.seq += 1;
        let epoch = inner.seq;
        let mut dispatched = vec![false; n];
        let mut fatal: Vec<Option<RuntimeError>> = vec![None; n];
        let mut rpcs = 0;
        for a in 0..n {
            if inner.retired[a] {
                continue; // folded away: no stream, no reply expected
            }
            if inner.actors[a].dead
                || inner.actors[a]
                    .cmd
                    .send(Command::Execute {
                        seq: epoch,
                        traced,
                        lanes,
                    })
                    .is_err()
            {
                inner.actors[a].dead = true;
                fatal[a] = Some(RuntimeError::ActorDied { actor: a });
                continue;
            }
            dispatched[a] = true;
            rpcs += 1;
        }
        let mut outcome: Vec<Option<Result<ActorProfile, ExecFailure>>> =
            (0..n).map(|_| None).collect();
        let mut traces: Vec<Option<ActorTrace>> = (0..n).map(|_| None).collect();
        let mut abort_sent = false;
        if fatal.iter().flatten().next().is_some() {
            broadcast_driver_abort(&inner, epoch, "actor died before dispatch");
            abort_sent = true;
        }
        let deadline = Instant::now() + self.timeout();
        loop {
            let mut progressed = false;
            let mut first_pending = None;
            for a in 0..n {
                if !dispatched[a] || outcome[a].is_some() || fatal[a].is_some() {
                    continue;
                }
                loop {
                    match inner.actors[a].reply.try_recv() {
                        Ok(r) if r.seq == epoch => {
                            if let ReplyKind::Executed(res) = r.kind {
                                let o = *res;
                                traces[a] = o.trace;
                                outcome[a] = Some(o.result);
                            }
                            progressed = true;
                            break;
                        }
                        // Stale reply from an earlier aborted command:
                        // drain and keep looking.
                        Ok(_) => continue,
                        Err(TryRecvError::Empty) => {
                            first_pending.get_or_insert(a);
                            break;
                        }
                        Err(TryRecvError::Disconnected) => {
                            inner.actors[a].dead = true;
                            fatal[a] = Some(RuntimeError::ActorDied { actor: a });
                            progressed = true;
                            break;
                        }
                    }
                }
            }
            // Heartbeat suspicion (socket transports only): an actor
            // whose reply link is open but silent — e.g. a one-way
            // partition toward the driver — is declared timed out long
            // before the step-timeout backstop.
            for a in 0..n {
                if dispatched[a]
                    && outcome[a].is_none()
                    && fatal[a].is_none()
                    && inner.transport.heartbeat_suspect(a)
                {
                    fatal[a] = Some(RuntimeError::Timeout { actor: a });
                    inner.transport.note_heartbeat_miss();
                    progressed = true;
                }
            }
            let failed = fatal.iter().flatten().next().is_some()
                || outcome.iter().flatten().any(|r| r.is_err());
            if failed && !abort_sent {
                // Wake peers blocked in Recv on the failed epoch. The
                // failing actor (or its death guard) broadcast already;
                // this covers deaths whose guard ran under an older
                // epoch, and is harmless otherwise.
                broadcast_driver_abort(&inner, epoch, "step aborted by driver");
                abort_sent = true;
            }
            let pending = first_pending.is_some();
            if !pending {
                break;
            }
            if progressed {
                continue;
            }
            if Instant::now() >= deadline {
                for a in 0..n {
                    if dispatched[a] && outcome[a].is_none() && fatal[a].is_none() {
                        fatal[a] = Some(RuntimeError::Timeout { actor: a });
                    }
                }
                if !abort_sent {
                    broadcast_driver_abort(&inner, epoch, "step timeout");
                }
                break;
            }
            // Block briefly on one pending actor; silent deaths surface
            // as channel disconnects on the next try_recv sweep.
            if let Some(a) = first_pending {
                let _ = inner.actors[a].reply.recv_timeout(REPLY_POLL).map(|r| {
                    if r.seq == epoch {
                        if let ReplyKind::Executed(res) = r.kind {
                            let o = *res;
                            traces[a] = o.trace;
                            outcome[a] = Some(o.result);
                        }
                    }
                });
            }
        }
        // Assemble the step trace (also for failed steps — the partial
        // spans plus the abort events are the post-mortem record) before
        // the error return below.
        let step_trace = if traced {
            let mut tr = StepTrace {
                step: epoch,
                actors: traces.iter_mut().filter_map(Option::take).collect(),
                events: Vec::new(),
            };
            let now_ns = self.origin.elapsed().as_nanos() as u64;
            for (a, f) in fatal.iter().enumerate() {
                let (kind, detail) = match f {
                    Some(RuntimeError::Timeout { .. }) => ("timeout", format!("actor {a}")),
                    Some(e) => ("actor_died", e.to_string()),
                    None => continue,
                };
                tr.events.push(StepEvent {
                    ts_ns: now_ns,
                    actor: Some(a),
                    kind: kind.to_string(),
                    detail,
                });
            }
            for (a, r) in outcome.iter().enumerate() {
                let (kind, detail) = match r {
                    Some(Err(ExecFailure::Error(m))) => ("abort", m.clone()),
                    Some(Err(ExecFailure::Aborted { by, reason })) => {
                        let who = if *by == DRIVER {
                            "driver".to_string()
                        } else {
                            format!("actor {by}")
                        };
                        ("cascade", format!("aborted by {who}: {reason}"))
                    }
                    _ => continue,
                };
                tr.events.push(StepEvent {
                    ts_ns: now_ns,
                    actor: Some(a),
                    kind: kind.to_string(),
                    detail,
                });
            }
            Some(tr)
        } else {
            None
        };
        inner.last_trace = step_trace.clone();
        if let Some(err) = step_error(&fatal, &outcome) {
            return Err(err);
        }
        let mut profiles = Vec::with_capacity(n);
        for (a, r) in outcome.into_iter().enumerate() {
            match r {
                Some(Ok(p)) => profiles.push(p),
                None if inner.retired[a] => profiles.push(ActorProfile::default()),
                _ => unreachable!("step_error covers non-Ok outcomes"),
            }
        }
        let wall = start.elapsed();

        // Fetch results.
        let mut wanted: Vec<Vec<BufferId>> = (0..n).map(|_| Vec::new()).collect();
        for f in &program.fetches {
            wanted[f.actor].push(f.buf);
        }
        inner.seq += 1;
        let seq = inner.seq;
        let mut fetch_dispatched = vec![false; n];
        let mut first_err = None;
        for a in 0..n {
            if wanted[a].is_empty() {
                continue;
            }
            let cmd = Command::Fetch {
                seq,
                bufs: wanted[a].clone(),
            };
            if inner.actors[a].cmd.send(cmd).is_err() {
                inner.actors[a].dead = true;
                first_err.get_or_insert(RuntimeError::ActorDied { actor: a });
                continue;
            }
            fetch_dispatched[a] = true;
        }
        let mut fetched_per_actor: Vec<HashMap<BufferId, Tensor>> =
            (0..n).map(|_| Default::default()).collect();
        for a in 0..n {
            if !fetch_dispatched[a] {
                continue;
            }
            match recv_reply(&inner.actors[a], a, seq, self.timeout()) {
                Ok(ReplyKind::Fetched(Ok(ts))) => {
                    for (b, t) in wanted[a].iter().zip(ts) {
                        fetched_per_actor[a].insert(*b, t);
                    }
                }
                Ok(ReplyKind::Fetched(Err(message))) => {
                    first_err.get_or_insert(RuntimeError::Exec { actor: a, message });
                }
                Ok(_) => {
                    first_err.get_or_insert(RuntimeError::Exec {
                        actor: a,
                        message: "protocol error: unexpected reply kind".into(),
                    });
                }
                Err(e) => {
                    if matches!(e, RuntimeError::ActorDied { .. }) {
                        inner.actors[a].dead = true;
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let fetched = program
            .fetches
            .iter()
            .map(|f| (*f, fetched_per_actor[f.actor][&f.buf].clone()))
            .collect();
        Ok(StepOutputs {
            fetched,
            stats: StepStats {
                wall,
                rpcs,
                profiles,
            },
            trace: step_trace,
        })
    }

    /// Places arbitrary buffers on actors (e.g. optimizer state appended
    /// by `raxpp-core`'s compiler, which the program lists with a
    /// `State` source). The driver keeps a handle to each placed tensor
    /// so [`Runtime::recover`] can re-place it after an actor respawn.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn place_buffers(&self, items: &[(usize, BufferId, Tensor)]) -> Result<(), RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.actors.len();
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> = (0..n).map(|_| Vec::new()).collect();
        for (actor, buf, t) in items {
            if *actor >= n {
                return Err(RuntimeError::BadInput(format!("unknown actor {actor}")));
            }
            per_actor[*actor].push((*buf, t.clone()));
        }
        self.place(&mut inner, per_actor, true)
    }

    /// Reads one buffer from an actor's store (e.g. an updated parameter).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the actor died or the buffer is
    /// missing.
    pub fn read_buffer(&self, actor: usize, buf: BufferId) -> Result<Tensor, RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        if actor >= inner.actors.len() || inner.retired[actor] {
            return Err(RuntimeError::ActorDied { actor });
        }
        inner.seq += 1;
        let seq = inner.seq;
        let link = &inner.actors[actor];
        link.cmd
            .send(Command::Read { seq, buf })
            .map_err(|_| RuntimeError::ActorDied { actor })?;
        match recv_reply(link, actor, seq, self.timeout()) {
            Ok(ReplyKind::Read(Ok(t))) => Ok(t),
            Ok(ReplyKind::Read(Err(message))) => Err(RuntimeError::Exec { actor, message }),
            Ok(_) => Err(RuntimeError::Exec {
                actor,
                message: "protocol error: unexpected reply kind".into(),
            }),
            Err(e) => {
                if matches!(e, RuntimeError::ActorDied { .. }) {
                    inner.actors[actor].dead = true;
                }
                Err(e)
            }
        }
    }

    /// Peak object-store bytes per actor since launch — the executable
    /// analogue of the schedules' activation-memory footprints
    /// (§2.2.1: GPipe's grows with the microbatch count, 1F1B's with
    /// the stage count). Answers even after failed steps: stores survive
    /// aborts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn peak_store_bytes(&self) -> Result<Vec<usize>, RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.actors.len();
        let mut out = Vec::with_capacity(n);
        for a in 0..n {
            if inner.retired[a] {
                out.push(0); // folded away: store discarded with the thread
                continue;
            }
            inner.seq += 1;
            let seq = inner.seq;
            let link = &inner.actors[a];
            link.cmd
                .send(Command::PeakBytes { seq })
                .map_err(|_| RuntimeError::ActorDied { actor: a })?;
            match recv_reply(link, a, seq, self.timeout())? {
                ReplyKind::PeakBytes(b) => out.push(b),
                _ => {
                    return Err(RuntimeError::Exec {
                        actor: a,
                        message: "protocol error: unexpected reply kind".into(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Bytes currently resident in each actor's object store, after
    /// reclaiming any parked deletions whose sends have completed. At
    /// quiescence (between steps) this is the deterministic resident
    /// set — parameters, optimizer state, and fetched outputs — which
    /// makes it the leak detector [`Runtime::peak_store_bytes`] (a
    /// timing-sensitive high-water mark) cannot be.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn live_store_bytes(&self) -> Result<Vec<usize>, RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.actors.len();
        let mut out = Vec::with_capacity(n);
        for a in 0..n {
            if inner.retired[a] {
                out.push(0); // folded away: store discarded with the thread
                continue;
            }
            inner.seq += 1;
            let seq = inner.seq;
            let link = &inner.actors[a];
            link.cmd
                .send(Command::LiveBytes { seq })
                .map_err(|_| RuntimeError::ActorDied { actor: a })?;
            match recv_reply(link, a, seq, self.timeout())? {
                ReplyKind::LiveBytes(b) => out.push(b),
                _ => {
                    return Err(RuntimeError::Exec {
                        actor: a,
                        message: "protocol error: unexpected reply kind".into(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Failure injection: terminate one actor's thread immediately.
    /// Equivalent to `inject_fault(actor, Fault::DieNow)`; the next
    /// `step` fails with [`RuntimeError::ActorDied`] instead of hanging.
    pub fn inject_failure(&self, actor: usize) {
        let _ = self.inject_fault(actor, Fault::DieNow);
    }

    /// Arms a one-shot deterministic [`Fault`] on one actor: die or
    /// error at a chosen instruction index or task label of the next
    /// executed stream. Repeated injections queue and fire in order, one
    /// per triggering execution. The fault-injection surface behind
    /// every failure test and the failure-mode bench.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ActorDied`] if the actor is already gone.
    pub fn inject_fault(&self, actor: usize, fault: Fault) -> Result<(), RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        if actor >= inner.actors.len() || inner.actors[actor].dead {
            return Err(RuntimeError::ActorDied { actor });
        }
        let sent = inner.actors[actor]
            .cmd
            .send(Command::InjectFault(fault))
            .is_ok();
        if !sent {
            inner.actors[actor].dead = true;
            return Err(RuntimeError::ActorDied { actor });
        }
        Ok(())
    }

    /// Respawns dead actors and reconnects the fleet: each dead actor's
    /// thread is replaced, every survivor's channel to it is rewired, and
    /// the parameter/state buffers the driver holds resident copies of
    /// (from [`Runtime::place_params`] / [`Runtime::place_buffers`]) are
    /// re-placed on the replacements.
    ///
    /// Values updated in place by optimizer tasks since their placement
    /// are *not* recovered from here — `raxpp-core`'s trainer restores
    /// its own post-step snapshot on top to resume bitwise-identically.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if re-placement on a respawned actor
    /// fails.
    pub fn recover(&self) -> Result<RecoveryReport, RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let n = inner.actors.len();
        let mut report = RecoveryReport::default();
        // Heal the wire first: clear driver-side heartbeat suspicion
        // and every survivor's chaos state (partitions, pending
        // drops/delays). A heal that cannot be delivered reveals a dead
        // survivor before the respawn scan below.
        inner.transport.heal_wire();
        for a in 0..n {
            if inner.retired[a] || inner.actors[a].dead {
                continue;
            }
            if inner.actors[a].cmd.send(Command::HealWire).is_err() {
                inner.actors[a].dead = true;
            }
        }
        let dead: Vec<usize> = (0..n)
            .filter(|&a| {
                if inner.retired[a] {
                    return false;
                }
                let gone = match inner.actors[a].handle.as_ref() {
                    Some(h) => h.is_finished(),
                    // Process backend: no thread handle; ask the child.
                    None => inner.transport.finished(a),
                };
                inner.actors[a].dead || gone
            })
            .collect();
        for &a in &dead {
            // Respawn before joining the old thread: on socket
            // transports the respawn severs the old endpoint, which is
            // what unblocks an old thread the driver declared dead
            // while it was still wedged in a receive.
            let old = inner.actors[a].handle.take();
            let lane = self.hub.as_ref().map(|h| h.ctx_for(a));
            let link = inner
                .transport
                .spawn_actor(a, &inner.program, self.origin, lane);
            if let Some(h) = old {
                let _ = h.join();
            }
            inner.actors[a] = link;
            report.respawned.push(a);
        }
        // Process workers come back with the original (recompiled)
        // program; replay the rebalance history so they converge on the
        // driver's current program.
        if inner.transport.needs_program_replay() && !inner.assign_history.is_empty() {
            for &a in &dead {
                for assign in &inner.assign_history {
                    if inner.actors[a]
                        .cmd
                        .send(Command::Reprogram {
                            assign: assign.clone(),
                        })
                        .is_err()
                    {
                        inner.actors[a].dead = true;
                        break;
                    }
                }
            }
        }
        report.respawned.sort_unstable();
        // Drop collective-group slots poisoned by the incident: groups
        // whose membership includes retired actors are never used again
        // (remapped programs reference survivor groups only), and live
        // groups may hold contributions staged during the aborted epoch.
        if let Some(h) = &self.hub {
            h.gc(&inner.retired, inner.seq + 1);
        }
        // Re-place the driver-held resident copies on the replacements.
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> = (0..n).map(|_| Vec::new()).collect();
        for (&(a, buf), t) in &inner.resident {
            if report.respawned.contains(&a) {
                per_actor[a].push((buf, t.clone()));
                report.replaced_buffers += 1;
            }
        }
        self.place(inner, per_actor, false)?;
        Ok(report)
    }

    /// Permanently folds the given actors' pipeline stages onto the
    /// nearest surviving actors (elastic degraded mode).
    ///
    /// The running [`MpmdProgram`] is re-placed via
    /// [`raxpp_taskgraph::replace_program`]: every `Run` instruction is
    /// kept byte-identical (so training remains bitwise-deterministic),
    /// co-located sends/recvs collapse to local moves, and cross-actor
    /// transfers are rewired to the new owners. The folded actors are
    /// shut down and marked *retired* — they are never respawned, and
    /// [`Runtime::recover`] skips them from then on. Driver-held
    /// resident copies (params/state) that lived on a retired actor are
    /// migrated to its replacement.
    ///
    /// Call [`Runtime::recover`] afterwards to respawn any survivor
    /// that died in the same incident; the caller (e.g. `raxpp-core`'s
    /// trainer) is responsible for restoring optimizer-updated values
    /// from its own snapshot on top.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadInput`] for out-of-range or
    /// already-retired actor ids, and [`RuntimeError::Rebalance`] when
    /// no survivor remains or the program cannot be re-placed (the
    /// fleet is left untouched in that case).
    pub fn rebalance(&self, dead: &[usize]) -> Result<RebalanceReport, RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.actors.len();
        for &d in dead {
            if d >= n {
                return Err(RuntimeError::BadInput(format!("unknown actor {d}")));
            }
            if inner.retired[d] {
                return Err(RuntimeError::BadInput(format!("actor {d} already retired")));
            }
        }
        let mut retired: Vec<usize> = dead.to_vec();
        retired.sort_unstable();
        retired.dedup();
        let mut assign: Vec<usize> = (0..n).collect();
        if retired.is_empty() {
            return Ok(RebalanceReport {
                retired,
                assign,
                migrated_buffers: 0,
            });
        }
        // Folds happen at *host* granularity: a host is one pipeline
        // position together with all of its TP ranks and DP replicas.
        // Losing any raw actor retires the whole host everywhere —
        // identically in every replica, rank-preservingly within each
        // TP lane group — so collective memberships stay aligned across
        // ranks and replicas after the fold ({h·t+r} → {s·t+r} in every
        // replica block).
        let (t, base, replicas) = {
            let p = &inner.program;
            let t = p.tp.as_ref().map_or(1, |m| m.degree.max(1));
            let base = p.dp.map_or(n, |m| m.base_actors);
            let replicas = p.dp.map_or(1, |m| m.replicas.max(1));
            (t, base, replicas)
        };
        let hosts = base / t;
        let mut dead_hosts: Vec<usize> = retired.iter().map(|&d| (d % base) / t).collect();
        dead_hosts.sort_unstable();
        dead_hosts.dedup();
        let host_alive = |h: usize| {
            !dead_hosts.contains(&h)
                && (0..replicas).all(|rep| (0..t).all(|r| !inner.retired[rep * base + h * t + r]))
        };
        let alive_hosts: Vec<usize> = (0..hosts).filter(|&h| host_alive(h)).collect();
        if alive_hosts.is_empty() {
            return Err(RuntimeError::Rebalance("no surviving actors".into()));
        }
        retired.clear();
        for &h in &dead_hosts {
            // Nearest surviving host by pipeline distance; ties go to
            // the lower index so the mapping is deterministic.
            let s = alive_hosts
                .iter()
                .copied()
                .min_by_key(|&s| (s.abs_diff(h), s))
                .expect("alive_hosts is non-empty");
            for rep in 0..replicas {
                for r in 0..t {
                    assign[rep * base + h * t + r] = rep * base + s * t + r;
                    retired.push(rep * base + h * t + r);
                }
            }
        }
        retired.sort_unstable();
        let new_program = replace_program(&inner.program, &assign)
            .map_err(|e| RuntimeError::Rebalance(e.to_string()))?;
        // Point of no return: retire the folded actors.
        for &d in &retired {
            let _ = inner.actors[d].cmd.send(Command::Shutdown);
            if let Some(h) = inner.actors[d].handle.take() {
                let _ = h.join();
            }
            inner.actors[d].dead = true;
            inner.retired[d] = true;
        }
        // GC collective-group slots now referencing retired members —
        // the remapped program never rendezvouses on those memberships
        // again, so without this their staged tensors leak for the
        // lifetime of the run.
        if let Some(h) = &self.hub {
            h.gc(&inner.retired, inner.seq + 1);
        }
        inner.program = Arc::new(new_program);
        inner.assign_history.push(assign.clone());
        for a in 0..n {
            if inner.retired[a] {
                continue;
            }
            if inner.actors[a]
                .cmd
                .send(Command::Reprogram {
                    assign: assign.clone(),
                })
                .is_err()
            {
                // A dead survivor: recover() respawns it with the new
                // program straight from `inner.program` (process
                // workers replay the assign history instead).
                inner.actors[a].dead = true;
            }
        }
        // Migrate driver-held resident copies off the retired actors.
        let moved: Vec<((usize, BufferId), Tensor)> = inner
            .resident
            .iter()
            .filter(|((a, _), _)| retired.contains(a))
            .map(|(k, t)| (*k, t.clone()))
            .collect();
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> = (0..n).map(|_| Vec::new()).collect();
        let mut migrated = 0usize;
        for ((a, buf), t) in moved {
            inner.resident.remove(&(a, buf));
            let host = assign[a];
            inner.resident.insert((host, buf), t.clone());
            per_actor[host].push((buf, t));
            migrated += 1;
        }
        if let Err(e) = self.place(&mut inner, per_actor, false) {
            // A dead survivor is tolerable here: the migrated copies are
            // already recorded in `resident`, so recover() re-places
            // them when it respawns the host.
            if !matches!(e, RuntimeError::ActorDied { .. }) {
                return Err(e);
            }
        }
        Ok(RebalanceReport {
            retired,
            assign,
            migrated_buffers: migrated,
        })
    }

    fn place(
        &self,
        inner: &mut Inner,
        per_actor: Vec<Vec<(BufferId, Tensor)>>,
        record_resident: bool,
    ) -> Result<(), RuntimeError> {
        inner.seq += 1;
        let seq = inner.seq;
        let mut dispatched = vec![false; per_actor.len()];
        let mut first_err: Option<RuntimeError> = None;
        for (a, bufs) in per_actor.iter().enumerate() {
            if bufs.is_empty() {
                continue;
            }
            if inner.actors[a].dead {
                first_err.get_or_insert(RuntimeError::ActorDied { actor: a });
                continue;
            }
            let cmd = Command::Place {
                seq,
                bufs: bufs.clone(),
            };
            if inner.actors[a].cmd.send(cmd).is_err() {
                inner.actors[a].dead = true;
                first_err.get_or_insert(RuntimeError::ActorDied { actor: a });
                continue;
            }
            dispatched[a] = true;
        }
        // Collect every dispatched reply — also on the error path — so
        // the reply channels stay synchronized.
        for (a, bufs) in per_actor.iter().enumerate() {
            if !dispatched[a] {
                continue;
            }
            match recv_reply(&inner.actors[a], a, seq, self.timeout()) {
                Ok(ReplyKind::Placed) => {
                    if record_resident {
                        for (b, t) in bufs {
                            inner.resident.insert((a, *b), t.clone());
                        }
                    }
                }
                Ok(_) => {
                    first_err.get_or_insert(RuntimeError::Exec {
                        actor: a,
                        message: "protocol error: unexpected reply kind".into(),
                    });
                }
                Err(e) => {
                    if matches!(e, RuntimeError::ActorDied { .. }) {
                        inner.actors[a].dead = true;
                    }
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Drains stale replies until the one matching `seq` arrives.
fn recv_reply(
    link: &ActorLink,
    actor: usize,
    seq: u64,
    timeout: Duration,
) -> Result<ReplyKind, RuntimeError> {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match link.reply.recv_timeout(remaining) {
            Ok(r) if r.seq == seq => return Ok(r.kind),
            Ok(r) if r.seq < seq => continue, // stale reply from an aborted command
            Ok(_) => {
                return Err(RuntimeError::Exec {
                    actor,
                    message: "protocol error: reply from the future".into(),
                })
            }
            Err(RecvTimeoutError::Timeout) => return Err(RuntimeError::Timeout { actor }),
            Err(RecvTimeoutError::Disconnected) => return Err(RuntimeError::ActorDied { actor }),
        }
    }
}

/// Sends a driver-originated abort for `epoch` to every actor inbox.
fn broadcast_driver_abort(inner: &Inner, epoch: Epoch, reason: &str) {
    inner.transport.broadcast_abort(epoch, reason);
}

/// Maps one step's per-actor outcomes to the root-cause error, if any.
/// Priority: a genuine task error, then a death, then a timeout, then a
/// pure abort cascade (possible only transiently).
fn step_error(
    fatal: &[Option<RuntimeError>],
    outcome: &[Option<Result<ActorProfile, ExecFailure>>],
) -> Option<RuntimeError> {
    let mut died = None;
    let mut timeout = None;
    let mut cascade = None;
    for (a, f) in fatal.iter().enumerate() {
        match f {
            Some(RuntimeError::ActorDied { .. }) => {
                died.get_or_insert(RuntimeError::ActorDied { actor: a });
            }
            Some(RuntimeError::Timeout { .. }) => {
                timeout.get_or_insert(RuntimeError::Timeout { actor: a });
            }
            Some(e) => {
                died.get_or_insert(e.clone());
            }
            None => {}
        }
    }
    for (a, r) in outcome.iter().enumerate() {
        match r {
            Some(Err(ExecFailure::Error(message))) => {
                return Some(RuntimeError::Exec {
                    actor: a,
                    message: message.clone(),
                });
            }
            Some(Err(ExecFailure::Aborted { by, reason })) => {
                cascade.get_or_insert(if *by == DRIVER {
                    RuntimeError::Exec {
                        actor: a,
                        message: reason.clone(),
                    }
                } else {
                    RuntimeError::Exec {
                        actor: *by,
                        message: reason.clone(),
                    }
                });
            }
            _ => {}
        }
    }
    died.or(timeout).or(cascade)
}

impl Drop for Runtime {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().unwrap();
        for link in &inner.actors {
            if link.dead {
                continue; // nothing to shut down; avoid a doomed dial
            }
            let _ = link.cmd.send(Command::Shutdown);
        }
        // Wake any actor still parked in a Recv from a timed-out step so
        // it can reach the Shutdown command: epoch MAX outranks every
        // current epoch.
        broadcast_driver_abort(&inner, u64::MAX, "runtime shutdown");
        for link in &mut inner.actors {
            if let Some(h) = link.handle.take() {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Actor side
// ---------------------------------------------------------------------

/// Per-peer FIFO demultiplexer over the actor's single inbox. Queues
/// hold data that arrived from other peers while a `Recv` waited on a
/// specific one; aborts are surfaced immediately, stale epochs dropped.
struct Mailbox {
    rx: Receiver<Msg>,
    queues: Vec<VecDeque<(Epoch, BufferId, Tensor, SendToken)>>,
    /// An abort observed for an epoch not yet abandoned.
    pending_abort: Option<(Epoch, usize, String)>,
}

impl Mailbox {
    fn new(n: usize, rx: Receiver<Msg>) -> Mailbox {
        Mailbox {
            rx,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            pending_abort: None,
        }
    }

    /// Drops everything belonging to epochs before `epoch` — called at
    /// the start of each Execute so an aborted step's leftovers can
    /// never be matched against this step's Recvs.
    fn purge_stale(&mut self, epoch: Epoch) {
        if matches!(self.pending_abort, Some((e, _, _)) if e < epoch) {
            self.pending_abort = None;
        }
        for q in &mut self.queues {
            q.retain(|(e, _, _, _)| *e >= epoch);
        }
        while let Ok(msg) = self.rx.try_recv() {
            self.intake(msg, epoch);
        }
    }

    fn intake(&mut self, msg: Msg, epoch: Epoch) {
        if msg.epoch < epoch {
            return; // stale: from an aborted earlier step
        }
        match msg.payload {
            Payload::Abort(reason) => {
                if self.pending_abort.is_none() {
                    self.pending_abort = Some((msg.epoch, msg.from, reason));
                }
            }
            Payload::Data(buf, t, token) => {
                self.queues[msg.from].push_back((msg.epoch, buf, t, token));
            }
        }
    }

    /// Non-blocking abort probe for lane-rendezvous waits: drains
    /// whatever sits in the inbox and reports an abort at `epoch` or
    /// later without consuming it (the abort stays pending so a
    /// subsequent `Recv`/`recv_from` observes it too). Data messages
    /// are stashed in the per-peer queues as usual.
    fn poll_abort(&mut self, epoch: Epoch) -> Option<(usize, String)> {
        while let Ok(msg) = self.rx.try_recv() {
            self.intake(msg, epoch);
        }
        match &self.pending_abort {
            Some((e, by, reason)) if *e >= epoch => Some((*by, reason.clone())),
            _ => None,
        }
    }

    /// Receives the next current-epoch data message from `from`,
    /// stashing messages from other peers. Any abort for this epoch (or
    /// a later one — the shutdown poison uses `u64::MAX`) ends the wait.
    fn recv_from(
        &mut self,
        from: usize,
        epoch: Epoch,
    ) -> Result<(BufferId, Tensor, SendToken), (usize, String)> {
        loop {
            if let Some((e, by, reason)) = &self.pending_abort {
                if *e >= epoch {
                    return Err((*by, reason.clone()));
                }
                self.pending_abort = None;
            }
            while let Some((e, buf, t, token)) = self.queues[from].pop_front() {
                if e < epoch {
                    continue; // stale
                }
                return Ok((buf, t, token));
            }
            match self.rx.recv() {
                Ok(msg) => {
                    if msg.epoch < epoch {
                        continue;
                    }
                    match msg.payload {
                        Payload::Abort(reason) => return Err((msg.from, reason)),
                        Payload::Data(buf, t, token) if msg.from == from => {
                            return Ok((buf, t, token))
                        }
                        Payload::Data(buf, t, token) => {
                            self.queues[msg.from].push_back((msg.epoch, buf, t, token));
                        }
                    }
                }
                // Every peer and the driver dropped their senders: the
                // runtime is gone.
                Err(_) => return Err((DRIVER, "inbox closed".to_string())),
            }
        }
    }
}

struct ActorState {
    me: usize,
    program: Arc<MpmdProgram>,
    store: ObjectStore,
    mailbox: Mailbox,
    /// This actor's handle on the data fabric: the shared sender row
    /// in process, or the actor's socket endpoint on the wire.
    fabric: Fabric,
    /// Epoch of the stream currently (or last) executed.
    epoch: Epoch,
    /// Armed one-shot faults, consumed front-to-back as they trigger.
    faults: VecDeque<Fault>,
    /// The runtime-wide zero point for span timestamps.
    origin: Instant,
    /// This actor's lane-group handle when the program is
    /// tensor-parallel (`None` otherwise).
    lane: Option<LaneCtx>,
    /// Lane mode latched from the current `Execute` command.
    lanes_on: bool,
}

impl ActorState {
    /// Poisons every peer's inbox for `epoch` (§4.1-style abort
    /// broadcast). Safe to call more than once; receivers drop
    /// duplicates as stale after the epoch advances.
    fn broadcast_abort(&self, epoch: Epoch, reason: &str) {
        for j in 0..self.fabric.n() {
            if j == self.me {
                continue;
            }
            let _ = self.fabric.send(
                j,
                Msg {
                    from: self.me,
                    epoch,
                    payload: Payload::Abort(reason.to_string()),
                },
            );
        }
    }
}

pub(crate) enum Exit {
    /// Orderly shutdown: no poison needed.
    Clean,
    /// The actor "crashed" (injected death): poison the fleet on the way
    /// out.
    Died,
    /// kill -9: the actor vanishes with *no* poison and no goodbye —
    /// peers and the driver must discover the death through closed
    /// connections (or heartbeat silence) alone. On the process
    /// backend the worker process aborts.
    Killed,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn actor_main(
    me: usize,
    program: Arc<MpmdProgram>,
    cmd: Receiver<Command>,
    reply: ReplyPort,
    fabric: Fabric,
    inbox: Receiver<Msg>,
    origin: Instant,
    lane: Option<LaneCtx>,
) -> Exit {
    let n = fabric.n();
    let mut st = ActorState {
        me,
        program,
        store: ObjectStore::new(),
        mailbox: Mailbox::new(n, inbox),
        fabric,
        epoch: 0,
        faults: VecDeque::new(),
        origin,
        lane,
        lanes_on: false,
    };
    // The death guard: any exit that is not an orderly shutdown — an
    // injected death or a panic in actor code — broadcasts an abort for
    // the epoch in flight, so no peer blocks forever on this actor. This
    // is the thread-scale stand-in for Ray's actor-death notifications.
    // A *kill* deliberately skips the guard: SIGKILL leaves no time for
    // goodbyes, and the bounded-time claim must hold without them.
    let exit = std::panic::catch_unwind(AssertUnwindSafe(|| actor_loop(&mut st, &cmd, &reply)));
    let poison_group = |reason: &str| {
        // Group peers may be parked on a group condvar (not the
        // mailbox), so the death poison must reach both.
        if let Some(l) = &st.lane {
            l.hub.poison_actor(me, st.epoch, me, reason);
        }
    };
    let exit = match exit {
        Ok(Exit::Clean) => Exit::Clean,
        Ok(Exit::Killed) => Exit::Killed,
        Ok(Exit::Died) => {
            let reason = format!("actor {me} died");
            poison_group(&reason);
            st.broadcast_abort(st.epoch, &reason);
            Exit::Died
        }
        Err(_) => {
            let reason = format!("actor {me} panicked");
            poison_group(&reason);
            st.broadcast_abort(st.epoch, &reason);
            Exit::Died
        }
    };
    // On a socket fabric, tear the endpoint down on *every* exit: this
    // closes the reply link (the driver's death signal) and errors
    // peers' cached data links. No-op in process. Must come after the
    // death broadcast above so the poison gets out first.
    st.fabric.sever();
    // Dropping `reply` (mpsc) tells the driver this actor is gone.
    exit
}

fn actor_loop(st: &mut ActorState, cmd: &Receiver<Command>, reply: &ReplyPort) -> Exit {
    while let Ok(c) = cmd.recv() {
        match c {
            Command::Place { seq, bufs } => {
                // Command boundary: every legitimately outstanding send
                // of previous steps has been consumed (the driver
                // collects all replies before the next command), so any
                // incomplete token belongs to an aborted epoch whose
                // receiver will never complete it. Reclaim now, before
                // this placement re-inserts buffer ids that may still sit
                // parked in the deferred-deletion list — otherwise their
                // bytes are double-counted in live/peak accounting.
                st.store.abandon_outstanding_sends();
                for (b, t) in bufs {
                    st.store.insert(b, t);
                }
                if reply
                    .send(Reply {
                        seq,
                        kind: ReplyKind::Placed,
                    })
                    .is_err()
                {
                    return Exit::Clean;
                }
            }
            Command::Execute { seq, traced, lanes } => {
                // Same boundary reclaim as Place: an actor whose stream
                // tail had no Recvs can survive a peer's abort without
                // ever observing it, replying Ok while holding ghost
                // parked buffers from the aborted epoch. Those ids are
                // re-inserted by this very step, double-counting their
                // bytes until reclaimed here.
                st.store.abandon_outstanding_sends();
                st.epoch = seq;
                st.lanes_on = lanes && st.lane.is_some();
                st.mailbox.purge_stale(seq);
                if let Some(l) = &st.lane {
                    // Retire the previous epoch's rendezvous slots and
                    // poison in every group this actor belongs to,
                    // before any member can touch this epoch's.
                    l.hub.begin_epoch_actor(st.me, seq);
                }
                let mut ring = traced.then(|| SpanRing::new(DEFAULT_SPAN_CAPACITY));
                let result = match execute_stream(st, &mut ring) {
                    Ok(profile) => Ok(profile),
                    Err(StreamFailure::Die) => return Exit::Died,
                    Err(StreamFailure::Killed) => return Exit::Killed,
                    Err(StreamFailure::Error(message)) => {
                        if let Some(l) = &st.lane {
                            l.hub.poison_actor(st.me, seq, st.me, &message);
                        }
                        st.broadcast_abort(seq, &message);
                        st.store.abandon_outstanding_sends();
                        Err(ExecFailure::Error(message))
                    }
                    Err(StreamFailure::Aborted { by, reason }) => {
                        if let Some(l) = &st.lane {
                            // Cascade: group peers parked on a condvar
                            // can't see the mailbox abort that woke us.
                            l.hub.poison_actor(st.me, seq, by, &reason);
                        }
                        st.store.abandon_outstanding_sends();
                        Err(ExecFailure::Aborted { by, reason })
                    }
                };
                let trace = ring.take().map(|r| r.into_trace(st.me));
                if reply
                    .send(Reply {
                        seq,
                        kind: ReplyKind::Executed(Box::new(ExecOutcome { result, trace })),
                    })
                    .is_err()
                {
                    return Exit::Clean;
                }
            }
            Command::Fetch { seq, bufs } => {
                let r: Result<Vec<Tensor>, String> = bufs
                    .iter()
                    .map(|b| {
                        st.store
                            .get(*b)
                            .cloned()
                            .ok_or_else(|| format!("missing buffer {b}"))
                    })
                    .collect();
                if reply
                    .send(Reply {
                        seq,
                        kind: ReplyKind::Fetched(r),
                    })
                    .is_err()
                {
                    return Exit::Clean;
                }
            }
            Command::Read { seq, buf } => {
                let r = st
                    .store
                    .get(buf)
                    .cloned()
                    .ok_or_else(|| format!("missing buffer {buf}"));
                if reply
                    .send(Reply {
                        seq,
                        kind: ReplyKind::Read(r),
                    })
                    .is_err()
                {
                    return Exit::Clean;
                }
            }
            Command::PeakBytes { seq } => {
                if reply
                    .send(Reply {
                        seq,
                        kind: ReplyKind::PeakBytes(st.store.peak_bytes()),
                    })
                    .is_err()
                {
                    return Exit::Clean;
                }
            }
            Command::LiveBytes { seq } => {
                // A deletion point (§4.3): reclaim parked deletions whose
                // sends have since completed, so the answer reflects what
                // is genuinely resident rather than reclaim lag.
                st.store.drain_pending();
                if reply
                    .send(Reply {
                        seq,
                        kind: ReplyKind::LiveBytes(st.store.live_bytes()),
                    })
                    .is_err()
                {
                    return Exit::Clean;
                }
            }
            Command::Reprogram { assign } => {
                // Deterministic re-derivation of the driver's rebalanced
                // program: same inputs, same `replace_program`, same
                // result. A failure here is a protocol bug; the panic
                // trips the death guard and recovery takes over.
                let p = replace_program(&st.program, &assign)
                    .expect("Reprogram assignment must re-place the current program");
                st.program = Arc::new(p);
            }
            Command::HealWire => st.fabric.heal(),
            Command::InjectFault(Fault::DieNow) => return Exit::Died,
            Command::InjectFault(Fault::KillNow) => return Exit::Killed,
            Command::InjectFault(
                f @ (Fault::DropLink { .. } | Fault::DelayLink { .. } | Fault::Partition { .. }),
            ) => st.fabric.inject(&f),
            Command::InjectFault(f) => st.faults.push_back(f),
            Command::Shutdown => return Exit::Clean,
        }
    }
    Exit::Clean
}

fn label_kind(label: &raxpp_taskgraph::TaskLabel) -> &'static str {
    use raxpp_taskgraph::TaskLabel;
    match label {
        TaskLabel::Fwd { .. } => "fwd",
        TaskLabel::Bwd { .. } => "bwd",
        TaskLabel::BwdW { .. } => "bwdw",
        TaskLabel::AccumGrad { .. } => "accum_grad",
        TaskLabel::CotangentSum { .. } => "ct_sum",
        TaskLabel::GradReduce { .. } => "grad_reduce",
        TaskLabel::Update { .. } => "update",
    }
}

enum StreamFailure {
    /// A genuine error on this actor.
    Error(String),
    /// A peer (or the driver) poisoned the epoch.
    Aborted { by: usize, reason: String },
    /// Injected death: the thread must exit (with an abort broadcast).
    Die,
    /// Injected kill -9: the actor must vanish with no broadcast.
    Killed,
}

/// Consults the front armed fault before instruction `idx` runs. Faults
/// are one-shot: the one that fires is popped; later injections stay
/// armed for later executions.
fn check_fault(st: &mut ActorState, idx: usize, instr: &Instr) -> Result<(), StreamFailure> {
    let fire = match st.faults.front() {
        Some(Fault::DieAtInstr(at))
        | Some(Fault::ErrorAtInstr(at))
        | Some(Fault::KillAtInstr(at)) => *at == idx,
        Some(Fault::ErrorAtTask(s)) => {
            matches!(instr, Instr::Run { label, .. } if format!("{label}").contains(s.as_str()))
        }
        _ => false,
    };
    if !fire {
        return Ok(());
    }
    match st.faults.pop_front() {
        Some(Fault::DieAtInstr(_)) => Err(StreamFailure::Die),
        Some(Fault::KillAtInstr(_)) => Err(StreamFailure::Killed),
        Some(Fault::ErrorAtInstr(at)) => Err(StreamFailure::Error(format!(
            "injected fault at instruction {at}"
        ))),
        Some(Fault::ErrorAtTask(s)) => Err(StreamFailure::Error(format!(
            "injected fault at task matching {s:?}"
        ))),
        _ => Ok(()),
    }
}

/// How long a lane parks on the group condvar between abort probes.
const LANE_POLL: Duration = Duration::from_millis(1);

/// Parks the calling lane until `check` yields a value. Wakes on group
/// notifications and honours the group poison; also polls the actor
/// mailbox so aborts originating outside the lane group (driver
/// timeout poison, a non-lane peer's failure) bound the wait — those
/// are echoed into the group poison so condvar-parked peers fail fast
/// too.
fn lane_wait<T>(
    mailbox: &mut Mailbox,
    group: &LaneGroup,
    epoch: Epoch,
    mut check: impl FnMut(&mut GroupState) -> Option<T>,
) -> Result<T, StreamFailure> {
    let mut guard = group.state.lock().unwrap();
    loop {
        if let Some((e, by, reason)) = &guard.poison {
            if *e >= epoch {
                return Err(StreamFailure::Aborted {
                    by: *by,
                    reason: reason.clone(),
                });
            }
        }
        if let Some(v) = check(&mut guard) {
            return Ok(v);
        }
        let (g, _) = group.cv.wait_timeout(guard, LANE_POLL).unwrap();
        guard = g;
        if let Some((by, reason)) = mailbox.poll_abort(epoch) {
            drop(guard);
            group.poison(epoch, by, &reason);
            return Err(StreamFailure::Aborted { by, reason });
        }
    }
}

/// Maps each `Run` output position to the stream index of the
/// collective in the directly following collective bucket that consumes
/// it as `src` (`None` for positions feeding no collective). The scan
/// skips `Free` instructions — a buffer consumed by a collective is
/// freed *after* it, so an intervening free can never invalidate a
/// bucket member — and stops at the first compute/transport
/// instruction, which could redefine buffers. Returns `None` when no
/// output feeds a collective — the common case, skipping observer
/// setup entirely.
fn collective_targets(
    stream: &[Instr],
    idx: usize,
    outputs: &[BufferId],
) -> Option<Vec<Option<u32>>> {
    let mut targets: Vec<Option<u32>> = vec![None; outputs.len()];
    let mut any = false;
    for (j, next) in stream.iter().enumerate().skip(idx + 1) {
        let src = match next {
            Instr::Collective { src, .. } => src,
            Instr::Free { .. } => continue,
            _ => break,
        };
        if let Some(pos) = outputs.iter().position(|b| b == src) {
            if targets[pos].is_none() {
                targets[pos] = Some(j as u32);
                any = true;
            }
        }
    }
    any.then_some(targets)
}

/// One resolved panel-streaming target: the following collective's
/// stream index plus this actor's group handle and rank within it.
struct ObsTarget {
    coll: u32,
    group: Arc<LaneGroup>,
    rank: usize,
}

/// Resolves [`collective_targets`] stream indices to their membership
/// groups (TP lane groups and DP replica groups alike), so the panel
/// stager publishes into the rendezvous the consuming collective will
/// actually use.
fn resolve_targets(
    l: &LaneCtx,
    me: usize,
    stream: &[Instr],
    targets: Vec<Option<u32>>,
) -> Vec<Option<ObsTarget>> {
    targets
        .into_iter()
        .map(|t| {
            t.and_then(|coll| match &stream[coll as usize] {
                Instr::Collective { group, .. } => {
                    let rank = group.iter().position(|&m| m == me)?;
                    Some(ObsTarget {
                        coll,
                        group: l.hub.group(group),
                        rank,
                    })
                }
                _ => None,
            })
        })
        .collect()
}

/// Streams completed matmul row panels into the collective rendezvous
/// as staged contributions — the communication half of
/// compute/communication overlap. Peers waiting on the collective can
/// assemble as soon as the last panel lands, while this member is still
/// computing its remaining outputs.
struct LaneObserver {
    epoch: Epoch,
    /// Run output position → resolved following-collective target.
    targets: Vec<Option<ObsTarget>>,
    /// Bytes published panel-wise (feeds `ActorProfile::bytes_overlap`).
    bytes: u64,
}

impl PanelObserver for LaneObserver {
    fn wants(&mut self, out_idx: usize) -> bool {
        matches!(self.targets.get(out_idx), Some(Some(_)))
    }

    fn begin(&mut self, out_idx: usize, shape: &Shape) {
        let Some(Some(t)) = self.targets.get(out_idx) else {
            return;
        };
        let key = (self.epoch, t.coll);
        let degree = t.group.degree;
        let mut s = t.group.state.lock().unwrap();
        let slot = s.coll_slot(key, degree);
        if slot.parts[t.rank].is_none() {
            slot.parts[t.rank] = Some(Contribution::Staging {
                shape: shape.clone(),
                buf: vec![0.0; shape.numel()],
                filled: 0,
            });
        }
    }

    fn publish(&mut self, out_idx: usize, row0: usize, row_len: usize, data: &[f32]) {
        let Some(Some(t)) = self.targets.get(out_idx) else {
            return;
        };
        let key = (self.epoch, t.coll);
        let degree = t.group.degree;
        let mut s = t.group.state.lock().unwrap();
        let slot = s.coll_slot(key, degree);
        let part = &mut slot.parts[t.rank];
        let complete = match part {
            Some(Contribution::Staging { buf, filled, .. }) => {
                let off = row0 * row_len;
                buf[off..off + data.len()].copy_from_slice(data);
                *filled += data.len();
                *filled == buf.len()
            }
            // A `Ready` part (or none) means this output isn't staging
            // (e.g. a later duplicate publish after completion): ignore.
            _ => false,
        };
        self.bytes += 4 * data.len() as u64;
        if complete {
            if let Some(Contribution::Staging { shape, buf, .. }) = part.take() {
                let tensor = Tensor::from_vec(shape, buf).expect("staged panels cover the shape");
                *part = Some(Contribution::Ready(tensor));
            }
            drop(s);
            t.group.cv.notify_all();
        }
    }
}

/// Block assembly for disjoint `-0.0`-padded all-reduce contributions:
/// bitwise-equal to the legacy rank-ascending fold because
/// `x + (-0.0) == x` *bit for bit* for every finite or infinite `f32`
/// (including both zeros, under round-to-nearest), so summing the
/// padded tensors equals copying each rank's own block into place.
fn assemble_disjoint_blocks(parts: &[Tensor], dim: usize) -> Tensor {
    let t = parts.len();
    let shape = parts[0].shape().clone();
    let full = shape.dim(dim);
    let blk = full / t;
    let rows = shape.numel() / full.max(1);
    let mut out = vec![0.0f32; shape.numel()];
    for (r, p) in parts.iter().enumerate() {
        let data = p.data();
        debug_assert!(
            data.iter().enumerate().all(|(i, v)| {
                let col = i % full;
                (r * blk..(r + 1) * blk).contains(&col) || v.to_bits() == (-0.0f32).to_bits()
            }),
            "disjoint_reduce contribution padding is not -0.0"
        );
        for row in 0..rows {
            let off = row * full + r * blk;
            out[off..off + blk].copy_from_slice(&data[off..off + blk]);
        }
    }
    Tensor::from_vec(shape, out).expect("assembled buffer matches contribution shape")
}

/// Combines a lane group's contributions exactly as the legacy ring
/// combine does — rank-ascending concat for all-gather, rank-ascending
/// left-fold sum for the reduces — with a block-assembly fast path for
/// disjoint all-reduces (see [`assemble_disjoint_blocks`]). The
/// reduce-scatter's per-rank slice happens at the taker, not here.
fn combine_collective(
    kind: &CollectiveKind,
    dim: usize,
    parts: &[Tensor],
    disjoint: bool,
) -> Result<Tensor, String> {
    let t = parts.len();
    let shape = parts[0].shape();
    if let Some(p) = parts.iter().find(|p| p.shape() != shape) {
        return Err(format!(
            "collective contribution shape mismatch: {} vs {shape}",
            p.shape()
        ));
    }
    match kind {
        CollectiveKind::AllGather => {
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat(&refs, dim).map_err(|e| e.to_string())
        }
        CollectiveKind::AllReduce
            if disjoint
                && shape.rank() >= 1
                && dim == shape.rank() - 1
                && shape.dim(dim).is_multiple_of(t) =>
        {
            Ok(assemble_disjoint_blocks(parts, dim))
        }
        CollectiveKind::AllReduce | CollectiveKind::ReduceScatter => {
            let mut acc = parts[0].clone();
            for p in &parts[1..] {
                acc = acc.zip(p, |a, b| a + b).map_err(|e| e.to_string())?;
            }
            Ok(acc)
        }
    }
}

/// One collective through the in-actor group rendezvous: publish this
/// member's contribution (unless panel streaming already staged it),
/// wait for the group, and share a single assembly. Returns the
/// combined tensor (per-rank block for reduce-scatter), the
/// contribution element count, and the wait interval for profiling.
#[allow(clippy::too_many_arguments)]
fn lane_collective(
    st: &mut ActorState,
    group: &Arc<LaneGroup>,
    rank: usize,
    disjoint: bool,
    idx: usize,
    kind: &CollectiveKind,
    dst: BufferId,
    src: BufferId,
    dim: usize,
) -> Result<(Tensor, usize, Instant, Duration), StreamFailure> {
    let epoch = st.epoch;
    let t = group.degree;
    let key = (epoch, idx as u32);
    // The store lookup stays on the lane path too: a missing buffer is
    // the same programming error in either mode, and its numel feeds
    // the wire accounting.
    let own = st
        .store
        .get(src)
        .cloned()
        .ok_or_else(|| StreamFailure::Error(format!("collective of missing buffer {src}")))?;
    let numel = own.numel();
    {
        let mut s = group.state.lock().unwrap();
        let slot = s.coll_slot(key, t);
        if slot.meta.is_none() {
            slot.meta = Some((*kind, dim));
        }
        if slot.parts[rank].is_none() {
            slot.parts[rank] = Some(Contribution::Ready(own));
        }
        drop(s);
        group.cv.notify_all();
    }
    // Either a peer already assembled (take the shared result), or all
    // contributions are ready and assembly falls to this lane.
    enum Next {
        Done(Result<Tensor, String>),
        Assemble(Vec<Tensor>),
    }
    let wait_start = Instant::now();
    let next = lane_wait(&mut st.mailbox, group, epoch, |s| {
        let slot = s.coll_slot(key, t);
        if let Some(r) = &slot.assembled {
            slot.takers += 1;
            let r = r.clone();
            if slot.takers == t {
                s.colls.remove(&key);
            }
            return Some(Next::Done(r));
        }
        if !slot.assembling
            && slot
                .parts
                .iter()
                .all(|p| matches!(p, Some(Contribution::Ready(_))))
        {
            slot.assembling = true;
            let parts = slot
                .parts
                .iter()
                .map(|p| match p {
                    Some(Contribution::Ready(t)) => t.clone(),
                    _ => unreachable!("all parts checked Ready above"),
                })
                .collect();
            return Some(Next::Assemble(parts));
        }
        None
    })?;
    let wait = wait_start.elapsed();
    let full = match next {
        Next::Done(r) => r,
        Next::Assemble(parts) => {
            // Combine outside the lock (the heavy part), then share.
            let r = combine_collective(kind, dim, &parts, disjoint);
            let mut s = group.state.lock().unwrap();
            let slot = s.coll_slot(key, t);
            slot.assembled = Some(r.clone());
            slot.assembling = false;
            slot.takers += 1;
            if slot.takers == t {
                s.colls.remove(&key);
            }
            drop(s);
            group.cv.notify_all();
            r
        }
    }
    .map_err(|e| StreamFailure::Error(format!("{kind} {dst}: {e}")))?;
    // Reduce-scatter: every lane slices its own block of the shared
    // accumulator — exactly the legacy per-rank slice.
    let combined = if matches!(kind, CollectiveKind::ReduceScatter) {
        let blk = full.shape().dim(dim) / t;
        full.slice_dim(dim, rank * blk, blk)
            .map_err(|e| StreamFailure::Error(format!("{kind} {dst}: {e}")))?
    } else {
        full
    };
    Ok((combined, numel, wait_start, wait))
}

/// The serial-fallback collective: a ring exchange over the ordinary
/// message fabric — t-1 rounds in which rank i forwards the
/// contribution that originated at rank (i - round) mod t to rank i+1
/// and receives origin (i - round - 1) mod t from rank i-1. Messages
/// travel under the originator's wire id, so the §4.2 per-pair FIFO
/// matching-order discipline holds across back-to-back collectives, and
/// every message is epoch-tagged like any other send, so aborts and
/// stale drains work unchanged. This is the bitwise reference the lane
/// rendezvous must match.
#[allow(clippy::too_many_arguments)]
fn legacy_ring_collective(
    st: &mut ActorState,
    me: usize,
    epoch: Epoch,
    kind: &CollectiveKind,
    dst: BufferId,
    src: BufferId,
    group: &[usize],
    wires: &[BufferId],
    dim: usize,
    axis: CollectiveAxis,
    profile: &mut ActorProfile,
    traced: bool,
    span_name: &mut String,
    span_bytes: &mut u64,
) -> Result<(), StreamFailure> {
    let t = group.len();
    let rank = group.iter().position(|&g| g == me).ok_or_else(|| {
        StreamFailure::Error(format!("actor {me} not in collective group {group:?}"))
    })?;
    let own = st
        .store
        .get(src)
        .cloned()
        .ok_or_else(|| StreamFailure::Error(format!("collective of missing buffer {src}")))?;
    let contrib_shape = own.shape().clone();
    let mut parts: Vec<Option<Tensor>> = vec![None; t];
    parts[rank] = Some(own);
    let next = group[(rank + 1) % t];
    let prev = group[(rank + t - 1) % t];
    let mut ring_bytes = 0u64;
    for round in 0..t - 1 {
        let send_origin = (rank + t - round) % t;
        let outgoing = parts[send_origin]
            .clone()
            .expect("ring invariant: contribution present");
        st.fabric
            .send(
                next,
                Msg {
                    from: me,
                    epoch,
                    payload: Payload::Data(wires[send_origin], outgoing, SendToken::new()),
                },
            )
            .map_err(|_| StreamFailure::Aborted {
                by: next,
                reason: format!("actor {next} hung up"),
            })?;
        let recv_origin = (rank + t - round - 1) % t;
        let (id, incoming, token) = st
            .mailbox
            .recv_from(prev, epoch)
            .map_err(|(by, reason)| StreamFailure::Aborted { by, reason })?;
        if id != wires[recv_origin] {
            return Err(StreamFailure::Error(format!(
                "collective ring out of order: expected {}, got {id}",
                wires[recv_origin]
            )));
        }
        if incoming.shape() != &contrib_shape {
            return Err(StreamFailure::Error(format!(
                "collective contribution shape mismatch: {} vs {contrib_shape}",
                incoming.shape()
            )));
        }
        token.complete();
        ring_bytes += 4 * incoming.numel() as u64;
        parts[recv_origin] = Some(incoming);
    }
    // Local combine, identical on every rank: rank-ascending
    // concatenation or left-fold sum — no rank-dependent association, so
    // results are bitwise-identical across ranks and to the unsharded
    // program.
    let parts: Vec<Tensor> = parts.into_iter().map(Option::unwrap).collect();
    let refs: Vec<&Tensor> = parts.iter().collect();
    let combined = match kind {
        CollectiveKind::AllGather => Tensor::concat(&refs, dim),
        CollectiveKind::AllReduce | CollectiveKind::ReduceScatter => {
            let mut acc = parts[0].clone();
            let mut err = None;
            for p in &parts[1..] {
                match acc.zip(p, |a, b| a + b) {
                    Ok(s) => acc = s,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            match err {
                Some(e) => Err(e),
                None if matches!(kind, CollectiveKind::ReduceScatter) => {
                    let blk = acc.shape().dim(dim) / t;
                    acc.slice_dim(dim, rank * blk, blk)
                }
                None => Ok(acc),
            }
        }
    }
    .map_err(|e| StreamFailure::Error(format!("{kind} {dst}: {e}")))?;
    let wire = (t as u64 - 1) * 4 * contrib_shape.numel() as u64;
    match axis {
        CollectiveAxis::Tp => {
            profile.bytes_wire += wire;
            if !matches!(kind, CollectiveKind::AllGather) {
                profile.bytes_reduced += wire;
            }
        }
        CollectiveAxis::Dp => profile.dp_bytes_wire += wire,
    }
    if traced {
        *span_name = format!("{kind} {dst} (rank {rank}/{t})");
        *span_bytes = ring_bytes;
    }
    st.store.insert(dst, combined);
    Ok(())
}

fn execute_stream(
    st: &mut ActorState,
    ring: &mut Option<SpanRing>,
) -> Result<ActorProfile, StreamFailure> {
    let me = st.me;
    let epoch = st.epoch;
    let origin = st.origin;
    let traced = ring.is_some();
    let program = Arc::clone(&st.program);
    let mut profile = ActorProfile::default();
    // The lane context for this step (cheap Arc clones), present only
    // when the step was dispatched in lane mode.
    let lane = if st.lanes_on { st.lane.clone() } else { None };
    for (idx, instr) in program.actors[me].iter().enumerate() {
        check_fault(st, idx, instr)?;
        // Span bookkeeping lives behind `traced`: the untraced path pays
        // one branch per field, no formatting, no extra timestamps (the
        // `t0`/`elapsed` pair below predates tracing — it feeds
        // `ActorProfile`).
        let mut span_name = String::new();
        let mut span_bytes = 0u64;
        let mut span_alloc: Option<EvalStats> = None;
        let mut op_spans: Vec<SpanEvent> = Vec::new();
        let t0 = Instant::now();
        match instr {
            Instr::Run {
                jaxpr,
                inputs,
                outputs,
                label,
            } => {
                // Replicated-run dedup: a jaxpr replicated verbatim
                // across the lane group computes bit-identical outputs
                // on every rank from bit-identical replicated inputs,
                // so one lane executes it and the others adopt the
                // result (O(1) Arc handle clones; in-place stealing in
                // later runs is safe because every consumer holds store
                // clones, keeping shared buffers non-uniquely owned).
                let dedup = lane.as_ref().and_then(|l| {
                    if l.replicated.get(jaxpr.0 as usize).copied().unwrap_or(false) {
                        l.lane.as_ref().map(|(g, _)| g)
                    } else {
                        None
                    }
                });
                let key = (epoch, idx as u32);
                let mut adopted: Option<Vec<Tensor>> = None;
                if let Some(g) = dedup {
                    let claimed = {
                        let mut s = g.state.lock().unwrap();
                        match s.runs.entry(key) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(RunSlot::Claimed);
                                true
                            }
                            std::collections::hash_map::Entry::Occupied(_) => false,
                        }
                    };
                    if !claimed {
                        let degree = g.degree;
                        let outs =
                            lane_wait(&mut st.mailbox, g, epoch, |s| match s.runs.get_mut(&key) {
                                Some(RunSlot::Done { outs, takers }) => {
                                    *takers += 1;
                                    let o = outs.clone();
                                    if *takers == degree {
                                        s.runs.remove(&key);
                                    }
                                    Some(o)
                                }
                                _ => None,
                            })?;
                        adopted = Some(outs);
                    }
                }
                let outs = match adopted {
                    Some(outs) => outs,
                    None => {
                        // O(1) handle copies; the store keeps its
                        // references, so the interpreter can never
                        // mutate resident buffers.
                        let args: Vec<Tensor> = inputs
                            .iter()
                            .map(|b| {
                                st.store.get(*b).cloned().ok_or_else(|| {
                                    StreamFailure::Error(format!("{label}: missing input {b}"))
                                })
                            })
                            .collect::<Result<_, StreamFailure>>()?;
                        let graph = &program.jaxprs[jaxpr.0 as usize];
                        // Compute/communication overlap: outputs that
                        // feed the collective bucket directly after this
                        // Run stream their row panels into the
                        // rendezvous while the matmul is still running.
                        let mut observer = match &lane {
                            Some(l) if dedup.is_none() => {
                                collective_targets(&program.actors[me], idx, outputs).map(
                                    |targets| {
                                        let targets =
                                            resolve_targets(l, me, &program.actors[me], targets);
                                        LaneObserver {
                                            epoch,
                                            targets,
                                            bytes: 0,
                                        }
                                    },
                                )
                            }
                            _ => None,
                        };
                        let mut hook_fn;
                        let hook: Option<raxpp_ir::EvalHook<'_>> = if traced {
                            hook_fn = |_i: usize, name: &'static str, s: Instant, e: Instant| {
                                op_spans.push(SpanEvent {
                                    instr: idx as u32,
                                    kind: "op",
                                    name: name.to_string(),
                                    start_ns: s.saturating_duration_since(origin).as_nanos() as u64,
                                    dur_ns: e.saturating_duration_since(s).as_nanos() as u64,
                                    bytes: 0,
                                    alloc: None,
                                });
                            };
                            Some(&mut hook_fn)
                        } else {
                            None
                        };
                        let (outs, stats) = match observer.as_mut() {
                            Some(obs) => eval_with_stats_observed(
                                graph,
                                &args,
                                hook,
                                Some(obs as &mut dyn PanelObserver),
                            ),
                            None if traced => eval_with_stats_hooked(graph, &args, hook),
                            None => eval_with_stats(graph, &args),
                        }
                        .map_err(|e| StreamFailure::Error(format!("{label}: {e}")))?;
                        if let Some(obs) = &observer {
                            profile.bytes_overlap += obs.bytes;
                        }
                        profile.alloc.merge(&stats);
                        if traced {
                            span_alloc = Some(stats);
                        }
                        if let Some(g) = dedup {
                            let mut s = g.state.lock().unwrap();
                            s.runs.insert(
                                key,
                                RunSlot::Done {
                                    outs: outs.clone(),
                                    takers: 1,
                                },
                            );
                            drop(s);
                            g.cv.notify_all();
                        }
                        outs
                    }
                };
                if traced {
                    span_name = format!("{label}");
                }
                for (b, t) in outputs.iter().zip(outs) {
                    st.store.insert(*b, t);
                }
            }
            Instr::Send { buf, to } => {
                let t =
                    st.store.get(*buf).cloned().ok_or_else(|| {
                        StreamFailure::Error(format!("send of missing buffer {buf}"))
                    })?;
                if traced {
                    span_name = format!("send {buf} -> actor {to}");
                    span_bytes = 4 * t.numel() as u64;
                }
                let token = SendToken::new();
                st.store.record_send(*buf, token.clone());
                let wire_t0 = Instant::now();
                st.fabric
                    .send(
                        *to,
                        Msg {
                            from: me,
                            epoch,
                            payload: Payload::Data(*buf, t, token),
                        },
                    )
                    // A closed peer inbox means that actor is dead: this
                    // is a cascade of the peer's failure, not a genuine
                    // error on this actor.
                    .map_err(|_| StreamFailure::Aborted {
                        by: *to,
                        reason: format!("actor {to} hung up"),
                    })?;
                // On a socket fabric the send is a synchronous wire
                // write; record it as its own span so transport cost is
                // separable from store bookkeeping in the trace.
                if traced && st.fabric.is_wire() {
                    op_spans.push(SpanEvent {
                        instr: idx as u32,
                        kind: "wire",
                        name: format!("wire {buf} -> actor {to}"),
                        start_ns: wire_t0.saturating_duration_since(origin).as_nanos() as u64,
                        dur_ns: wire_t0.elapsed().as_nanos() as u64,
                        bytes: span_bytes,
                        alloc: None,
                    });
                }
            }
            Instr::Recv {
                buf,
                src,
                from,
                shape,
            } => {
                let (id, t, token) = st
                    .mailbox
                    .recv_from(*from, epoch)
                    .map_err(|(by, reason)| StreamFailure::Aborted { by, reason })?;
                if id != *src {
                    return Err(StreamFailure::Error(format!(
                        "out-of-order receive: expected {src}, got {id} (paper §4.2 \
                         ordering violated)"
                    )));
                }
                if t.shape() != shape {
                    return Err(StreamFailure::Error(format!(
                        "receive shape mismatch for {buf}: {} vs {shape}",
                        t.shape()
                    )));
                }
                token.complete();
                if traced {
                    span_name = format!("recv {buf} <- actor {from}");
                    span_bytes = 4 * t.numel() as u64;
                }
                st.store.insert(*buf, t);
            }
            Instr::Copy { dst, src } => {
                let t =
                    st.store.get(*src).cloned().ok_or_else(|| {
                        StreamFailure::Error(format!("copy of missing buffer {src}"))
                    })?;
                if traced {
                    span_name = format!("copy {src} -> {dst}");
                    span_bytes = 4 * t.numel() as u64;
                }
                st.store.insert(*dst, t);
            }
            Instr::Free { buf } => {
                if !st.store.free(*buf) {
                    return Err(StreamFailure::Error(format!(
                        "free of missing buffer {buf}"
                    )));
                }
                if traced {
                    span_name = format!("free {buf}");
                }
            }
            Instr::Collective {
                kind,
                dst,
                src,
                group,
                wires,
                dim,
                axis,
            } => {
                // Per-axis routing: DP all-reduces are true sums of
                // different per-replica contributions (batch sharding),
                // folded elementwise in pinned replica-ascending order —
                // never the disjoint-assembly fast path, which assumes
                // -0.0-padded non-overlapping blocks. TP consults the
                // program's TpMeta flag. Wait/wire metrics split by axis
                // so each mesh dimension is observable.
                let (disjoint, wait_kind) = match axis {
                    CollectiveAxis::Dp => (false, "dp_collective_wait"),
                    CollectiveAxis::Tp => (
                        lane.as_ref().map(|l| l.disjoint_reduce).unwrap_or(false),
                        "collective_wait",
                    ),
                };
                if let Some(l) = &lane {
                    // Group rendezvous: contributions meet in shared
                    // memory (possibly pre-staged panel-by-panel by the
                    // producing matmul), one member assembles, all
                    // members share the result — zero ring messages.
                    // The group is looked up by the instruction's exact
                    // membership, so TP lane groups, DP replica groups,
                    // and rebalance-folded groups all take this path.
                    let g = l.hub.group(group);
                    let rank = group.iter().position(|&m| m == me).ok_or_else(|| {
                        StreamFailure::Error(format!(
                            "actor {me} not in collective group {group:?}"
                        ))
                    })?;
                    let t = g.degree;
                    let (combined, contrib_numel, wait_start, wait_dur) =
                        lane_collective(st, &g, rank, disjoint, idx, kind, *dst, *src, *dim)?;
                    let wire = (t as u64 - 1) * 4 * contrib_numel as u64;
                    match axis {
                        CollectiveAxis::Tp => {
                            profile.bytes_wire += wire;
                            if !matches!(kind, CollectiveKind::AllGather) {
                                profile.bytes_reduced += wire;
                            }
                        }
                        CollectiveAxis::Dp => profile.dp_bytes_wire += wire,
                    }
                    profile.record(wait_kind, wait_dur);
                    if traced {
                        span_name = format!("{kind} {dst} (rank {rank}/{t})");
                        span_bytes = wire;
                        op_spans.push(SpanEvent {
                            instr: idx as u32,
                            kind: wait_kind,
                            name: format!("{wait_kind} (rank {rank}/{t})"),
                            start_ns: wait_start.saturating_duration_since(origin).as_nanos()
                                as u64,
                            dur_ns: wait_dur.as_nanos() as u64,
                            bytes: 0,
                            alloc: None,
                        });
                    }
                    st.store.insert(*dst, combined);
                } else {
                    legacy_ring_collective(
                        st,
                        me,
                        epoch,
                        kind,
                        *dst,
                        *src,
                        group,
                        wires,
                        *dim,
                        *axis,
                        &mut profile,
                        traced,
                        &mut span_name,
                        &mut span_bytes,
                    )?;
                }
            }
        }
        let kind = match instr {
            Instr::Run { label, .. } => label_kind(label),
            Instr::Send { .. } => "send",
            Instr::Recv { .. } => "recv",
            Instr::Copy { .. } => "copy",
            Instr::Free { .. } => "free",
            Instr::Collective { axis, .. } => match axis {
                CollectiveAxis::Tp => "collective",
                CollectiveAxis::Dp => "dp_collective",
            },
        };
        let dur = t0.elapsed();
        profile.record(kind, dur);
        if let Some(r) = ring.as_mut() {
            for s in op_spans {
                r.push(s);
            }
            r.push(SpanEvent {
                instr: idx as u32,
                kind,
                name: span_name,
                start_ns: t0.saturating_duration_since(origin).as_nanos() as u64,
                dur_ns: dur.as_nanos() as u64,
                bytes: span_bytes,
                alloc: span_alloc,
            });
        }
    }
    Ok(profile)
}
