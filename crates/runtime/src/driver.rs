//! The single-controller MPMD runtime (paper §4.1).
//!
//! A [`Runtime`] spawns one OS thread per actor (standing in for the
//! paper's Ray workers, each managing an SPMD device group). The driver
//! dispatches each actor's *entire fused instruction stream* in a single
//! message per step (§4.4); all cross-actor coordination happens through
//! per-pair FIFO data channels (standing in for NCCL P2P, whose
//! matching-order requirement the compiler's §4.2 pass guarantees).
//!
//! Tensors are `Arc`-backed handles, so placing a buffer, sending it to
//! a peer actor, and fetching it back to the driver are all O(1) moves
//! of a reference — the executable analogue of passing device-buffer
//! handles rather than copying host memory. Each `Run` instruction
//! executes through the liveness interpreter and its allocator counters
//! are accumulated into the actor's [`ActorProfile`].

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use raxpp_ir::{eval_with_stats, EvalStats, Tensor};
use raxpp_taskgraph::{BufferId, Fetch, InputSource, Instr, MpmdProgram};

use crate::error::RuntimeError;
use crate::store::{ObjectStore, SendToken};

type DataMsg = (BufferId, Tensor, SendToken);

enum Command {
    Place(Vec<(BufferId, Tensor)>),
    Execute,
    Fetch(Vec<BufferId>),
    Read(BufferId),
    PeakBytes,
    /// Test-only failure injection: the actor thread exits immediately.
    Die,
    Shutdown,
}

enum Reply {
    Placed,
    Executed(Result<ActorProfile, String>),
    Fetched(Result<Vec<Tensor>, String>),
    Read(Result<Tensor, String>),
    PeakBytes(usize),
}

struct ActorLink {
    cmd: Sender<Command>,
    reply: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

/// Per-instruction-kind wall-clock accounting for one actor's step.
///
/// Keys are instruction kinds (`"fwd"`, `"bwd"`, `"bwdw"`,
/// `"accum_grad"`, `"ct_sum"`, `"grad_reduce"`, `"update"`, `"send"`,
/// `"recv"`, `"free"`). `recv` time is mostly *waiting* for upstream
/// data — the executable analogue of the pipeline bubble. The profile
/// also carries the interpreter's buffer-allocator counters summed over
/// the step's `Run` instructions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActorProfile {
    entries: HashMap<&'static str, (Duration, u32)>,
    alloc: EvalStats,
}

impl ActorProfile {
    fn record(&mut self, kind: &'static str, dur: Duration) {
        let e = self.entries.entry(kind).or_insert((Duration::ZERO, 0));
        e.0 += dur;
        e.1 += 1;
    }

    /// Total time and invocation count for an instruction kind.
    pub fn get(&self, kind: &str) -> Option<(Duration, u32)> {
        self.entries.get(kind).copied()
    }

    /// All recorded kinds with their totals, unordered.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, Duration, u32)> + '_ {
        self.entries.iter().map(|(&k, &(d, c))| (k, d, c))
    }

    /// Buffer-allocator counters (allocated / reused / freed) summed
    /// over this step's `Run` instructions.
    pub fn alloc_stats(&self) -> &EvalStats {
        &self.alloc
    }
}

/// Statistics of one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Wall-clock duration of the dispatched step (excluding input
    /// placement).
    pub wall: Duration,
    /// Number of driver→actor dispatch messages this step (1 per actor —
    /// task fusion, §4.4).
    pub rpcs: usize,
    /// Per-actor instruction-kind profiles.
    pub profiles: Vec<ActorProfile>,
}

impl StepStats {
    /// Buffer-allocator counters summed across all actors for this step.
    pub fn alloc_stats(&self) -> EvalStats {
        let mut total = EvalStats::default();
        for p in &self.profiles {
            total.merge(p.alloc_stats());
        }
        total
    }
}

/// The outputs of one step: every fetched buffer with its [`Fetch`]
/// descriptor (gradients, per-microbatch losses/metrics).
#[derive(Debug, Clone)]
pub struct StepOutputs {
    /// Fetched buffers in program fetch order.
    pub fetched: Vec<(Fetch, Tensor)>,
    /// Step statistics.
    pub stats: StepStats,
}

/// A single-controller MPMD runtime executing a compiled
/// [`MpmdProgram`] on actor threads.
///
/// # Examples
///
/// See `raxpp-core`'s `distributed` API, which compiles traced training
/// steps into programs and drives this runtime.
#[derive(Debug)]
pub struct Runtime {
    program: Arc<MpmdProgram>,
    actors: Vec<ActorLink>,
}

impl std::fmt::Debug for ActorLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorLink")
    }
}

impl Runtime {
    /// Spawns actor threads and wires their P2P channels.
    pub fn new(program: MpmdProgram) -> Runtime {
        let n = program.n_actors();
        let program = Arc::new(program);
        // data_tx[i][j]: sender on actor i for messages to actor j.
        let mut senders: Vec<Vec<Sender<DataMsg>>> = (0..n).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Option<Receiver<DataMsg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (i, sender_row) in senders.iter_mut().enumerate() {
            for recv_row in receivers.iter_mut() {
                let (tx, rx) = channel();
                sender_row.push(tx);
                recv_row[i] = Some(rx);
            }
        }
        let mut actors = Vec::with_capacity(n);
        for (a, (tx_row, rx_row)) in senders.into_iter().zip(receivers).enumerate() {
            let (cmd_tx, cmd_rx) = channel::<Command>();
            let (reply_tx, reply_rx) = channel::<Reply>();
            let prog = Arc::clone(&program);
            let rx_row: Vec<Receiver<DataMsg>> = rx_row.into_iter().map(Option::unwrap).collect();
            let handle = std::thread::Builder::new()
                .name(format!("raxpp-actor-{a}"))
                .spawn(move || actor_main(a, prog, cmd_rx, reply_tx, tx_row, rx_row))
                .expect("spawn actor thread");
            actors.push(ActorLink {
                cmd: cmd_tx,
                reply: reply_rx,
                handle: Some(handle),
            });
        }
        Runtime { program, actors }
    }

    /// The program being executed.
    pub fn program(&self) -> &MpmdProgram {
        &self.program
    }

    /// Places the model parameters on their actors (done once; parameters
    /// stay resident across steps and are updated in place by optimizer
    /// tasks).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadInput`] on shape mismatch and
    /// [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn place_params(&self, params: &[Tensor]) -> Result<(), RuntimeError> {
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> =
            (0..self.actors.len()).map(|_| Vec::new()).collect();
        for p in &self.program.placements {
            if let InputSource::Param(i) = p.source {
                let t = params
                    .get(i)
                    .ok_or_else(|| RuntimeError::BadInput(format!("missing parameter {i}")))?;
                if t.shape() != &p.shape {
                    return Err(RuntimeError::BadInput(format!(
                        "parameter {i} has shape {} but program expects {}",
                        t.shape(),
                        p.shape
                    )));
                }
                per_actor[p.actor].push((p.buf, t.clone()));
            }
        }
        self.place(per_actor)
    }

    /// Runs one step: places the per-microbatch data inputs, dispatches
    /// every actor's fused stream (one message each), and fetches the
    /// result buffers.
    ///
    /// `data[input][mubatch]` follows the traced function's data-input
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on bad inputs, actor failure, or task
    /// execution errors.
    pub fn step(&self, data: &[Vec<Tensor>]) -> Result<StepOutputs, RuntimeError> {
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> =
            (0..self.actors.len()).map(|_| Vec::new()).collect();
        for p in &self.program.placements {
            if let InputSource::Data { input, mubatch } = p.source {
                let t = data
                    .get(input)
                    .and_then(|mbs| mbs.get(mubatch))
                    .ok_or_else(|| {
                        RuntimeError::BadInput(format!(
                            "missing data input {input} microbatch {mubatch}"
                        ))
                    })?;
                if t.shape() != &p.shape {
                    return Err(RuntimeError::BadInput(format!(
                        "data input {input} mb {mubatch} has shape {} but program expects {}",
                        t.shape(),
                        p.shape
                    )));
                }
                per_actor[p.actor].push((p.buf, t.clone()));
            }
        }
        self.place(per_actor)?;

        // One fused dispatch per actor (§4.4), then wait for all.
        let start = Instant::now();
        let mut rpcs = 0;
        for (a, link) in self.actors.iter().enumerate() {
            link.cmd
                .send(Command::Execute)
                .map_err(|_| RuntimeError::ActorDied { actor: a })?;
            rpcs += 1;
        }
        let mut profiles = Vec::with_capacity(self.actors.len());
        for (a, link) in self.actors.iter().enumerate() {
            match link.reply.recv() {
                Ok(Reply::Executed(Ok(profile))) => profiles.push(profile),
                Ok(Reply::Executed(Err(message))) => {
                    return Err(RuntimeError::Exec { actor: a, message })
                }
                _ => return Err(RuntimeError::ActorDied { actor: a }),
            }
        }
        let wall = start.elapsed();

        // Fetch results.
        let mut wanted: Vec<Vec<BufferId>> = (0..self.actors.len()).map(|_| Vec::new()).collect();
        for f in &self.program.fetches {
            wanted[f.actor].push(f.buf);
        }
        let mut fetched_per_actor: Vec<std::collections::HashMap<BufferId, Tensor>> =
            (0..self.actors.len()).map(|_| Default::default()).collect();
        for (a, link) in self.actors.iter().enumerate() {
            if wanted[a].is_empty() {
                continue;
            }
            link.cmd
                .send(Command::Fetch(wanted[a].clone()))
                .map_err(|_| RuntimeError::ActorDied { actor: a })?;
        }
        for (a, link) in self.actors.iter().enumerate() {
            if wanted[a].is_empty() {
                continue;
            }
            match link.reply.recv() {
                Ok(Reply::Fetched(Ok(ts))) => {
                    for (b, t) in wanted[a].iter().zip(ts) {
                        fetched_per_actor[a].insert(*b, t);
                    }
                }
                Ok(Reply::Fetched(Err(message))) => {
                    return Err(RuntimeError::Exec { actor: a, message })
                }
                _ => return Err(RuntimeError::ActorDied { actor: a }),
            }
        }
        let fetched = self
            .program
            .fetches
            .iter()
            .map(|f| (*f, fetched_per_actor[f.actor][&f.buf].clone()))
            .collect();
        Ok(StepOutputs {
            fetched,
            stats: StepStats {
                wall,
                rpcs,
                profiles,
            },
        })
    }

    /// Places arbitrary buffers on actors (e.g. optimizer state appended
    /// by `raxpp-core`'s compiler, which the program lists with a
    /// `State` source).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn place_buffers(&self, items: &[(usize, BufferId, Tensor)]) -> Result<(), RuntimeError> {
        let mut per_actor: Vec<Vec<(BufferId, Tensor)>> =
            (0..self.actors.len()).map(|_| Vec::new()).collect();
        for (actor, buf, t) in items {
            if *actor >= per_actor.len() {
                return Err(RuntimeError::BadInput(format!("unknown actor {actor}")));
            }
            per_actor[*actor].push((*buf, t.clone()));
        }
        self.place(per_actor)
    }

    /// Reads one buffer from an actor's store (e.g. an updated parameter).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the actor died or the buffer is
    /// missing.
    pub fn read_buffer(&self, actor: usize, buf: BufferId) -> Result<Tensor, RuntimeError> {
        let link = self
            .actors
            .get(actor)
            .ok_or(RuntimeError::ActorDied { actor })?;
        link.cmd
            .send(Command::Read(buf))
            .map_err(|_| RuntimeError::ActorDied { actor })?;
        match link.reply.recv() {
            Ok(Reply::Read(Ok(t))) => Ok(t),
            Ok(Reply::Read(Err(message))) => Err(RuntimeError::Exec { actor, message }),
            _ => Err(RuntimeError::ActorDied { actor }),
        }
    }

    /// Peak object-store bytes per actor since launch — the executable
    /// analogue of the schedules' activation-memory footprints
    /// (§2.2.1: GPipe's grows with the microbatch count, 1F1B's with
    /// the stage count).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ActorDied`] if an actor is gone.
    pub fn peak_store_bytes(&self) -> Result<Vec<usize>, RuntimeError> {
        let mut out = Vec::with_capacity(self.actors.len());
        for (a, link) in self.actors.iter().enumerate() {
            link.cmd
                .send(Command::PeakBytes)
                .map_err(|_| RuntimeError::ActorDied { actor: a })?;
            match link.reply.recv() {
                Ok(Reply::PeakBytes(b)) => out.push(b),
                _ => return Err(RuntimeError::ActorDied { actor: a }),
            }
        }
        Ok(out)
    }

    /// Test-only failure injection: terminate one actor's thread. The
    /// next `step` fails with [`RuntimeError::ActorDied`] instead of
    /// hanging.
    pub fn inject_failure(&self, actor: usize) {
        if let Some(link) = self.actors.get(actor) {
            let _ = link.cmd.send(Command::Die);
        }
    }

    fn place(&self, per_actor: Vec<Vec<(BufferId, Tensor)>>) -> Result<(), RuntimeError> {
        for (a, bufs) in per_actor.iter().enumerate() {
            if bufs.is_empty() {
                continue;
            }
            self.actors[a]
                .cmd
                .send(Command::Place(bufs.clone()))
                .map_err(|_| RuntimeError::ActorDied { actor: a })?;
        }
        for (a, bufs) in per_actor.iter().enumerate() {
            if bufs.is_empty() {
                continue;
            }
            match self.actors[a].reply.recv() {
                Ok(Reply::Placed) => {}
                _ => return Err(RuntimeError::ActorDied { actor: a }),
            }
        }
        Ok(())
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        for link in &self.actors {
            let _ = link.cmd.send(Command::Shutdown);
        }
        for link in &mut self.actors {
            if let Some(h) = link.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn actor_main(
    me: usize,
    program: Arc<MpmdProgram>,
    cmd: Receiver<Command>,
    reply: Sender<Reply>,
    tx: Vec<Sender<DataMsg>>,
    rx: Vec<Receiver<DataMsg>>,
) {
    let mut store = ObjectStore::new();
    while let Ok(c) = cmd.recv() {
        match c {
            Command::Place(bufs) => {
                for (b, t) in bufs {
                    store.insert(b, t);
                }
                if reply.send(Reply::Placed).is_err() {
                    return;
                }
            }
            Command::Execute => {
                let r = execute_stream(me, &program, &mut store, &tx, &rx);
                if reply.send(Reply::Executed(r)).is_err() {
                    return;
                }
            }
            Command::Fetch(bufs) => {
                let r: Result<Vec<Tensor>, String> = bufs
                    .iter()
                    .map(|b| {
                        store
                            .get(*b)
                            .cloned()
                            .ok_or_else(|| format!("missing buffer {b}"))
                    })
                    .collect();
                if reply.send(Reply::Fetched(r)).is_err() {
                    return;
                }
            }
            Command::Read(b) => {
                let r = store
                    .get(b)
                    .cloned()
                    .ok_or_else(|| format!("missing buffer {b}"));
                if reply.send(Reply::Read(r)).is_err() {
                    return;
                }
            }
            Command::PeakBytes => {
                if reply.send(Reply::PeakBytes(store.peak_bytes())).is_err() {
                    return;
                }
            }
            Command::Die => return,
            Command::Shutdown => return,
        }
    }
}

fn label_kind(label: &raxpp_taskgraph::TaskLabel) -> &'static str {
    use raxpp_taskgraph::TaskLabel;
    match label {
        TaskLabel::Fwd { .. } => "fwd",
        TaskLabel::Bwd { .. } => "bwd",
        TaskLabel::BwdW { .. } => "bwdw",
        TaskLabel::AccumGrad { .. } => "accum_grad",
        TaskLabel::CotangentSum { .. } => "ct_sum",
        TaskLabel::GradReduce { .. } => "grad_reduce",
        TaskLabel::Update { .. } => "update",
    }
}

fn execute_stream(
    me: usize,
    program: &MpmdProgram,
    store: &mut ObjectStore,
    tx: &[Sender<DataMsg>],
    rx: &[Receiver<DataMsg>],
) -> Result<ActorProfile, String> {
    let mut profile = ActorProfile::default();
    for instr in &program.actors[me] {
        let t0 = Instant::now();
        match instr {
            Instr::Run {
                jaxpr,
                inputs,
                outputs,
                label,
            } => {
                // O(1) handle copies; the store keeps its references, so
                // the interpreter can never mutate resident buffers.
                let args: Vec<Tensor> = inputs
                    .iter()
                    .map(|b| {
                        store
                            .get(*b)
                            .cloned()
                            .ok_or_else(|| format!("{label}: missing input {b}"))
                    })
                    .collect::<Result<_, String>>()?;
                let (outs, stats) = eval_with_stats(&program.jaxprs[jaxpr.0 as usize], &args)
                    .map_err(|e| format!("{label}: {e}"))?;
                profile.alloc.merge(&stats);
                for (b, t) in outputs.iter().zip(outs) {
                    store.insert(*b, t);
                }
            }
            Instr::Send { buf, to } => {
                let t = store
                    .get(*buf)
                    .cloned()
                    .ok_or_else(|| format!("send of missing buffer {buf}"))?;
                let token = SendToken::new();
                store.record_send(*buf, token.clone());
                tx[*to]
                    .send((*buf, t, token))
                    .map_err(|_| format!("actor {to} hung up"))?;
            }
            Instr::Recv {
                buf,
                src,
                from,
                shape,
            } => {
                let (id, t, token) = rx[*from]
                    .recv()
                    .map_err(|_| format!("actor {from} hung up"))?;
                if id != *src {
                    return Err(format!(
                        "out-of-order receive: expected {src}, got {id} (paper §4.2 \
                         ordering violated)"
                    ));
                }
                if t.shape() != shape {
                    return Err(format!(
                        "receive shape mismatch for {buf}: {} vs {shape}",
                        t.shape()
                    ));
                }
                token.complete();
                store.insert(*buf, t);
            }
            Instr::Free { buf } => {
                if !store.free(*buf) {
                    return Err(format!("free of missing buffer {buf}"));
                }
            }
        }
        let kind = match instr {
            Instr::Run { label, .. } => label_kind(label),
            Instr::Send { .. } => "send",
            Instr::Recv { .. } => "recv",
            Instr::Free { .. } => "free",
        };
        profile.record(kind, t0.elapsed());
    }
    Ok(profile)
}
