//! Length-prefixed wire codec for the socket transport.
//!
//! Every frame on a transport stream is `u32` little-endian payload
//! length followed by the payload; the first payload byte is a frame
//! tag ([`HELLO`], [`DATA`], [`CMD`], [`REPLY`], [`HEARTBEAT`]). The
//! codec is hand-rolled (the workspace is dependency-free by design)
//! and *exact*: tensors travel as raw `f32` bit patterns, so a value
//! decoded on the far side is bitwise-identical to the one encoded —
//! the socket transport inherits the runtime's bitwise-determinism
//! contract from this property.
//!
//! Actor ids are `u64` on the wire; the driver's pseudo-id
//! (`usize::MAX`) maps to `u64::MAX`. Span/profile kind strings are
//! `&'static str` in-process, so they are interned through the fixed
//! [`KINDS`] table rather than sent as strings.

use std::io::{Read, Write};
use std::time::Duration;

use raxpp_ir::{EvalStats, Shape, Tensor};
use raxpp_taskgraph::BufferId;

use crate::driver::{
    ActorProfile, Command, ExecFailure, ExecOutcome, Fault, Msg, Payload, Reply, ReplyKind,
};
use crate::store::SendToken;
use crate::trace::{ActorTrace, SpanEvent};

/// Handshake frame: `[HELLO][from: u64][link kind: u8]`. Sent once by
/// the dialing side; tells the acceptor who is on the other end and
/// which pump to run.
pub(crate) const HELLO: u8 = 0;
/// A data-plane [`Msg`] (tensor or abort poison).
pub(crate) const DATA: u8 = 1;
/// A driver→worker [`Command`].
pub(crate) const CMD: u8 = 2;
/// A worker→driver [`Reply`].
pub(crate) const REPLY: u8 = 3;
/// Worker liveness beacon on the reply link: `[HEARTBEAT][from: u64]`.
pub(crate) const HEARTBEAT: u8 = 4;

/// Link kinds carried in the [`HELLO`] handshake.
pub(crate) const LINK_CMD: u8 = 0;
pub(crate) const LINK_REPLY: u8 = 1;
pub(crate) const LINK_DATA: u8 = 2;

/// Upper bound on a single frame (1 GiB) — a corrupt length prefix
/// must not drive a giant allocation.
const MAX_FRAME: u32 = 1 << 30;

/// The interning table for `&'static str` span/profile kinds. Order is
/// part of the wire format; append only.
pub(crate) const KINDS: [&str; 17] = [
    "fwd",
    "bwd",
    "bwdw",
    "accum_grad",
    "ct_sum",
    "grad_reduce",
    "update",
    "send",
    "recv",
    "copy",
    "free",
    "collective",
    "dp_collective",
    "collective_wait",
    "dp_collective_wait",
    "op",
    "wire",
];

fn kind_index(kind: &'static str) -> u8 {
    KINDS
        .iter()
        .position(|&k| k == kind)
        .map(|i| i as u8)
        .unwrap_or(u8::MAX)
}

fn kind_from_index(i: u8, fallback: String) -> &'static str {
    KINDS
        .get(i as usize)
        .copied()
        // Unknown index: a kind missing from the table (a dev error
        // caught by the codec round-trip tests). Leaking the fallback
        // keeps decode total rather than lossy.
        .unwrap_or_else(|| Box::leak(fallback.into_boxed_str()))
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame. Returns the total bytes written.
pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<u64> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(4 + payload.len() as u64)
}

/// Reads one length-prefixed frame. An EOF before the length prefix is
/// a clean close (`UnexpectedEof`); a frame longer than [`MAX_FRAME`]
/// is a protocol error.
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------------

/// Append-only byte encoder over the primitive wire types.
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new(tag: u8) -> Enc {
        Enc { buf: vec![tag] }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn actor(&mut self, a: usize) {
        // usize::MAX (the driver pseudo-id) maps to u64::MAX.
        self.u64(if a == usize::MAX { u64::MAX } else { a as u64 });
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn tensor(&mut self, t: &Tensor) {
        let dims = t.shape().dims();
        self.u8(dims.len() as u8);
        for &d in dims {
            self.u64(d as u64);
        }
        for &v in t.data() {
            self.u32(v.to_bits());
        }
    }

    fn stats(&mut self, s: &EvalStats) {
        self.u64(s.allocated);
        self.u64(s.reused);
        self.u64(s.freed);
    }
}

/// Cursor-based decoder; every accessor is total and reports a
/// protocol error instead of panicking on truncated input.
pub(crate) struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, String>;

impl<'a> Dec<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Dec<'a> {
        Dec { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return Err(format!(
                "truncated frame: wanted {n} bytes at {}, have {}",
                self.pos,
                self.b.len()
            ));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn actor(&mut self) -> DecResult<usize> {
        let v = self.u64()?;
        Ok(if v == u64::MAX {
            usize::MAX
        } else {
            v as usize
        })
    }

    fn str(&mut self) -> DecResult<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("bad utf8: {e}"))
    }

    fn tensor(&mut self) -> DecResult<Tensor> {
        let rank = self.u8()? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.u64()? as usize);
        }
        let shape = Shape::new(dims);
        let numel = shape.numel();
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(f32::from_bits(self.u32()?));
        }
        Tensor::from_vec(shape, data).map_err(|e| format!("bad tensor: {e}"))
    }

    fn stats(&mut self) -> DecResult<EvalStats> {
        Ok(EvalStats {
            allocated: self.u64()?,
            reused: self.u64()?,
            freed: self.u64()?,
        })
    }
}

// ---------------------------------------------------------------------
// Msg (data plane)
// ---------------------------------------------------------------------

/// Encodes a data-plane message. The [`SendToken`] never crosses the
/// wire: the sender completes its token after the synchronous frame
/// write succeeds, and the receiving pump mints a fresh one that the
/// receiver's `Recv` completes as usual (see `store.rs`).
pub(crate) fn encode_msg(m: &Msg) -> Vec<u8> {
    let mut e = Enc::new(DATA);
    e.actor(m.from);
    e.u64(m.epoch);
    match &m.payload {
        Payload::Data(buf, t, _token) => {
            e.u8(0);
            e.u32(buf.0);
            e.tensor(t);
        }
        Payload::Abort(reason) => {
            e.u8(1);
            e.str(reason);
        }
    }
    e.into_bytes()
}

/// Decodes a data-plane message (frame tag already consumed).
pub(crate) fn decode_msg(d: &mut Dec<'_>) -> DecResult<Msg> {
    let from = d.actor()?;
    let epoch = d.u64()?;
    let payload = match d.u8()? {
        0 => {
            let buf = BufferId(d.u32()?);
            let t = d.tensor()?;
            Payload::Data(buf, t, SendToken::new())
        }
        1 => Payload::Abort(d.str()?),
        k => return Err(format!("unknown payload kind {k}")),
    };
    Ok(Msg {
        from,
        epoch,
        payload,
    })
}

// ---------------------------------------------------------------------
// Fault
// ---------------------------------------------------------------------

fn encode_fault(e: &mut Enc, f: &Fault) {
    match f {
        Fault::DieNow => e.u8(0),
        Fault::DieAtInstr(n) => {
            e.u8(1);
            e.u64(*n as u64);
        }
        Fault::ErrorAtInstr(n) => {
            e.u8(2);
            e.u64(*n as u64);
        }
        Fault::ErrorAtTask(s) => {
            e.u8(3);
            e.str(s);
        }
        Fault::KillNow => e.u8(4),
        Fault::KillAtInstr(n) => {
            e.u8(5);
            e.u64(*n as u64);
        }
        Fault::DropLink { peer } => {
            e.u8(6);
            e.actor(*peer);
        }
        Fault::DelayLink { peer, ms } => {
            e.u8(7);
            e.actor(*peer);
            e.u64(*ms);
        }
        Fault::Partition { to } => {
            e.u8(8);
            e.actor(*to);
        }
    }
}

fn decode_fault(d: &mut Dec<'_>) -> DecResult<Fault> {
    Ok(match d.u8()? {
        0 => Fault::DieNow,
        1 => Fault::DieAtInstr(d.u64()? as usize),
        2 => Fault::ErrorAtInstr(d.u64()? as usize),
        3 => Fault::ErrorAtTask(d.str()?),
        4 => Fault::KillNow,
        5 => Fault::KillAtInstr(d.u64()? as usize),
        6 => Fault::DropLink { peer: d.actor()? },
        7 => Fault::DelayLink {
            peer: d.actor()?,
            ms: d.u64()?,
        },
        8 => Fault::Partition { to: d.actor()? },
        k => return Err(format!("unknown fault kind {k}")),
    })
}

// ---------------------------------------------------------------------
// Command
// ---------------------------------------------------------------------

pub(crate) fn encode_command(c: &Command) -> Vec<u8> {
    let mut e = Enc::new(CMD);
    match c {
        Command::Place { seq, bufs } => {
            e.u8(0);
            e.u64(*seq);
            e.u32(bufs.len() as u32);
            for (b, t) in bufs {
                e.u32(b.0);
                e.tensor(t);
            }
        }
        Command::Execute { seq, traced, lanes } => {
            e.u8(1);
            e.u64(*seq);
            e.u8(*traced as u8);
            e.u8(*lanes as u8);
        }
        Command::Fetch { seq, bufs } => {
            e.u8(2);
            e.u64(*seq);
            e.u32(bufs.len() as u32);
            for b in bufs {
                e.u32(b.0);
            }
        }
        Command::Read { seq, buf } => {
            e.u8(3);
            e.u64(*seq);
            e.u32(buf.0);
        }
        Command::PeakBytes { seq } => {
            e.u8(4);
            e.u64(*seq);
        }
        Command::LiveBytes { seq } => {
            e.u8(5);
            e.u64(*seq);
        }
        Command::Reprogram { assign } => {
            e.u8(6);
            e.u32(assign.len() as u32);
            for &a in assign {
                e.u64(a as u64);
            }
        }
        Command::InjectFault(f) => {
            e.u8(7);
            encode_fault(&mut e, f);
        }
        Command::HealWire => e.u8(8),
        Command::Shutdown => e.u8(9),
    }
    e.into_bytes()
}

pub(crate) fn decode_command(d: &mut Dec<'_>) -> DecResult<Command> {
    Ok(match d.u8()? {
        0 => {
            let seq = d.u64()?;
            let n = d.u32()? as usize;
            let mut bufs = Vec::with_capacity(n);
            for _ in 0..n {
                let b = BufferId(d.u32()?);
                bufs.push((b, d.tensor()?));
            }
            Command::Place { seq, bufs }
        }
        1 => Command::Execute {
            seq: d.u64()?,
            traced: d.u8()? != 0,
            lanes: d.u8()? != 0,
        },
        2 => {
            let seq = d.u64()?;
            let n = d.u32()? as usize;
            let mut bufs = Vec::with_capacity(n);
            for _ in 0..n {
                bufs.push(BufferId(d.u32()?));
            }
            Command::Fetch { seq, bufs }
        }
        3 => Command::Read {
            seq: d.u64()?,
            buf: BufferId(d.u32()?),
        },
        4 => Command::PeakBytes { seq: d.u64()? },
        5 => Command::LiveBytes { seq: d.u64()? },
        6 => {
            let n = d.u32()? as usize;
            let mut assign = Vec::with_capacity(n);
            for _ in 0..n {
                assign.push(d.u64()? as usize);
            }
            Command::Reprogram { assign }
        }
        7 => Command::InjectFault(decode_fault(d)?),
        8 => Command::HealWire,
        9 => Command::Shutdown,
        k => return Err(format!("unknown command kind {k}")),
    })
}

// ---------------------------------------------------------------------
// Reply
// ---------------------------------------------------------------------

fn encode_profile(e: &mut Enc, p: &ActorProfile) {
    let entries: Vec<(&'static str, Duration, u32)> = p.entries().collect();
    e.u32(entries.len() as u32);
    for (kind, dur, count) in entries {
        e.u8(kind_index(kind));
        e.u64(dur.as_nanos() as u64);
        e.u32(count);
    }
    e.stats(p.alloc_stats());
    e.u64(p.bytes_reduced());
    e.u64(p.bytes_wire());
    e.u64(p.bytes_overlap());
    e.u64(p.dp_bytes_wire());
}

fn decode_profile(d: &mut Dec<'_>) -> DecResult<ActorProfile> {
    let n = d.u32()? as usize;
    let mut p = ActorProfile::default();
    for _ in 0..n {
        let i = d.u8()?;
        let kind = kind_from_index(i, format!("kind{i}"));
        let dur = Duration::from_nanos(d.u64()?);
        let count = d.u32()?;
        p.restore_entry(kind, dur, count);
    }
    let alloc = d.stats()?;
    let bytes_reduced = d.u64()?;
    let bytes_wire = d.u64()?;
    let bytes_overlap = d.u64()?;
    let dp_bytes_wire = d.u64()?;
    p.restore_counters(
        alloc,
        bytes_reduced,
        bytes_wire,
        bytes_overlap,
        dp_bytes_wire,
    );
    Ok(p)
}

fn encode_span(e: &mut Enc, s: &SpanEvent) {
    e.u32(s.instr);
    e.u8(kind_index(s.kind));
    e.str(&s.name);
    e.u64(s.start_ns);
    e.u64(s.dur_ns);
    e.u64(s.bytes);
    match &s.alloc {
        Some(a) => {
            e.u8(1);
            e.stats(a);
        }
        None => e.u8(0),
    }
}

fn decode_span(d: &mut Dec<'_>) -> DecResult<SpanEvent> {
    let instr = d.u32()?;
    let i = d.u8()?;
    let kind = kind_from_index(i, format!("kind{i}"));
    let name = d.str()?;
    let start_ns = d.u64()?;
    let dur_ns = d.u64()?;
    let bytes = d.u64()?;
    let alloc = match d.u8()? {
        0 => None,
        _ => Some(d.stats()?),
    };
    Ok(SpanEvent {
        instr,
        kind,
        name,
        start_ns,
        dur_ns,
        bytes,
        alloc,
    })
}

fn encode_trace(e: &mut Enc, t: &ActorTrace) {
    e.actor(t.actor);
    e.u64(t.dropped);
    e.u32(t.spans.len() as u32);
    for s in &t.spans {
        encode_span(e, s);
    }
}

fn decode_trace(d: &mut Dec<'_>) -> DecResult<ActorTrace> {
    let actor = d.actor()?;
    let dropped = d.u64()?;
    let n = d.u32()? as usize;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(decode_span(d)?);
    }
    Ok(ActorTrace {
        actor,
        spans,
        dropped,
    })
}

fn encode_result_tensors(e: &mut Enc, r: &Result<Vec<Tensor>, String>) {
    match r {
        Ok(ts) => {
            e.u8(0);
            e.u32(ts.len() as u32);
            for t in ts {
                e.tensor(t);
            }
        }
        Err(m) => {
            e.u8(1);
            e.str(m);
        }
    }
}

fn decode_result_tensors(d: &mut Dec<'_>) -> DecResult<Result<Vec<Tensor>, String>> {
    Ok(match d.u8()? {
        0 => {
            let n = d.u32()? as usize;
            let mut ts = Vec::with_capacity(n);
            for _ in 0..n {
                ts.push(d.tensor()?);
            }
            Ok(ts)
        }
        _ => Err(d.str()?),
    })
}

pub(crate) fn encode_reply(r: &Reply) -> Vec<u8> {
    let mut e = Enc::new(REPLY);
    e.u64(r.seq);
    match &r.kind {
        ReplyKind::Placed => e.u8(0),
        ReplyKind::Executed(o) => {
            e.u8(1);
            match &o.result {
                Ok(p) => {
                    e.u8(0);
                    encode_profile(&mut e, p);
                }
                Err(ExecFailure::Error(m)) => {
                    e.u8(1);
                    e.str(m);
                }
                Err(ExecFailure::Aborted { by, reason }) => {
                    e.u8(2);
                    e.actor(*by);
                    e.str(reason);
                }
            }
            match &o.trace {
                Some(t) => {
                    e.u8(1);
                    encode_trace(&mut e, t);
                }
                None => e.u8(0),
            }
        }
        ReplyKind::Fetched(r) => {
            e.u8(2);
            encode_result_tensors(&mut e, r);
        }
        ReplyKind::Read(r) => {
            e.u8(3);
            match r {
                Ok(t) => {
                    e.u8(0);
                    e.tensor(t);
                }
                Err(m) => {
                    e.u8(1);
                    e.str(m);
                }
            }
        }
        ReplyKind::PeakBytes(b) => {
            e.u8(4);
            e.u64(*b as u64);
        }
        ReplyKind::LiveBytes(b) => {
            e.u8(5);
            e.u64(*b as u64);
        }
    }
    e.into_bytes()
}

pub(crate) fn decode_reply(d: &mut Dec<'_>) -> DecResult<Reply> {
    let seq = d.u64()?;
    let kind = match d.u8()? {
        0 => ReplyKind::Placed,
        1 => {
            let result = match d.u8()? {
                0 => Ok(decode_profile(d)?),
                1 => Err(ExecFailure::Error(d.str()?)),
                2 => Err(ExecFailure::Aborted {
                    by: d.actor()?,
                    reason: d.str()?,
                }),
                k => return Err(format!("unknown exec result kind {k}")),
            };
            let trace = match d.u8()? {
                0 => None,
                _ => Some(decode_trace(d)?),
            };
            ReplyKind::Executed(Box::new(ExecOutcome { result, trace }))
        }
        2 => ReplyKind::Fetched(decode_result_tensors(d)?),
        3 => ReplyKind::Read(match d.u8()? {
            0 => Ok(d.tensor()?),
            _ => Err(d.str()?),
        }),
        4 => ReplyKind::PeakBytes(d.u64()? as usize),
        5 => ReplyKind::LiveBytes(d.u64()? as usize),
        k => return Err(format!("unknown reply kind {k}")),
    };
    Ok(Reply { seq, kind })
}

/// Encodes a heartbeat beacon.
pub(crate) fn encode_heartbeat(from: usize) -> Vec<u8> {
    let mut e = Enc::new(HEARTBEAT);
    e.actor(from);
    e.into_bytes()
}

/// Encodes the [`HELLO`] handshake frame.
pub(crate) fn encode_hello(from: usize, link_kind: u8) -> Vec<u8> {
    let mut e = Enc::new(HELLO);
    e.actor(from);
    e.u8(link_kind);
    e.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_cmd(c: Command) -> Command {
        let b = encode_command(&c);
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), CMD);
        decode_command(&mut d).unwrap()
    }

    #[test]
    fn command_roundtrip_is_exact() {
        let t = Tensor::from_vec(Shape::new(vec![2, 2]), vec![1.0, -0.0, f32::MIN, 3.5]).unwrap();
        match roundtrip_cmd(Command::Place {
            seq: 7,
            bufs: vec![(BufferId(3), t.clone())],
        }) {
            Command::Place { seq, bufs } => {
                assert_eq!(seq, 7);
                assert_eq!(bufs[0].0, BufferId(3));
                let a: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = bufs[0].1.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "tensor bits must survive the wire exactly");
            }
            c => panic!("wrong decode: {c:?}"),
        }
        assert!(matches!(
            roundtrip_cmd(Command::Execute {
                seq: 9,
                traced: true,
                lanes: false
            }),
            Command::Execute {
                seq: 9,
                traced: true,
                lanes: false
            }
        ));
        match roundtrip_cmd(Command::Reprogram {
            assign: vec![0, 1, 1, 3],
        }) {
            Command::Reprogram { assign } => assert_eq!(assign, vec![0, 1, 1, 3]),
            c => panic!("wrong decode: {c:?}"),
        }
        for f in [
            Fault::DieNow,
            Fault::DieAtInstr(4),
            Fault::ErrorAtInstr(2),
            Fault::ErrorAtTask("bwd".into()),
            Fault::KillNow,
            Fault::KillAtInstr(11),
            Fault::DropLink { peer: 2 },
            Fault::DelayLink { peer: 1, ms: 30 },
            Fault::Partition { to: usize::MAX },
        ] {
            match roundtrip_cmd(Command::InjectFault(f.clone())) {
                Command::InjectFault(g) => assert_eq!(f, g),
                c => panic!("wrong decode: {c:?}"),
            }
        }
    }

    #[test]
    fn msg_and_reply_roundtrip() {
        let t = Tensor::from_vec(Shape::new(vec![3]), vec![0.25, -1.5, 2.0]).unwrap();
        let m = Msg {
            from: usize::MAX,
            epoch: 42,
            payload: Payload::Abort("step aborted".into()),
        };
        let b = encode_msg(&m);
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), DATA);
        let m2 = decode_msg(&mut d).unwrap();
        assert_eq!(m2.from, usize::MAX);
        assert_eq!(m2.epoch, 42);
        assert!(matches!(m2.payload, Payload::Abort(ref r) if r == "step aborted"));

        let mut p = ActorProfile::default();
        p.restore_entry("fwd", Duration::from_micros(12), 3);
        p.restore_counters(
            EvalStats {
                allocated: 5,
                reused: 2,
                freed: 4,
            },
            64,
            128,
            32,
            16,
        );
        let r = Reply {
            seq: 3,
            kind: ReplyKind::Executed(Box::new(ExecOutcome {
                result: Ok(p.clone()),
                trace: Some(ActorTrace {
                    actor: 1,
                    spans: vec![SpanEvent {
                        instr: 0,
                        kind: "wire",
                        name: "wire b2 -> actor 0".into(),
                        start_ns: 10,
                        dur_ns: 20,
                        bytes: 12,
                        alloc: None,
                    }],
                    dropped: 0,
                }),
            })),
        };
        let b = encode_reply(&r);
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), REPLY);
        let r2 = decode_reply(&mut d).unwrap();
        assert_eq!(r2.seq, 3);
        match r2.kind {
            ReplyKind::Executed(o) => {
                assert_eq!(o.result.as_ref().unwrap(), &p);
                let tr = o.trace.unwrap();
                assert_eq!(tr.spans[0].kind, "wire");
                assert_eq!(tr.spans[0].bytes, 12);
            }
            _ => panic!("wrong reply kind"),
        }
        let r = Reply {
            seq: 4,
            kind: ReplyKind::Fetched(Ok(vec![t.clone()])),
        };
        let b = encode_reply(&r);
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), REPLY);
        match decode_reply(&mut d).unwrap().kind {
            ReplyKind::Fetched(Ok(ts)) => assert_eq!(ts[0].data(), t.data()),
            _ => panic!("wrong reply kind"),
        }
    }

    #[test]
    fn every_runtime_kind_is_interned() {
        for k in KINDS {
            assert_eq!(kind_from_index(kind_index(k), String::new()), k);
        }
    }
}
