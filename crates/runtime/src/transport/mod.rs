//! Pluggable actor-fabric transports.
//!
//! The single-controller runtime talks to its actors over three
//! logical channels: a command channel per actor (driver → actor), a
//! reply channel per actor (actor → driver), and the data fabric
//! (actor → actor `Msg`s plus driver abort broadcasts, demuxed
//! per-peer FIFO by each actor's [`Mailbox`](crate::driver)). The
//! [`Transport`] trait abstracts how those channels are carried:
//!
//! * [`MpscTransport`] — the original in-process fabric: one thread
//!   per actor, `std::sync::mpsc` channels, a shared sender row.
//!   Default; zero behavior change.
//! * `SocketTransport` — every fabric byte crosses a length-prefixed
//!   Unix-domain or TCP socket, with a connect/accept handshake,
//!   worker heartbeats, per-peer reconnect under bounded exponential
//!   backoff, and wire-level fault injection. Workers are either
//!   threads (CI's wire path) or real OS processes (`raxpp-launch`).
//!
//! Whatever the carrier, replies always terminate in an in-process
//! `Receiver<Reply>` held by the driver: the socket transport's reader
//! pumps feed that channel and drop its sender on connection EOF, so a
//! dead peer surfaces through the exact `Disconnected` path the mpsc
//! transport uses. Bounded-time detection therefore needs no new
//! driver machinery — plus heartbeat suspicion for the one failure
//! mpsc cannot express: a peer that is silent but not yet closed
//! (one-way partition).

mod socket;
pub(crate) mod wire;

use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use raxpp_taskgraph::MpmdProgram;

use crate::driver::{actor_main, ActorLink, Command, Fault, Msg, Payload, Reply, DRIVER};
use crate::lane::LaneCtx;

pub use socket::{serve_worker, WorkerConfig};
pub(crate) use socket::{Endpoint, Scheme, SocketTransport};

/// Parses a millisecond duration from `var`, falling back to `default`.
pub(crate) fn env_ms(var: &str, default: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default);
    Duration::from_millis(ms)
}

/// Which carrier the actor fabric runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process threads and `mpsc` channels (default).
    Mpsc,
    /// Unix-domain sockets under a per-fleet temp directory.
    UnixSocket,
    /// TCP over loopback (`127.0.0.1`), ports discovered via files.
    Tcp,
}

impl TransportKind {
    /// Reads `RAXPP_TRANSPORT`: empty/`mpsc`/`thread` select the
    /// in-process transport, `socket`/`uds`/`unix` the Unix-socket
    /// transport, `tcp` the TCP transport. Unknown values fall back to
    /// mpsc.
    pub fn from_env() -> TransportKind {
        match std::env::var("RAXPP_TRANSPORT")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "socket" | "uds" | "unix" => TransportKind::UnixSocket,
            "tcp" => TransportKind::Tcp,
            _ => TransportKind::Mpsc,
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Mpsc => "mpsc",
            TransportKind::UnixSocket => "uds",
            TransportKind::Tcp => "tcp",
        })
    }
}

/// Cumulative wire counters for a runtime's transport. All zero on the
/// in-process transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes written to sockets (frames + handshakes + heartbeats).
    pub bytes_tx: u64,
    /// Bytes read from sockets.
    pub bytes_rx: u64,
    /// Times a peer link was re-dialed after it was already connected
    /// once (write-failure re-dials and post-respawn re-dials).
    pub reconnects: u64,
    /// Times the driver declared an actor heartbeat-silent.
    pub heartbeat_misses: u64,
}

/// A fleet factory plus the driver-side operations that differ by
/// carrier. One instance lives in the runtime's `Inner` and spawns
/// every actor — both at construction and on respawn during recovery.
pub(crate) trait Transport: Send {
    /// Which carrier this is.
    fn kind(&self) -> TransportKind;

    /// Whether shared-memory lane rendezvous (tensor/data-parallel
    /// collectives over `LaneHub`) can be used. Socket transports
    /// return false: collectives take the message-ring path, which is
    /// bitwise-identical by construction.
    fn supports_lanes(&self) -> bool {
        true
    }

    /// Spawns (or respawns) actor `a` and returns its driver-side
    /// link. Respawn must fully retire any previous incarnation first.
    fn spawn_actor(
        &mut self,
        a: usize,
        program: &Arc<MpmdProgram>,
        origin: Instant,
        lane: Option<LaneCtx>,
    ) -> ActorLink;

    /// Best-effort abort broadcast to every actor's data inbox.
    fn broadcast_abort(&self, epoch: u64, reason: &str);

    /// True when the transport suspects `a` is silently dead (no
    /// heartbeat within the timeout). Always false for mpsc.
    fn heartbeat_suspect(&self, _a: usize) -> bool {
        false
    }

    /// Records one heartbeat-silence declaration in the stats.
    fn note_heartbeat_miss(&self) {}

    /// Clears driver-side wire suspicion after recovery (workers clear
    /// their own chaos on `Command::HealWire`).
    fn heal_wire(&self) {}

    /// True when actor `a`'s OS process has exited (process backend
    /// only; threads report through `JoinHandle::is_finished`).
    fn finished(&mut self, _a: usize) -> bool {
        false
    }

    /// Whether respawned actors come up with the *original* program
    /// and must replay the rebalance history (process backend: workers
    /// recompile from the spec; thread backends respawn with the
    /// driver's current `Arc<MpmdProgram>` directly).
    fn needs_program_replay(&self) -> bool {
        false
    }

    /// Delivers a real SIGKILL to actor `a`'s process. Returns false
    /// when the backend has no processes to kill.
    fn kill_process(&mut self, _a: usize) -> bool {
        false
    }

    /// Snapshot of the wire counters.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

// ---------------------------------------------------------------------
// Ports: the per-channel handles the driver and actors hold
// ---------------------------------------------------------------------

/// Driver-side command port for one actor.
pub(crate) enum CmdPort {
    /// Direct channel into the actor thread.
    Mpsc(Sender<Command>),
    /// Encode and send over the driver endpoint's link to `peer`.
    Wire { ep: Arc<Endpoint>, peer: usize },
}

impl CmdPort {
    /// Sends one command; `Err` means the actor is unreachable (dead
    /// or its link is down), matching `Sender::send` semantics.
    pub(crate) fn send(&self, c: Command) -> Result<(), ()> {
        match self {
            CmdPort::Mpsc(tx) => tx.send(c).map_err(|_| ()),
            CmdPort::Wire { ep, peer } => ep.send_command(*peer, &c),
        }
    }
}

impl fmt::Debug for CmdPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdPort::Mpsc(_) => f.write_str("CmdPort::Mpsc"),
            CmdPort::Wire { peer, .. } => write!(f, "CmdPort::Wire({peer})"),
        }
    }
}

/// Actor-side reply port back to the driver.
pub(crate) enum ReplyPort {
    /// Direct channel into the driver's `ActorLink`.
    Mpsc(Sender<Reply>),
    /// Encode and send over the worker endpoint's driver link.
    Wire(Arc<Endpoint>),
}

impl ReplyPort {
    pub(crate) fn send(&self, r: Reply) -> Result<(), ()> {
        match self {
            ReplyPort::Mpsc(tx) => tx.send(r).map_err(|_| ()),
            ReplyPort::Wire(ep) => ep.send_reply(&r),
        }
    }
}

/// Actor-side handle on the data fabric: how an actor sends `Msg`s to
/// peers, and where wire faults land.
pub(crate) enum Fabric {
    /// Shared row of inbox senders (in-process).
    Mpsc { row: Arc<RwLock<Vec<Sender<Msg>>>> },
    /// This actor's socket endpoint.
    Wire { ep: Arc<Endpoint>, n: usize },
}

impl Fabric {
    /// Number of actors addressable on the fabric.
    pub(crate) fn n(&self) -> usize {
        match self {
            Fabric::Mpsc { row } => row.read().unwrap().len(),
            Fabric::Wire { n, .. } => *n,
        }
    }

    /// Sends one message to `to`. On the wire, a successful
    /// synchronous write completes the payload's send token (the bytes
    /// have left this actor's store); in process, the receiver
    /// completes it on `Recv` as before.
    pub(crate) fn send(&self, to: usize, msg: Msg) -> Result<(), ()> {
        match self {
            Fabric::Mpsc { row } => {
                let row = row.read().unwrap();
                match row.get(to) {
                    Some(tx) => tx.send(msg).map_err(|_| ()),
                    None => Err(()),
                }
            }
            Fabric::Wire { ep, .. } => {
                ep.send_msg(to, &msg)?;
                if let Payload::Data(_, _, token) = &msg.payload {
                    token.complete();
                }
                Ok(())
            }
        }
    }

    /// Applies a wire fault (drop/delay/partition). Documented no-op
    /// on the in-process fabric, so one seeded chaos schedule drives
    /// both transports.
    pub(crate) fn inject(&self, f: &Fault) {
        if let Fabric::Wire { ep, .. } = self {
            ep.inject(f);
        }
    }

    /// Clears wire chaos (`Command::HealWire`).
    pub(crate) fn heal(&self) {
        if let Fabric::Wire { ep, .. } = self {
            ep.heal();
        }
    }

    /// Tears the endpoint down without a goodbye (kill semantics, and
    /// the normal last act of a wire actor on any exit).
    pub(crate) fn sever(&self) {
        if let Fabric::Wire { ep, .. } = self {
            ep.sever();
        }
    }

    /// True on a socket fabric (drives the `wire` span kind).
    pub(crate) fn is_wire(&self) -> bool {
        matches!(self, Fabric::Wire { .. })
    }
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

/// The original threads + `mpsc` fabric.
pub(crate) struct MpscTransport {
    /// Shared sender row; actors index it to reach peers, the driver
    /// uses it for abort broadcasts, and respawn swaps in fresh
    /// senders in place.
    row: Arc<RwLock<Vec<Sender<Msg>>>>,
    /// Inbox receivers for actors not yet spawned (all created
    /// upfront so early senders never race a later spawn).
    pending: Vec<Option<Receiver<Msg>>>,
}

impl MpscTransport {
    pub(crate) fn new(n: usize) -> MpscTransport {
        let mut row = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Msg>();
            row.push(tx);
            pending.push(Some(rx));
        }
        MpscTransport {
            row: Arc::new(RwLock::new(row)),
            pending,
        }
    }
}

impl Transport for MpscTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Mpsc
    }

    fn spawn_actor(
        &mut self,
        a: usize,
        program: &Arc<MpmdProgram>,
        origin: Instant,
        lane: Option<LaneCtx>,
    ) -> ActorLink {
        // First spawn takes the pre-created inbox; respawn installs a
        // fresh channel in the shared row.
        let inbox_rx = match self.pending[a].take() {
            Some(rx) => rx,
            None => {
                let (tx, rx) = channel::<Msg>();
                self.row.write().unwrap()[a] = tx;
                rx
            }
        };
        let (cmd_tx, cmd_rx) = channel::<Command>();
        let (reply_tx, reply_rx) = channel::<Reply>();
        let fabric = Fabric::Mpsc {
            row: Arc::clone(&self.row),
        };
        let program = Arc::clone(program);
        let handle = std::thread::Builder::new()
            .name(format!("raxpp-actor-{a}"))
            .spawn(move || {
                let _ = actor_main(
                    a,
                    program,
                    cmd_rx,
                    ReplyPort::Mpsc(reply_tx),
                    fabric,
                    inbox_rx,
                    origin,
                    lane,
                );
            })
            .expect("spawn actor thread");
        ActorLink {
            cmd: CmdPort::Mpsc(cmd_tx),
            reply: reply_rx,
            handle: Some(handle),
            dead: false,
        }
    }

    fn broadcast_abort(&self, epoch: u64, reason: &str) {
        let row = self.row.read().unwrap();
        for tx in row.iter() {
            let _ = tx.send(Msg {
                from: DRIVER,
                epoch,
                payload: Payload::Abort(reason.to_string()),
            });
        }
    }
}

#[allow(unused)]
fn _assert_transport_object_safe(_t: &Mutex<Box<dyn Transport>>) {}
