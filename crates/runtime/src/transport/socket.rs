//! The socket transport: the actor fabric over length-prefixed frames
//! on Unix-domain or TCP sockets.
//!
//! Every participant (each worker, plus the driver) owns an
//! [`Endpoint`]: one listening socket, an accept pump, one reader
//! thread per accepted connection, and a cache of lazily-dialed
//! outbound links. Link topology:
//!
//! * **driver → worker** (one per worker): carries [`Command`] frames
//!   and driver-originated abort [`Msg`]s. EOF on this link tells the
//!   worker the driver is gone (or it is being respawned) and it shuts
//!   down.
//! * **worker → driver** (one per worker): carries [`Reply`] frames
//!   and heartbeats. The driver-side reader *takes* the actor's reply
//!   sender at the handshake and drops it on EOF, so a dead worker
//!   surfaces through the exact channel-disconnect path the in-process
//!   transport uses (`RuntimeError::ActorDied`).
//! * **worker → worker** (lazily dialed): carries data-plane [`Msg`]s.
//!   A write failure drops the link and re-dials once with bounded
//!   exponential backoff — the per-peer reconnect path.
//!
//! Wire-level chaos (one-way partitions, one-shot connection drops and
//! delays) lives in the *sending* endpoint and is injected through the
//! ordinary fault queue; `kill -9` semantics are an endpoint
//! [`Endpoint::sever`] (threads backend) or a real `SIGKILL` (process
//! backend) — no goodbye frames, detection is bounded by reply-link
//! EOF plus heartbeat suspicion.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use raxpp_taskgraph::MpmdProgram;

use crate::driver::{actor_main, ActorLink, Command, Exit, Fault, Msg, Payload, Reply, DRIVER};
use crate::transport::wire::{
    decode_command, decode_msg, decode_reply, encode_command, encode_heartbeat, encode_hello,
    encode_msg, encode_reply, read_frame, write_frame, CMD, DATA, HEARTBEAT, HELLO, LINK_CMD,
    LINK_DATA, LINK_REPLY, REPLY,
};
use crate::transport::{
    env_ms, CmdPort, Fabric, ReplyPort, Transport, TransportKind, TransportStats,
};

/// How often the accept pump polls its (non-blocking) listener.
const ACCEPT_POLL: Duration = Duration::from_millis(3);
/// First connect-retry backoff; doubles per attempt up to [`DIAL_BACKOFF_CAP`].
const DIAL_BACKOFF: Duration = Duration::from_millis(1);
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(64);

fn connect_budget() -> Duration {
    env_ms("RAXPP_WIRE_CONNECT_TIMEOUT_MS", 1500)
}

fn write_timeout() -> Duration {
    env_ms("RAXPP_WIRE_WRITE_TIMEOUT_MS", 5000)
}

pub(crate) fn heartbeat_interval() -> Duration {
    env_ms("RAXPP_WIRE_HB_INTERVAL_MS", 25)
}

pub(crate) fn heartbeat_timeout() -> Duration {
    env_ms("RAXPP_WIRE_HB_TIMEOUT_MS", 500)
}

/// Wire scheme: Unix-domain sockets (default) or TCP over loopback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Scheme {
    Uds,
    Tcp,
}

/// Fleet-wide wire counters, shared by every endpoint of a transport.
#[derive(Debug, Default)]
pub(crate) struct WireStats {
    pub(crate) bytes_tx: AtomicU64,
    pub(crate) bytes_rx: AtomicU64,
    pub(crate) reconnects: AtomicU64,
    pub(crate) heartbeat_misses: AtomicU64,
}

impl WireStats {
    pub(crate) fn snapshot(&self) -> TransportStats {
        TransportStats {
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            heartbeat_misses: self.heartbeat_misses.load(Ordering::Relaxed),
        }
    }
}

/// A connected stream of either scheme.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_write_timeout(&self, d: Duration) {
        let _ = match self {
            Stream::Unix(s) => s.set_write_timeout(Some(d)),
            Stream::Tcp(s) => s.set_write_timeout(Some(d)),
        };
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(on),
            Stream::Tcp(s) => s.set_nonblocking(on),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// Socket path for endpoint `id` under the fleet directory.
fn sock_path(dir: &Path, id: usize) -> PathBuf {
    if id == DRIVER {
        dir.join("driver.sock")
    } else {
        dir.join(format!("ep{id}.sock"))
    }
}

/// TCP port-discovery file (the listener binds `127.0.0.1:0`).
fn port_path(dir: &Path, id: usize) -> PathBuf {
    if id == DRIVER {
        dir.join("driver.port")
    } else {
        dir.join(format!("ep{id}.port"))
    }
}

/// One cached outbound link: the stream under its write lock, plus a
/// flag marking whether this slot was ever connected (a later dial is
/// then a *re*connect).
struct LinkSlot {
    stream: Mutex<Option<Stream>>,
    was_connected: AtomicBool,
}

/// Sender-side wire chaos, consulted on every outbound frame.
#[derive(Default)]
struct Chaos {
    /// One-way partition: frames to these peers are silently discarded
    /// until [`Endpoint::heal`].
    partition: HashSet<usize>,
    /// One-shot delay (ms) before the next frame to the peer.
    delay: HashMap<usize, u64>,
    /// One-shot: close the cached link to the peer before the next
    /// frame, forcing a transparent re-dial.
    drop_next: HashSet<usize>,
}

/// Inbound routing tables: what an endpoint's readers deliver into.
enum Routes {
    Worker {
        /// Master inbox sender; readers clone it per connection. Taken
        /// by [`Endpoint::sever`] so a severed actor's blocking `Recv`
        /// observes "inbox closed" once the readers drain.
        inbox: Mutex<Option<Sender<Msg>>>,
        /// The actor-loop command sender, *taken* by the driver link's
        /// reader at the handshake; EOF drops it, ending the actor
        /// loop cleanly.
        cmd: Mutex<Option<Sender<Command>>>,
    },
    Driver {
        /// Per-actor reply senders, taken by the reply-link reader at
        /// the handshake; EOF drops the sender, surfacing as the
        /// `Disconnected` the driver already maps to `ActorDied`.
        slots: Vec<Mutex<Option<Sender<Reply>>>>,
        /// Last heartbeat (or reply) arrival per actor.
        last_heard: Vec<Mutex<Instant>>,
    },
}

/// One participant's socket presence: listener, accept/reader pumps,
/// outbound link cache, chaos state.
pub(crate) struct Endpoint {
    me: usize,
    dir: PathBuf,
    scheme: Scheme,
    alive: AtomicBool,
    listener: Mutex<Option<Listener>>,
    links: Mutex<HashMap<usize, Arc<LinkSlot>>>,
    /// Clones of accepted connections, kept so [`Endpoint::sever`] can
    /// shut them down (waking their readers).
    conns: Mutex<Vec<Stream>>,
    chaos: Mutex<Chaos>,
    stats: Arc<WireStats>,
    routes: Routes,
    connect_budget: Duration,
    write_timeout: Duration,
}

impl Endpoint {
    /// Binds the endpoint's listener and starts its accept pump.
    fn bind(
        me: usize,
        dir: &Path,
        scheme: Scheme,
        stats: Arc<WireStats>,
        routes: Routes,
    ) -> std::io::Result<Arc<Endpoint>> {
        let sp = sock_path(dir, me);
        let _ = std::fs::remove_file(&sp);
        let listener = match scheme {
            Scheme::Uds => {
                let l = UnixListener::bind(&sp)?;
                l.set_nonblocking(true)?;
                Listener::Unix(l)
            }
            Scheme::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                l.set_nonblocking(true)?;
                let port = l.local_addr()?.port();
                let pp = port_path(dir, me);
                let tmp = pp.with_extension("tmp");
                std::fs::write(&tmp, port.to_string())?;
                std::fs::rename(&tmp, &pp)?;
                Listener::Tcp(l)
            }
        };
        let ep = Arc::new(Endpoint {
            me,
            dir: dir.to_path_buf(),
            scheme,
            alive: AtomicBool::new(true),
            listener: Mutex::new(Some(listener)),
            links: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            chaos: Mutex::new(Chaos::default()),
            stats,
            routes,
            connect_budget: connect_budget(),
            write_timeout: write_timeout(),
        });
        let pump = Arc::clone(&ep);
        std::thread::Builder::new()
            .name(format!("raxpp-wire-accept-{me}"))
            .spawn(move || pump.accept_pump())
            .expect("spawn accept pump");
        Ok(ep)
    }

    fn accept_pump(self: Arc<Endpoint>) {
        while self.alive.load(Ordering::Relaxed) {
            let accepted = {
                let guard = self.listener.lock().unwrap();
                match guard.as_ref() {
                    Some(l) => l.accept(),
                    None => return,
                }
            };
            match accepted {
                Ok(s) => {
                    let _ = s.set_nonblocking(false);
                    if let Ok(c) = s.try_clone() {
                        self.conns.lock().unwrap().push(c);
                    }
                    let ep = Arc::clone(&self);
                    let _ = std::thread::Builder::new()
                        .name(format!("raxpp-wire-rd-{}", self.me))
                        .spawn(move || ep.reader(s));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => return,
            }
        }
    }

    /// Per-connection reader: handshake, then pump frames into the
    /// routing tables until EOF or error.
    fn reader(self: Arc<Endpoint>, mut s: Stream) {
        let hello = match read_frame(&mut s) {
            Ok(b) => b,
            Err(_) => return,
        };
        let mut d = crate::transport::wire::Dec::new(&hello);
        let (from, link_kind) = match (d.u8(), d.actor(), d.u8()) {
            (Ok(HELLO), Ok(f), Ok(k)) => (f, k),
            _ => return,
        };
        // Capture the sender this link's EOF must release.
        let mut cmd_tx: Option<Sender<Command>> = None;
        let mut reply_tx: Option<Sender<Reply>> = None;
        let inbox_tx: Option<Sender<Msg>> = match &self.routes {
            Routes::Worker { inbox, cmd } => {
                if link_kind == LINK_CMD {
                    cmd_tx = cmd.lock().unwrap().take();
                }
                inbox.lock().unwrap().clone()
            }
            Routes::Driver { slots, .. } => {
                if link_kind == LINK_REPLY {
                    if let Some(slot) = slots.get(from) {
                        reply_tx = slot.lock().unwrap().take();
                    }
                }
                None
            }
        };
        while self.alive.load(Ordering::Relaxed) {
            let frame = match read_frame(&mut s) {
                Ok(f) => f,
                Err(_) => break, // EOF or severed: drop the senders below
            };
            self.stats
                .bytes_rx
                .fetch_add(4 + frame.len() as u64, Ordering::Relaxed);
            let mut d = crate::transport::wire::Dec::new(&frame);
            match d.u8() {
                Ok(DATA) => {
                    if let (Ok(m), Some(inbox)) = (decode_msg(&mut d), inbox_tx.as_ref()) {
                        let _ = inbox.send(m);
                    }
                }
                Ok(CMD) => {
                    if let (Ok(c), Some(tx)) = (decode_command(&mut d), cmd_tx.as_ref()) {
                        if tx.send(c).is_err() {
                            break; // actor loop ended
                        }
                    }
                }
                Ok(REPLY) => {
                    if let (Ok(r), Some(tx)) = (decode_reply(&mut d), reply_tx.as_ref()) {
                        self.note_heard(from);
                        let _ = tx.send(r);
                    }
                }
                Ok(HEARTBEAT) => self.note_heard(from),
                _ => break, // protocol error: treat like a dead link
            }
        }
        // Dropping cmd_tx / reply_tx here is the liveness signal: the
        // far side of the corresponding in-process channel observes
        // Disconnected.
        drop(cmd_tx);
        drop(reply_tx);
    }

    fn note_heard(&self, from: usize) {
        if let Routes::Driver { last_heard, .. } = &self.routes {
            if let Some(m) = last_heard.get(from) {
                *m.lock().unwrap() = Instant::now();
            }
        }
    }

    /// Dials `to`, retrying with bounded exponential backoff until the
    /// connect budget runs out, then performs the HELLO handshake.
    /// `quick` dials exactly once — for best-effort traffic (abort
    /// poison, heartbeats) that must not stall on a dead peer.
    fn dial(&self, to: usize, link_kind: u8, quick: bool) -> Result<Stream, ()> {
        let deadline = if quick {
            Instant::now()
        } else {
            Instant::now() + self.connect_budget
        };
        let mut backoff = DIAL_BACKOFF;
        let stream = loop {
            let attempt = match self.scheme {
                Scheme::Uds => UnixStream::connect(sock_path(&self.dir, to)).map(Stream::Unix),
                Scheme::Tcp => std::fs::read_to_string(port_path(&self.dir, to)).and_then(|p| {
                    let port: u16 = p.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad port file")
                    })?;
                    TcpStream::connect(("127.0.0.1", port)).map(Stream::Tcp)
                }),
            };
            match attempt {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline && self.alive.load(Ordering::Relaxed) => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(DIAL_BACKOFF_CAP);
                }
                Err(_) => return Err(()),
            }
        };
        stream.set_write_timeout(self.write_timeout);
        let hello = encode_hello(self.me, link_kind);
        let mut s = stream;
        match write_frame(&mut s, &hello) {
            Ok(n) => {
                self.stats.bytes_tx.fetch_add(n, Ordering::Relaxed);
                Ok(s)
            }
            Err(_) => Err(()),
        }
    }

    /// Which link kind an outbound frame to `to` travels on, and
    /// whether a write failure may transparently re-dial (only
    /// worker↔worker data links: a broken control link *is* the
    /// death/respawn signal and must not be papered over).
    fn link_kind_for(&self, to: usize) -> (u8, bool) {
        if self.me == DRIVER {
            (LINK_CMD, false)
        } else if to == DRIVER {
            (LINK_REPLY, false)
        } else {
            (LINK_DATA, true)
        }
    }

    /// Sends one frame to `to`, consulting chaos, dialing lazily, and
    /// (on data links) re-dialing once after a write failure.
    fn send_frame(&self, to: usize, payload: &[u8], quick: bool) -> Result<(), ()> {
        if !self.alive.load(Ordering::Relaxed) {
            return Err(());
        }
        // Chaos gate (sender side, per peer).
        let mut forced_drop = false;
        {
            let mut chaos = self.chaos.lock().unwrap();
            if chaos.partition.contains(&to) {
                // One-way partition: pretend success, deliver nothing.
                return Ok(());
            }
            if chaos.drop_next.remove(&to) {
                forced_drop = true;
            }
            if let Some(ms) = chaos.delay.remove(&to) {
                drop(chaos);
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        let (kind, redial) = self.link_kind_for(to);
        let slot = {
            let mut links = self.links.lock().unwrap();
            Arc::clone(links.entry(to).or_insert_with(|| {
                Arc::new(LinkSlot {
                    stream: Mutex::new(None),
                    was_connected: AtomicBool::new(false),
                })
            }))
        };
        let mut guard = slot.stream.lock().unwrap();
        if forced_drop {
            if let Some(s) = guard.take() {
                s.shutdown();
            }
        }
        let mut attempts = if redial || forced_drop { 2 } else { 1 };
        loop {
            if guard.is_none() {
                if slot.was_connected.load(Ordering::Relaxed) {
                    self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                *guard = Some(self.dial(to, kind, quick)?);
                slot.was_connected.store(true, Ordering::Relaxed);
            }
            let s = guard.as_mut().expect("dialed above");
            match write_frame(s, payload) {
                Ok(n) => {
                    self.stats.bytes_tx.fetch_add(n, Ordering::Relaxed);
                    return Ok(());
                }
                Err(_) => {
                    if let Some(s) = guard.take() {
                        s.shutdown();
                    }
                    attempts -= 1;
                    if attempts == 0 {
                        return Err(());
                    }
                }
            }
        }
    }

    pub(crate) fn send_msg(&self, to: usize, m: &Msg) -> Result<(), ()> {
        // Abort poison is best-effort: a dead peer must not stall the
        // broadcaster for the full connect budget.
        let quick = matches!(m.payload, Payload::Abort(_));
        self.send_frame(to, &encode_msg(m), quick)
    }

    pub(crate) fn send_command(&self, to: usize, c: &Command) -> Result<(), ()> {
        self.send_frame(to, &encode_command(c), false)
    }

    pub(crate) fn send_reply(&self, r: &Reply) -> Result<(), ()> {
        self.send_frame(DRIVER, &encode_reply(r), false)
    }

    pub(crate) fn send_heartbeat(&self) -> Result<(), ()> {
        self.send_frame(DRIVER, &encode_heartbeat(self.me), true)
    }

    /// Applies a wire fault to this endpoint's outbound chaos state.
    pub(crate) fn inject(&self, f: &Fault) {
        let mut chaos = self.chaos.lock().unwrap();
        match f {
            Fault::DropLink { peer } if *peer != DRIVER => {
                chaos.drop_next.insert(*peer);
            }
            Fault::DelayLink { peer, ms } => {
                chaos.delay.insert(*peer, *ms);
            }
            Fault::Partition { to } => {
                chaos.partition.insert(*to);
            }
            _ => {}
        }
    }

    /// Clears all wire chaos (partitions, pending delays/drops).
    pub(crate) fn heal(&self) {
        let mut chaos = self.chaos.lock().unwrap();
        chaos.partition.clear();
        chaos.delay.clear();
        chaos.drop_next.clear();
    }

    /// Kill -9 semantics: closes the listener, every accepted
    /// connection and every outbound link *without any goodbye frame*.
    /// Peers discover the death through EOF/EPIPE (bounded), the driver
    /// through reply-link EOF or heartbeat silence. Idempotent.
    pub(crate) fn sever(&self) {
        // One-shot: a late second sever (e.g. `Drop` after an explicit
        // sever, racing a respawn that re-bound the same path) must not
        // unlink the replacement endpoint's socket file.
        if !self.alive.swap(false, Ordering::Relaxed) {
            return;
        }
        drop(self.listener.lock().unwrap().take());
        let _ = std::fs::remove_file(sock_path(&self.dir, self.me));
        if self.scheme == Scheme::Tcp {
            let _ = std::fs::remove_file(port_path(&self.dir, self.me));
        }
        for c in self.conns.lock().unwrap().drain(..) {
            c.shutdown();
        }
        for (_, slot) in self.links.lock().unwrap().drain() {
            if let Some(s) = slot.stream.lock().unwrap().take() {
                s.shutdown();
            }
        }
        if let Routes::Worker { inbox, cmd } = &self.routes {
            drop(inbox.lock().unwrap().take());
            drop(cmd.lock().unwrap().take());
        }
    }

    // Driver-side bookkeeping -----------------------------------------

    fn set_reply_slot(&self, a: usize, tx: Sender<Reply>) {
        if let Routes::Driver { slots, .. } = &self.routes {
            *slots[a].lock().unwrap() = Some(tx);
        }
    }

    fn reset_heard(&self, a: usize) {
        if let Routes::Driver { last_heard, .. } = &self.routes {
            *last_heard[a].lock().unwrap() = Instant::now();
        }
    }

    fn heard_elapsed(&self, a: usize) -> Duration {
        match &self.routes {
            Routes::Driver { last_heard, .. } => last_heard[a].lock().unwrap().elapsed(),
            _ => Duration::ZERO,
        }
    }

    /// Drops the cached outbound link to `a` (used by the driver when
    /// respawning `a`: the next command dials the fresh listener).
    fn clear_link(&self, a: usize) {
        if let Some(slot) = self.links.lock().unwrap().remove(&a) {
            if let Some(s) = slot.stream.lock().unwrap().take() {
                s.shutdown();
            }
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.sever();
    }
}

/// Starts the worker-side heartbeat pump: a beacon on the driver link
/// every [`heartbeat_interval`] while the endpoint lives.
pub(crate) fn spawn_heartbeat(ep: Arc<Endpoint>) {
    let interval = heartbeat_interval();
    let _ = std::thread::Builder::new()
        .name(format!("raxpp-hb-{}", ep.me))
        .spawn(move || {
            while ep.alive.load(Ordering::Relaxed) {
                let _ = ep.send_heartbeat();
                std::thread::sleep(interval);
            }
        });
}

// ---------------------------------------------------------------------
// Driver-side transport
// ---------------------------------------------------------------------

/// Monotone fleet-directory counter so concurrent runtimes in one
/// process never collide.
static FLEET_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_fleet_dir() -> PathBuf {
    let c = FLEET_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("raxpp-wire-{}-{c}", std::process::id()))
}

enum Backend {
    /// Workers are threads in this process, but every byte of fabric
    /// traffic crosses real sockets — the wire path CI exercises.
    Threads { eps: Vec<Option<Arc<Endpoint>>> },
    /// Workers are separate OS processes (`raxpp-launch`).
    Processes {
        children: Vec<Option<Child>>,
        spawn: Box<dyn FnMut(usize) -> std::io::Result<Child> + Send>,
    },
}

/// The socket [`Transport`]: a driver endpoint plus a worker fleet on
/// either the thread or the process backend.
pub(crate) struct SocketTransport {
    n: usize,
    scheme: Scheme,
    dir: PathBuf,
    own_dir: bool,
    driver_ep: Arc<Endpoint>,
    stats: Arc<WireStats>,
    hb_timeout: Duration,
    backend: Backend,
}

impl SocketTransport {
    fn driver_endpoint(
        n: usize,
        dir: &Path,
        scheme: Scheme,
        stats: &Arc<WireStats>,
    ) -> Arc<Endpoint> {
        let routes = Routes::Driver {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            last_heard: (0..n).map(|_| Mutex::new(Instant::now())).collect(),
        };
        Endpoint::bind(DRIVER, dir, scheme, Arc::clone(stats), routes)
            .expect("bind driver endpoint")
    }

    /// Thread-backed socket fleet in a fresh temp directory.
    pub(crate) fn threads(n: usize, scheme: Scheme) -> SocketTransport {
        let dir = fresh_fleet_dir();
        std::fs::create_dir_all(&dir).expect("create fleet dir");
        let stats = Arc::new(WireStats::default());
        let driver_ep = Self::driver_endpoint(n, &dir, scheme, &stats);
        SocketTransport {
            n,
            scheme,
            dir,
            own_dir: true,
            driver_ep,
            stats,
            hb_timeout: heartbeat_timeout(),
            backend: Backend::Threads {
                eps: (0..n).map(|_| None).collect(),
            },
        }
    }

    /// Process-backed fleet: `spawn(a)` launches worker `a` (which must
    /// call [`crate::transport::serve_worker`] against the same
    /// directory).
    pub(crate) fn processes(
        n: usize,
        dir: &Path,
        scheme: Scheme,
        spawn: Box<dyn FnMut(usize) -> std::io::Result<Child> + Send>,
    ) -> std::io::Result<SocketTransport> {
        std::fs::create_dir_all(dir)?;
        let stats = Arc::new(WireStats::default());
        let driver_ep = Self::driver_endpoint(n, dir, scheme, &stats);
        Ok(SocketTransport {
            n,
            scheme,
            dir: dir.to_path_buf(),
            own_dir: false,
            driver_ep,
            stats,
            hb_timeout: heartbeat_timeout(),
            backend: Backend::Processes {
                children: (0..n).map(|_| None).collect(),
                spawn,
            },
        })
    }
}

impl Transport for SocketTransport {
    fn kind(&self) -> TransportKind {
        match self.scheme {
            Scheme::Uds => TransportKind::UnixSocket,
            Scheme::Tcp => TransportKind::Tcp,
        }
    }

    fn supports_lanes(&self) -> bool {
        // Shared-memory rendezvous cannot span processes; all
        // collectives take the (bitwise-identical) message-ring path.
        false
    }

    fn spawn_actor(
        &mut self,
        a: usize,
        program: &Arc<MpmdProgram>,
        origin: Instant,
        lane: Option<crate::lane::LaneCtx>,
    ) -> ActorLink {
        debug_assert!(lane.is_none(), "socket transport runs without lanes");
        let (reply_tx, reply_rx) = channel::<Reply>();
        // Order matters: sever the old presence first so nothing stale
        // can accept, then install the fresh reply slot and clear the
        // driver's cached command link so the next send re-dials.
        match &mut self.backend {
            Backend::Threads { eps } => {
                if let Some(old) = eps[a].take() {
                    old.sever();
                }
                self.driver_ep.set_reply_slot(a, reply_tx);
                self.driver_ep.reset_heard(a);
                self.driver_ep.clear_link(a);
                let (cmd_tx, cmd_rx) = channel::<Command>();
                let (inbox_tx, inbox_rx) = channel::<Msg>();
                let routes = Routes::Worker {
                    inbox: Mutex::new(Some(inbox_tx)),
                    cmd: Mutex::new(Some(cmd_tx)),
                };
                let ep = Endpoint::bind(a, &self.dir, self.scheme, Arc::clone(&self.stats), routes)
                    .expect("bind worker endpoint");
                spawn_heartbeat(Arc::clone(&ep));
                let fabric = Fabric::Wire {
                    ep: Arc::clone(&ep),
                    n: self.n,
                };
                let reply = ReplyPort::Wire(Arc::clone(&ep));
                let program = Arc::clone(program);
                let handle = std::thread::Builder::new()
                    .name(format!("raxpp-actor-{a}"))
                    .spawn(move || {
                        let _ =
                            actor_main(a, program, cmd_rx, reply, fabric, inbox_rx, origin, None);
                    })
                    .expect("spawn actor thread");
                eps[a] = Some(ep);
                ActorLink {
                    cmd: CmdPort::Wire {
                        ep: Arc::clone(&self.driver_ep),
                        peer: a,
                    },
                    reply: reply_rx,
                    handle: Some(handle),
                    dead: false,
                }
            }
            Backend::Processes { children, spawn } => {
                if let Some(mut old) = children[a].take() {
                    let _ = old.kill();
                    let _ = old.wait();
                }
                // A killed worker leaves a stale socket file behind;
                // the respawned process re-binds the same path.
                self.driver_ep.set_reply_slot(a, reply_tx);
                self.driver_ep.reset_heard(a);
                self.driver_ep.clear_link(a);
                let child = spawn(a).expect("spawn worker process");
                children[a] = Some(child);
                ActorLink {
                    cmd: CmdPort::Wire {
                        ep: Arc::clone(&self.driver_ep),
                        peer: a,
                    },
                    reply: reply_rx,
                    handle: None,
                    dead: false,
                }
            }
        }
    }

    fn broadcast_abort(&self, epoch: u64, reason: &str) {
        for a in 0..self.n {
            let _ = self.driver_ep.send_msg(
                a,
                &Msg {
                    from: DRIVER,
                    epoch,
                    payload: Payload::Abort(reason.to_string()),
                },
            );
        }
    }

    fn heartbeat_suspect(&self, a: usize) -> bool {
        self.driver_ep.heard_elapsed(a) > self.hb_timeout
    }

    fn note_heartbeat_miss(&self) {
        self.stats.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
    }

    fn heal_wire(&self) {
        for a in 0..self.n {
            self.driver_ep.reset_heard(a);
        }
    }

    fn finished(&mut self, a: usize) -> bool {
        match &mut self.backend {
            Backend::Threads { .. } => false,
            Backend::Processes { children, .. } => match children[a].as_mut() {
                Some(c) => matches!(c.try_wait(), Ok(Some(_))),
                None => true,
            },
        }
    }

    fn needs_program_replay(&self) -> bool {
        matches!(self.backend, Backend::Processes { .. })
    }

    fn kill_process(&mut self, a: usize) -> bool {
        match &mut self.backend {
            Backend::Threads { .. } => false,
            Backend::Processes { children, .. } => children[a]
                .as_mut()
                .map(|c| c.kill().is_ok())
                .unwrap_or(false),
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        match &mut self.backend {
            Backend::Threads { eps } => {
                for ep in eps.iter().flatten() {
                    ep.sever();
                }
            }
            Backend::Processes { children, .. } => {
                // The driver already sent Shutdown; give each worker a
                // moment to exit cleanly, then force it.
                let deadline = Instant::now() + Duration::from_secs(5);
                for c in children.iter_mut().flatten() {
                    loop {
                        match c.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) if Instant::now() < deadline => {
                                std::thread::sleep(Duration::from_millis(10))
                            }
                            _ => {
                                let _ = c.kill();
                                let _ = c.wait();
                                break;
                            }
                        }
                    }
                }
            }
        }
        self.driver_ep.sever();
        if self.own_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

// ---------------------------------------------------------------------
// Worker-process entry point
// ---------------------------------------------------------------------

/// Configuration for one worker process of a socket fleet.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's actor id.
    pub me: usize,
    /// Number of actors in the fleet.
    pub n_actors: usize,
    /// The fleet directory holding every endpoint's socket.
    pub dir: PathBuf,
    /// Use TCP over loopback instead of Unix-domain sockets.
    pub tcp: bool,
}

/// Runs one worker of a process fleet to completion: binds the
/// worker's endpoint in `cfg.dir`, starts its heartbeat, and serves
/// the actor loop until the driver shuts it down (or its control link
/// closes). A worker that consumes a kill fault exits via
/// [`std::process::abort`] — genuine kill -9 semantics, no unwinding,
/// no goodbye.
///
/// `program` must be the same compiled program the driver executes;
/// compilation is deterministic, so driver and workers compile it
/// independently from the same spec instead of shipping it across the
/// wire.
///
/// # Errors
///
/// Returns any I/O error from binding the worker's socket.
pub fn serve_worker(program: MpmdProgram, cfg: &WorkerConfig) -> std::io::Result<()> {
    let scheme = if cfg.tcp { Scheme::Tcp } else { Scheme::Uds };
    let stats = Arc::new(WireStats::default());
    let (cmd_tx, cmd_rx) = channel::<Command>();
    let (inbox_tx, inbox_rx) = channel::<Msg>();
    let routes = Routes::Worker {
        inbox: Mutex::new(Some(inbox_tx)),
        cmd: Mutex::new(Some(cmd_tx)),
    };
    let ep = Endpoint::bind(cfg.me, &cfg.dir, scheme, stats, routes)?;
    spawn_heartbeat(Arc::clone(&ep));
    let fabric = Fabric::Wire {
        ep: Arc::clone(&ep),
        n: cfg.n_actors,
    };
    let reply = ReplyPort::Wire(Arc::clone(&ep));
    let exit = actor_main(
        cfg.me,
        Arc::new(program),
        cmd_rx,
        reply,
        fabric,
        inbox_rx,
        Instant::now(),
        None,
    );
    if matches!(exit, Exit::Killed) {
        std::process::abort();
    }
    Ok(())
}
