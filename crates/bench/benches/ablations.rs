//! Ablations of RaxPP's design decisions, run on both the executable
//! runtime (message counts) and the performance model (time):
//!
//! * **loop commuting** (§3.4): cross-actor messages for a
//!   tied-embedding model, commuted vs naive;
//! * **task fusion** (§4.4): one dispatch per actor vs one RPC per task;
//! * **asynchronous P2P** (§4.2): overlap on vs off;
//! * **rematerialization policy** (§5.3): forced policies vs the
//!   automatic choice;
//! * **zero-bubble split backward** (extension; §6/related work): ZB-H1
//!   vs 1F1B at paper scale.

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_ir::TraceCtx;
use raxpp_models::{ModelConfig, RematPolicy};
use raxpp_sched::one_f1b;
use raxpp_simcluster::{simulate_pipeline, ClusterSpec, ParallelConfig, ScheduleKind, SimOptions};
use raxpp_taskgraph::{pipeline_model, program_stats, unroll_loop, UnrollOptions};

fn main() {
    let mut records = Vec::new();

    // --- Loop commuting (§3.4): compiled-program message counts -------
    let ctx = TraceCtx::new();
    let w = ctx.input([8, 8]); // tied weight used in both stages
    let x = ctx.input([2, 8]);
    let h = ctx.pipeline_yield(&x.matmul(&w).unwrap().tanh());
    let y = h.matmul(&w).unwrap();
    let loss = y.mul(&y).unwrap().sum();
    let jaxpr = ctx.finish(&[loss]).unwrap();
    let model = pipeline_model(&jaxpr, 1).unwrap();
    let schedule = one_f1b(2, 16).unwrap();
    println!("Ablation 1 — loop commuting (§3.4), tied weight, 16 microbatches");
    println!(
        "{:<12} {:>10} {:>14} {:>16}",
        "mode", "messages", "grad messages", "bytes on wire"
    );
    rule(56);
    for commuting in [true, false] {
        let compiled = unroll_loop(
            &model,
            &schedule,
            UnrollOptions {
                loop_commuting: commuting,
            },
        )
        .unwrap();
        let stats = program_stats(&compiled.program);
        let msgs = stats.total_messages();
        let grad_msgs = msgs - 2 * 16; // minus activations + cotangents
        let mode = if commuting { "commuted" } else { "naive" };
        println!(
            "{mode:<12} {msgs:>10} {grad_msgs:>14} {:>16}",
            stats.total_bytes()
        );
        records.push(Compared::new(
            format!("commuting={commuting}/bytes"),
            stats.total_bytes() as f64,
            None,
        ));
    }
    println!("commuted: one gradient message total; naive: one per microbatch.\n");

    // --- The remaining ablations on the performance model -------------
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    let par = ParallelConfig::jaxpp_gpt3(1);

    println!("Ablation 2 — task fusion (§4.4), GPT-3 175B @ 64 GPUs");
    for per_task_rpc in [false, true] {
        let r = simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions {
                per_task_rpc,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let label = if per_task_rpc {
            "per-task RPCs"
        } else {
            "fused (1/actor)"
        };
        println!(
            "  {label:<18} step {:>6.2}s  dispatch {:>6.3}s/GPU",
            r.step_time, r.breakdown.dispatch
        );
        records.push(Compared::new(
            format!("fusion={}", !per_task_rpc),
            r.step_time,
            None,
        ));
    }

    println!("\nAblation 3 — asynchronous P2P (§4.2)");
    for async_p2p in [true, false] {
        let r = simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions {
                async_p2p,
                ..SimOptions::default()
            },
        )
        .unwrap();
        let label = if async_p2p { "async" } else { "sync" };
        println!(
            "  {label:<6} step {:>6.2}s  sender-blocked {:>6.3}s/GPU",
            r.step_time, r.breakdown.sync_send_block
        );
        records.push(Compared::new(
            format!("async_p2p={async_p2p}"),
            r.step_time,
            None,
        ));
    }

    println!("\nAblation 4 — rematerialization policy (§5.3)");
    for (label, force) in [
        ("auto", None),
        ("selective", Some(RematPolicy::Selective)),
        ("full", Some(RematPolicy::Full)),
    ] {
        match simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions {
                force_remat: force,
                ..SimOptions::default()
            },
        ) {
            Ok(r) => {
                println!(
                    "  {label:<10} step {:>6.2}s  remat {:>6.3}s/GPU  mem {:>5.1} GB ({:?})",
                    r.step_time,
                    r.breakdown.remat,
                    r.peak_mem_bytes / 1e9,
                    r.remat_policy
                );
                records.push(Compared::new(format!("remat={label}"), r.step_time, None));
            }
            Err(e) => println!("  {label:<10} infeasible: {e}"),
        }
    }
    println!("\nAblation 5 — zero-bubble split backward (extension)");
    let base = ParallelConfig {
        pp: 8,
        tp: 8,
        dp: 1,
        microbatch: 4,
        n_microbatches: 32,
        circular_repeat: 1,
        schedule: ScheduleKind::OneF1B,
    };
    for (label, kind) in [
        ("1f1b", ScheduleKind::OneF1B),
        ("zb-h1", ScheduleKind::ZeroBubbleH1),
    ] {
        let r = simulate_pipeline(
            &gpt3,
            ParallelConfig {
                schedule: kind,
                ..base
            },
            &eos,
            &SimOptions::default(),
        )
        .unwrap();
        println!(
            "  {label:<6} step {:>6.2}s  bubble {:>6.3}s/GPU  {:>4.0} TFLOPS",
            r.step_time, r.breakdown.bubble, r.tflops_per_gpu
        );
        records.push(Compared::new(
            format!("schedule={label}"),
            r.step_time,
            None,
        ));
    }
    dump_json("ablations", &records);
}
