//! Failure-mode benchmark for the fail-fast MPMD runtime.
//!
//! For an injected actor death at each stage of a 4-stage GPipe
//! pipeline, measures:
//!
//! * **time-to-error** — how long `Trainer::step` takes to surface
//!   `ActorDied` once the stage dies mid-stream (the abort broadcast
//!   must wake every peer blocked in `Recv`; before the fail-fast
//!   protocol this hung forever);
//! * **recover time** — `Runtime::recover` alone: respawn the dead
//!   thread, rewire peers, re-place driver-held `Param`/`State` buffers;
//! * **retry time** — `Trainer::step_with_recovery` after the manual
//!   recover: snapshot restore plus the full retried step.
//!
//! Also measures time-to-error for a pure task error (no death, no
//! respawn needed) at each stage, and asserts after every recovery that
//! the retried step's losses are **bitwise identical** to an
//! uninterrupted twin run — the determinism contract of recovery.
//!
//! Two degraded-mode figures ride along: **rebalance latency**
//! (`Trainer::rebalance` folding a dead actor's stages onto the
//! survivors, bitwise parity asserted afterwards) and **checkpoint
//! save/load throughput** (the v2 checksummed format through
//! `save_checkpoint`/`restore_checkpoint`, fsynced on save).
//!
//! A **wire** section repeats the drills on the Unix-socket transport:
//! kill -9 detection latency (`kill9_detect_us` — the actor's endpoint
//! is severed with no abort broadcast, detection rests on closed
//! connections and heartbeat silence), endpoint respawn
//! (`reconnect_us` — sever → re-bind → re-dial inside
//! `Runtime::recover`), the retried step, and the marginal cost of a
//! forced connection drop mid-step (`drop_redial_us`).
//!
//! Writes `BENCH_failure.json` at the workspace root.
//!
//! Knob: `RAXPP_BENCH_FAILURE_TRIALS` (trials per stage, default 3).

use std::time::{Duration, Instant};

use raxpp_bench::{median, rule, workspace_root, write_json, Json};
use raxpp_core::{compile_train_step, CompileOptions, CoreError, Optimizer, RetryPolicy, Trainer};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_runtime::{Fault, RuntimeError, TransportKind};
use raxpp_sched::gpipe;

const WIDTH: usize = 64;
const BATCH: usize = 16;
const LAYERS: usize = 4;
const STAGES: usize = 4;
const N_MB: usize = 4;

fn trials() -> usize {
    std::env::var("RAXPP_BENCH_FAILURE_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn build_on(seed: u64, kind: TransportKind) -> (Trainer, Vec<Vec<Tensor>>) {
    let schedule = gpipe(STAGES, N_MB).unwrap();
    let model = mlp_chain(WIDTH, BATCH, LAYERS, STAGES, seed).unwrap();
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let data = vec![(0..N_MB)
        .map(|_| Tensor::randn([BATCH, WIDTH], 1.0, &mut rng))
        .collect()];
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 1e-3 },
        CompileOptions {
            transport: Some(kind),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    (trainer, data)
}

fn build(seed: u64) -> (Trainer, Vec<Vec<Tensor>>) {
    build_on(seed, TransportKind::Mpsc)
}

struct StageResult {
    stage: usize,
    death_tte: Duration,
    recover: Duration,
    retry: Duration,
    error_tte: Duration,
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let trials = trials();
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
        rebalance_after: None,
    };
    println!(
        "failure: {STAGES}-stage MLP {LAYERS}x[{WIDTH},{WIDTH}], batch [{BATCH},{WIDTH}], \
         {N_MB} microbatches, gpipe, {trials} trials/stage"
    );
    rule(76);

    let mut results = Vec::new();
    for stage in 0..STAGES {
        let mut death_tte = Vec::new();
        let mut recover = Vec::new();
        let mut retry = Vec::new();
        let mut error_tte = Vec::new();
        for trial in 0..trials {
            let seed = 1000 + (stage * trials + trial) as u64;
            // Uninterrupted twin: the parity oracle for this trial.
            let (twin, twin_data) = build(seed);
            let baseline = twin.step(&twin_data).unwrap().losses;

            // Injected death mid-stream: time-to-error, recover, retry.
            let (trainer, data) = build(seed);
            trainer
                .runtime()
                .inject_fault(stage, Fault::DieAtInstr(2))
                .unwrap();
            let t0 = Instant::now();
            match trainer.step(&data) {
                Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
                other => panic!("stage {stage}: expected ActorDied, got {other:?}"),
            }
            death_tte.push(t0.elapsed());
            let t0 = Instant::now();
            let report = trainer.runtime().recover().unwrap();
            recover.push(t0.elapsed());
            assert_eq!(report.respawned, vec![stage]);
            let t0 = Instant::now();
            let out = trainer.step_with_recovery(&data, policy).unwrap();
            retry.push(t0.elapsed());
            assert_eq!(
                out.losses, baseline,
                "stage {stage} trial {trial}: post-recovery losses not bitwise identical"
            );

            // Pure task error: no respawn, the runtime drains in place.
            let (trainer, data) = build(seed);
            trainer
                .runtime()
                .inject_fault(stage, Fault::ErrorAtInstr(0))
                .unwrap();
            let t0 = Instant::now();
            match trainer.step(&data) {
                Err(CoreError::Runtime(RuntimeError::Exec { actor, .. })) => {
                    assert_eq!(actor, stage)
                }
                other => panic!("stage {stage}: expected Exec error, got {other:?}"),
            }
            error_tte.push(t0.elapsed());
            let out = trainer.step(&data).unwrap();
            assert_eq!(
                out.losses, baseline,
                "stage {stage} trial {trial}: step after task error not bitwise identical"
            );
        }
        let r = StageResult {
            stage,
            death_tte: median(&death_tte),
            recover: median(&recover),
            retry: median(&retry),
            error_tte: median(&error_tte),
        };
        println!(
            "stage {}: death time-to-error {:>9.2?}  recover {:>9.2?}  retry {:>9.2?}  \
             task-error time-to-error {:>9.2?}",
            r.stage, r.death_tte, r.recover, r.retry, r.error_tte,
        );
        results.push(r);
    }
    rule(76);
    println!("bitwise post-recovery loss parity: OK ({STAGES} stages x {trials} trials)");

    // Elastic degraded mode: latency of folding a dead actor's stages
    // onto the survivors, with bitwise parity asserted on the shrunken
    // fleet.
    let mut rebalance_times = Vec::new();
    for trial in 0..trials {
        let seed = 2000 + trial as u64;
        let (twin, twin_data) = build(seed);
        let baseline = twin.step(&twin_data).unwrap().losses;
        let (trainer, data) = build(seed);
        trainer
            .runtime()
            .inject_fault(1, Fault::DieAtInstr(2))
            .unwrap();
        match trainer.step(&data) {
            Err(CoreError::Runtime(RuntimeError::ActorDied { .. })) => {}
            other => panic!("rebalance trial {trial}: expected ActorDied, got {other:?}"),
        }
        let t0 = Instant::now();
        trainer.rebalance(&[1]).unwrap();
        rebalance_times.push(t0.elapsed());
        let out = trainer.step_with_recovery(&data, policy).unwrap();
        assert_eq!(
            out.losses, baseline,
            "rebalance trial {trial}: degraded-mode losses not bitwise identical"
        );
    }
    let rebalance = median(&rebalance_times);
    println!("rebalance (fold 1 of {STAGES} actors): {rebalance:>9.2?}");

    // Checkpoint throughput: fsynced v2 save and checksum-verified load
    // of the full training state.
    let ckpt_path = workspace_root().join("target/bench-failure-ckpt.bin");
    let (trainer, data) = build(3000);
    trainer.step(&data).unwrap();
    let mut save_times = Vec::new();
    let mut load_times = Vec::new();
    for _ in 0..trials {
        let t0 = Instant::now();
        let mut f = std::fs::File::create(&ckpt_path).unwrap();
        trainer.save_checkpoint(&mut f).unwrap();
        f.sync_all().unwrap();
        save_times.push(t0.elapsed());
        let t0 = Instant::now();
        let bytes = std::fs::read(&ckpt_path).unwrap();
        trainer.restore_checkpoint(bytes.as_slice()).unwrap();
        load_times.push(t0.elapsed());
    }
    let ckpt_mb = std::fs::metadata(&ckpt_path).unwrap().len() as f64 / (1024.0 * 1024.0);
    let _ = std::fs::remove_file(&ckpt_path);
    let ckpt_save_mb_s = ckpt_mb / secs(median(&save_times));
    let ckpt_load_mb_s = ckpt_mb / secs(median(&load_times));
    println!(
        "checkpoint ({ckpt_mb:.2} MiB): save {ckpt_save_mb_s:>8.1} MiB/s  \
         load {ckpt_load_mb_s:>8.1} MiB/s"
    );
    rule(76);

    // Wire resilience: the same drills over the Unix-socket transport.
    // kill -9 severs actor 1's endpoint mid-stream with no abort
    // broadcast — detection rests on closed connections, reply-link EOF
    // and heartbeat silence; recovery re-binds the endpoint and every
    // peer transparently re-dials.
    let mut kill9_detect = Vec::new();
    let mut wire_recover = Vec::new();
    let mut wire_retry = Vec::new();
    let mut clean_steps = Vec::new();
    let mut drop_steps = Vec::new();
    for trial in 0..trials {
        let seed = 4000 + trial as u64;
        let (twin, twin_data) = build(seed);
        let base1 = twin.step(&twin_data).unwrap().losses;
        let base2 = twin.step(&twin_data).unwrap().losses;
        let base3 = twin.step(&twin_data).unwrap().losses;

        let (trainer, data) = build_on(seed, TransportKind::UnixSocket);
        trainer
            .runtime()
            .inject_fault(1, Fault::KillAtInstr(2))
            .unwrap();
        let t0 = Instant::now();
        match trainer.step(&data) {
            Err(CoreError::Runtime(
                RuntimeError::ActorDied { .. } | RuntimeError::Timeout { .. },
            )) => {}
            other => panic!("wire trial {trial}: expected ActorDied/Timeout, got {other:?}"),
        }
        kill9_detect.push(t0.elapsed());
        let t0 = Instant::now();
        let report = trainer.runtime().recover().unwrap();
        wire_recover.push(t0.elapsed());
        assert_eq!(report.respawned, vec![1]);
        let t0 = Instant::now();
        let out = trainer.step_with_recovery(&data, policy).unwrap();
        wire_retry.push(t0.elapsed());
        assert_eq!(
            out.losses, base1,
            "wire trial {trial}: post-kill losses not bitwise identical to mpsc twin"
        );

        // Marginal cost of a forced connection drop: clean step vs a
        // step whose first frame to a live peer must re-dial.
        let t0 = Instant::now();
        let out = trainer.step(&data).unwrap();
        clean_steps.push(t0.elapsed());
        assert_eq!(out.losses, base2);
        trainer
            .runtime()
            .inject_fault(0, Fault::DropLink { peer: 1 })
            .unwrap();
        let t0 = Instant::now();
        let out = trainer.step(&data).unwrap();
        drop_steps.push(t0.elapsed());
        assert_eq!(
            out.losses, base3,
            "wire trial {trial}: forced drop changed training bits"
        );
    }
    let kill9_detect = median(&kill9_detect);
    let wire_recover = median(&wire_recover);
    let wire_retry = median(&wire_retry);
    let drop_redial = median(&drop_steps).saturating_sub(median(&clean_steps));
    println!(
        "wire (uds): kill -9 detect {:>9.2?}  respawn+redial {:>9.2?}  retry {:>9.2?}  \
         drop re-dial {:>9.2?}",
        kill9_detect, wire_recover, wire_retry, drop_redial,
    );
    rule(76);

    let json = Json::obj(vec![
        (
            "workload",
            Json::Str(format!(
                "{STAGES}-stage MLP {LAYERS}x[{WIDTH},{WIDTH}], batch [{BATCH},{WIDTH}], \
                 {N_MB} microbatches, gpipe"
            )),
        ),
        ("trials_per_stage", Json::Num(trials as f64)),
        (
            "stages",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("stage", Json::Num(r.stage as f64)),
                            ("death_time_to_error_s", Json::Num(secs(r.death_tte))),
                            ("recover_s", Json::Num(secs(r.recover))),
                            ("retry_step_s", Json::Num(secs(r.retry))),
                            ("task_error_time_to_error_s", Json::Num(secs(r.error_tte))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("rebalance_us", Json::Num(secs(rebalance) * 1e6)),
        (
            "wire",
            Json::obj(vec![
                ("transport", Json::Str("uds".into())),
                ("kill9_detect_us", Json::Num(secs(kill9_detect) * 1e6)),
                ("reconnect_us", Json::Num(secs(wire_recover) * 1e6)),
                ("retry_step_s", Json::Num(secs(wire_retry))),
                ("drop_redial_us", Json::Num(secs(drop_redial) * 1e6)),
            ]),
        ),
        ("ckpt_size_mb", Json::Num(ckpt_mb)),
        ("ckpt_save_mb_s", Json::Num(ckpt_save_mb_s)),
        ("ckpt_load_mb_s", Json::Num(ckpt_load_mb_s)),
        ("bitwise_recovery_parity", Json::Bool(true)),
    ]);
    let path = workspace_root().join("BENCH_failure.json");
    write_json(&path, &json);
    println!("wrote {}", path.display());
}
