//! Figure 9: throughput comparison between SPMD pipeline parallelism,
//! RaxPP (JaxPP), JAX FSDP, and NeMo on GPT-3 175B (128 GPUs) and
//! Llama2 70B (64 GPUs), normalized to RaxPP.
//!
//! Paper claims: RaxPP is 1.446x SPMD PP, 1.11x FSDP, and reaches 91.4%
//! of NeMo on GPT-3; on Llama2 it matches FSDP and reaches 83.2% of
//! NeMo (our NeMo model is kinder to JaxPP there — see EXPERIMENTS.md).

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_core::experiments::{paper, table1};
use raxpp_simcluster::ClusterSpec;

fn main() {
    let rows = table1(&ClusterSpec::eos()).expect("table 1 configs are feasible");
    let mut records = Vec::new();
    for (model, gpus) in [("GPT-3 175B", 128usize), ("Llama2 70B", 64)] {
        // Normalize throughput to RaxPP at the comparison point.
        let base = rows
            .iter()
            .find(|r| {
                r.system == "RaxPP (JaxPP)"
                    && r.model == model
                    && (model != "GPT-3 175B" || r.gpus == gpus)
            })
            .unwrap();
        println!("Figure 9 — {model} ({gpus} GPUs), throughput relative to RaxPP");
        println!(
            "{:>16} | {:>10} {:>10} {:>8}",
            "system", "TFLOPS", "relative", "bar"
        );
        rule(52);
        for r in rows.iter().filter(|r| r.model == model) {
            if model == "GPT-3 175B" && r.system == "RaxPP (JaxPP)" && r.gpus != gpus {
                continue;
            }
            if model == "GPT-3 175B" && r.system == "JAX FSDP" && r.gpus != gpus {
                continue;
            }
            let rel = (base.step_time / r.step_time) * (r.gbs as f64 / base.gbs as f64);
            let bar = "#".repeat((rel * 20.0).round() as usize);
            println!("{:>16} | {:>10.0} {:>10.3} {bar}", r.system, r.tflops, rel);
            records.push(Compared::new(format!("{model}/{}", r.system), rel, None));
        }
        println!();
    }
    println!(
        "paper ratios on GPT-3: SPMD PP 1/{:.3}, FSDP 1/{:.2}, NeMo 1/{:.3}",
        paper::SPEEDUP_OVER_SPMD_PP,
        paper::SPEEDUP_OVER_FSDP,
        paper::FRACTION_OF_NEMO
    );
    dump_json("fig9", &records);
}
