//! End-to-end training-step wall-time benchmark for the executable
//! MPMD path (ISSUE acceptance gate).
//!
//! Runs a 4-stage tanh MLP at `[256,1024]x[1024,1024]` scale under a
//! GPipe schedule twice:
//!
//! * **optimized** — the default backend: blocked/parallel kernels,
//!   zero-copy `Arc` tensors, and the buffer-reuse interpreter
//!   (`RAXPP_THREADS=4`);
//! * **reference** — the seed-equivalent baseline
//!   (`set_reference_mode(true)`): naive kernels, deep-copied
//!   operands/results, single-threaded.
//!
//! Both paths start from the same initial parameters and consume the
//! same data, so per-step losses must match **bitwise** — asserted
//! here, which makes the benchmark double as an integration check of
//! the bit-compatibility contract.
//!
//! Writes `BENCH_step.json` at the workspace root with median/p95 step
//! wall time, per-step RPC count, peak resident store bytes, allocator
//! stats, and the measured speedup — plus `BENCH_trace.json`, the
//! chrome-trace export of one traced step (see `docs/observability.md`),
//! after asserting that tracing is zero-cost while disabled.
//!
//! Knobs: `RAXPP_BENCH_STEPS` (timed optimized steps, default 7) and
//! `RAXPP_BENCH_REF_STEPS` (timed reference steps, default 2 — each
//! reference step is tens of seconds).

use std::time::{Duration, Instant};

use raxpp_bench::{median, percentile, rule, workspace_root, write_json, Json};
use raxpp_core::{compile_train_step, CompileOptions, Optimizer, TpConfig, Trainer};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::{set_num_threads, set_reference_mode, EvalStats, Tensor};
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_sched::gpipe;

const WIDTH: usize = 1024;
const BATCH: usize = 256;
const LAYERS: usize = 4;
const STAGES: usize = 4;
const N_MB: usize = 4;
const THREADS: usize = 4;

fn env_steps(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn build_trainer(model: &BuiltModel) -> Trainer {
    build_trainer_tp(model, 1)
}

fn build_trainer_tp(model: &BuiltModel, tp: usize) -> Trainer {
    let schedule = gpipe(STAGES, N_MB).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 1e-3 },
        CompileOptions {
            tp: Some(TpConfig::model_parallel(tp)),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    trainer
}

/// One measured pass: `steps` timed training steps over pre-generated
/// per-step data. Returns per-step walls, per-step losses, and the
/// runtime stats of the final step.
struct Measured {
    walls: Vec<Duration>,
    losses: Vec<Vec<f32>>,
    rpcs: usize,
    peak_bytes: usize,
    alloc: EvalStats,
    kinds: Vec<(&'static str, Duration, u32)>,
}

fn run(trainer: &Trainer, data: &[Vec<Vec<Tensor>>]) -> Measured {
    let mut walls = Vec::new();
    let mut losses = Vec::new();
    let mut rpcs = 0;
    let mut alloc = EvalStats::default();
    let mut kind_map: std::collections::HashMap<&'static str, (Duration, u32)> =
        std::collections::HashMap::new();
    for step_data in data {
        let t0 = Instant::now();
        let out = trainer.step(step_data).unwrap();
        walls.push(t0.elapsed());
        losses.push(out.losses.clone());
        rpcs = out.stats.rpcs;
        alloc = out.stats.alloc_stats();
        kind_map.clear();
        for p in &out.stats.profiles {
            for (k, d, c) in p.entries() {
                let e = kind_map.entry(k).or_insert((Duration::ZERO, 0));
                e.0 += d;
                e.1 += c;
            }
        }
    }
    let mut kinds: Vec<_> = kind_map.into_iter().map(|(k, (d, c))| (k, d, c)).collect();
    kinds.sort_by_key(|x| std::cmp::Reverse(x.1));
    let peak_bytes = trainer
        .runtime()
        .peak_store_bytes()
        .map(|v| v.iter().sum())
        .unwrap_or(0);
    Measured {
        walls,
        losses,
        rpcs,
        peak_bytes,
        alloc,
        kinds,
    }
}

fn step_data(rng: &mut StdRng, steps: usize) -> Vec<Vec<Vec<Tensor>>> {
    (0..steps)
        .map(|_| {
            vec![(0..N_MB)
                .map(|_| Tensor::randn([BATCH, WIDTH], 1.0, rng))
                .collect()]
        })
        .collect()
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let steps = env_steps("RAXPP_BENCH_STEPS", 7);
    let ref_steps = env_steps("RAXPP_BENCH_REF_STEPS", 2);
    let model = mlp_chain(WIDTH, BATCH, LAYERS, STAGES, 42).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    // One shared data stream; both paths replay the same prefix so the
    // parameter trajectories — and therefore per-step losses — align.
    let data = step_data(&mut rng, steps + 1);

    println!(
        "step_time: {STAGES}-stage MLP, {LAYERS}x[{WIDTH},{WIDTH}] weights, \
         batch [{BATCH},{WIDTH}], {N_MB} microbatches, gpipe"
    );
    rule(72);

    // Optimized path: blocked kernels + zero-copy interpreter.
    set_reference_mode(false);
    set_num_threads(THREADS);
    let trainer = build_trainer(&model);
    let warm = run(&trainer, &data[..1]); // warmup step (untimed below)
    let fast = run(&trainer, &data[1..]);
    println!(
        "optimized ({THREADS} threads): median {:>8.2?}  p95 {:>8.2?}  ({steps} steps)",
        median(&fast.walls),
        percentile(&fast.walls, 95.0),
    );
    println!(
        "  rpcs/step {}  peak store {:.1} MiB  alloc/reused/freed per step: {}/{}/{}",
        fast.rpcs,
        fast.peak_bytes as f64 / (1024.0 * 1024.0),
        fast.alloc.allocated,
        fast.alloc.reused,
        fast.alloc.freed,
    );
    for &(k, d, c) in &fast.kinds {
        println!("    {k:<12} {:>9.1?} total  ({c} instrs)", d);
    }

    // Reference path: seed-equivalent deep-copy interpreter, naive
    // kernels, single thread. Fresh trainer from the same init params.
    set_reference_mode(true);
    set_num_threads(1);
    let ref_trainer = build_trainer(&model);
    let reference = run(&ref_trainer, &data[..1 + ref_steps]);
    set_reference_mode(false);
    set_num_threads(THREADS);
    // Skip the shared warmup step when timing the baseline.
    let ref_walls = &reference.walls[1..];
    println!(
        "reference (1 thread):        median {:>8.2?}  p95 {:>8.2?}  ({ref_steps} steps)",
        median(ref_walls),
        percentile(ref_walls, 95.0),
    );

    // Bit-compatibility gate: identical params + data => identical
    // losses, down to the last bit, on every overlapping step.
    let fast_losses: Vec<&Vec<f32>> = std::iter::once(&warm.losses[0])
        .chain(fast.losses.iter())
        .collect();
    for (i, want) in reference.losses.iter().enumerate() {
        assert_eq!(
            fast_losses[i], want,
            "step {i}: optimized losses diverge bitwise from reference"
        );
    }
    println!(
        "bitwise loss parity: OK over {} shared steps",
        reference.losses.len()
    );

    let speedup = secs(median(ref_walls)) / secs(median(&fast.walls));
    rule(72);
    println!("speedup (median step wall): {speedup:.2}x  (acceptance: >= 3x)");

    // Tracing overhead gate: interleave untraced and traced steps over
    // the same data so machine drift hits both populations alike. The
    // instrumentation must be zero-cost when disabled — a traced step
    // does strictly more work (timestamps, span formatting, ring
    // pushes), so an untraced step may cost at most traced + 1% noise.
    // The last traced step's spans are exported next to BENCH_step.json
    // for Perfetto.
    let pairs = steps;
    let mut off_walls = Vec::with_capacity(pairs);
    let mut on_walls = Vec::with_capacity(pairs);
    let mut last_trace = None;
    for i in 0..pairs {
        let d = &data[1 + (i % steps)];
        trainer.runtime().set_tracing(false);
        let t0 = Instant::now();
        trainer.step(d).unwrap();
        off_walls.push(t0.elapsed());
        trainer.runtime().set_tracing(true);
        let t0 = Instant::now();
        trainer.step(d).unwrap();
        on_walls.push(t0.elapsed());
        last_trace = trainer.runtime().take_step_trace();
    }
    trainer.runtime().set_tracing(false);
    let (m_off, m_on) = (median(&off_walls), median(&on_walls));
    let traced_overhead = secs(m_on) / secs(m_off) - 1.0;
    println!(
        "tracing: untraced median {:>8.2?}  traced median {:>8.2?}  \
         (traced overhead {:+.1}%, {pairs} interleaved pairs)",
        m_off,
        m_on,
        traced_overhead * 100.0,
    );
    assert!(
        secs(m_off) <= 1.01 * secs(m_on),
        "tracing-disabled step ({m_off:?}) costs more than 1% over a traced \
         step ({m_on:?}): the disabled path is not zero-cost"
    );
    let trace = last_trace.expect("traced step recorded no trace");
    let trace_path = workspace_root().join("BENCH_trace.json");
    std::fs::write(&trace_path, trace.chrome_trace_json()).unwrap();
    println!(
        "wrote {} ({} spans; load in Perfetto)",
        trace_path.display(),
        trace.span_count()
    );

    // Tensor-parallel variant: the same model and data, tp=2 (8 shard
    // actors, real ring collectives). Bitwise loss parity with the tp=1
    // trainer is the PP×TP determinism contract's acceptance gate; the
    // wall-time ratio is recorded as `tp_speedup` (on CPU actor threads
    // the collectives usually cost more than the halved matmuls save —
    // the number is a contract on overhead, not a promised win).
    let tp_trainer = build_trainer_tp(&model, 2);
    let tp_warm = run(&tp_trainer, &data[..1]);
    let tp = run(&tp_trainer, &data[1..]);
    assert_eq!(
        tp_warm.losses[0], warm.losses[0],
        "tp=2 warmup losses diverge bitwise from tp=1"
    );
    for (i, (got, want)) in tp.losses.iter().zip(fast.losses.iter()).enumerate() {
        assert_eq!(got, want, "step {i}: tp=2 losses diverge bitwise from tp=1");
    }
    let tp_collectives = tp_trainer.metrics().counter("tp_collectives_total");
    assert!(tp_collectives > 0, "tp=2 run executed no collectives");
    let tp_speedup = secs(median(&fast.walls)) / secs(median(&tp.walls));
    println!(
        "tp=2 (8 shard actors):       median {:>8.2?}  p95 {:>8.2?}  \
         (bitwise parity OK, {} collectives, tp_speedup {tp_speedup:.2}x)",
        median(&tp.walls),
        percentile(&tp.walls, 95.0),
        tp_collectives,
    );

    let json = Json::obj(vec![
        (
            "workload",
            Json::Str(format!(
                "{STAGES}-stage MLP {LAYERS}x[{WIDTH},{WIDTH}], batch [{BATCH},{WIDTH}], \
                 {N_MB} microbatches, gpipe"
            )),
        ),
        ("threads", Json::Num(THREADS as f64)),
        ("steps", Json::Num(steps as f64)),
        ("median_step_s", Json::Num(secs(median(&fast.walls)))),
        ("p95_step_s", Json::Num(secs(percentile(&fast.walls, 95.0)))),
        ("rpcs_per_step", Json::Num(fast.rpcs as f64)),
        ("peak_store_bytes", Json::Num(fast.peak_bytes as f64)),
        (
            "alloc_per_step",
            Json::obj(vec![
                ("allocated", Json::Num(fast.alloc.allocated as f64)),
                ("reused", Json::Num(fast.alloc.reused as f64)),
                ("freed", Json::Num(fast.alloc.freed as f64)),
            ]),
        ),
        (
            "reference",
            Json::obj(vec![
                ("steps", Json::Num(ref_steps as f64)),
                ("median_step_s", Json::Num(secs(median(ref_walls)))),
                ("p95_step_s", Json::Num(secs(percentile(ref_walls, 95.0)))),
                ("rpcs_per_step", Json::Num(reference.rpcs as f64)),
                ("peak_store_bytes", Json::Num(reference.peak_bytes as f64)),
            ]),
        ),
        ("speedup_median", Json::Num(speedup)),
        (
            "tensor_parallel",
            Json::obj(vec![
                ("degree", Json::Num(2.0)),
                ("median_step_s", Json::Num(secs(median(&tp.walls)))),
                ("p95_step_s", Json::Num(secs(percentile(&tp.walls, 95.0)))),
                ("collectives_per_run", Json::Num(tp_collectives as f64)),
                ("bitwise_parity", Json::Bool(true)),
            ]),
        ),
        ("tp_speedup", Json::Num(tp_speedup)),
        (
            "tracing",
            Json::obj(vec![
                ("untraced_median_step_s", Json::Num(secs(m_off))),
                ("traced_median_step_s", Json::Num(secs(m_on))),
                ("traced_overhead", Json::Num(traced_overhead)),
                ("spans", Json::Num(trace.span_count() as f64)),
            ]),
        ),
    ]);
    let path = workspace_root().join("BENCH_step.json");
    write_json(&path, &json);
    println!("wrote {}", path.display());
}
