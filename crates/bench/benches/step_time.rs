//! End-to-end training-step wall-time benchmark for the executable
//! MPMD path (ISSUE acceptance gate).
//!
//! Runs a 4-stage tanh MLP at `[256,1024]x[1024,1024]` scale under a
//! GPipe schedule twice:
//!
//! * **optimized** — the default backend: blocked/parallel kernels,
//!   zero-copy `Arc` tensors, and the buffer-reuse interpreter
//!   (`RAXPP_THREADS=4`);
//! * **reference** — the seed-equivalent baseline
//!   (`set_reference_mode(true)`): naive kernels, deep-copied
//!   operands/results, single-threaded.
//!
//! Both paths start from the same initial parameters and consume the
//! same data, so per-step losses must match **bitwise** — asserted
//! here, which makes the benchmark double as an integration check of
//! the bit-compatibility contract. Tensor-parallel variants (tp=2
//! shard-lane and serial-ring modes, plus tp=4) replay the identical
//! data stream under the same bitwise gate; the data-parallel variant
//! (dp=2, each replica training a disjoint half of the same global
//! batch with gradient-sum all-reduces) is gated on step-0 bitwise
//! parity plus bounded later-step drift — tier 2 of
//! `docs/determinism.md` — and on per-replica microbatch accounting.
//!
//! Writes `BENCH_step.json` at the workspace root with median/p95 step
//! wall time, per-step RPC count, peak resident store bytes, allocator
//! stats, the measured speedups, and the tensor-parallel
//! wire/wait/overlap accounting — plus `BENCH_trace.json`, the
//! chrome-trace export of one traced step (see `docs/observability.md`),
//! after asserting that tracing is zero-cost while disabled.
//!
//! Knobs:
//!
//! * `RAXPP_BENCH_STEPS` — timed sample steps per variant (default 9;
//!   3 in quick mode);
//! * `RAXPP_BENCH_WARMUP` — untimed warmup steps per variant, excluded
//!   from every median/p95 (default 2; 1 in quick mode);
//! * `RAXPP_BENCH_REF_STEPS` — timed reference steps (default 2 — each
//!   reference step is tens of seconds);
//! * `RAXPP_BENCH_QUICK` — any value but `0`: skip the reference and
//!   tracing sections and run only tp=1, the tp=2 lane mode, and the
//!   dp=2 replica pair, for the `scripts/verify.sh` regression gate
//!   (~seconds, not minutes);
//! * `RAXPP_BENCH_OUT` — override the JSON output path (quick mode
//!   should point this at a scratch file so the committed
//!   `BENCH_step.json` keeps its full-run numbers).

use std::time::{Duration, Instant};

use raxpp_bench::{median, percentile, rule, workspace_root, write_json, Json};
use raxpp_core::{compile_train_step, CompileOptions, DpConfig, Optimizer, TpConfig, Trainer};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::{set_num_threads, set_reference_mode, EvalStats, Tensor};
use raxpp_models::{mlp_chain, BuiltModel};
use raxpp_sched::gpipe;

const WIDTH: usize = 1024;
const BATCH: usize = 256;
const LAYERS: usize = 4;
const STAGES: usize = 4;
const N_MB: usize = 4;
const THREADS: usize = 4;

fn env_steps(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn build_trainer(model: &BuiltModel) -> Trainer {
    build_trainer_tp(model, 1)
}

fn build_trainer_tp(model: &BuiltModel, tp: usize) -> Trainer {
    let schedule = gpipe(STAGES, N_MB).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 1e-3 },
        CompileOptions {
            tp: Some(TpConfig::model_parallel(tp)),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    trainer
}

fn build_trainer_dp(model: &BuiltModel, dp: usize) -> Trainer {
    // The schedule describes one replica: the dp trainer consumes the
    // same N_MB-microbatch global batch as dp=1, each replica executing
    // its disjoint N_MB/dp slice — a true throughput split.
    let schedule = gpipe(STAGES, N_MB / dp).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 1e-3 },
        CompileOptions {
            dp: Some(DpConfig::replicas(dp)),
            ..CompileOptions::default()
        },
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    trainer
}

/// One measured pass: `steps` timed training steps over pre-generated
/// per-step data. Returns per-step walls, per-step losses, and the
/// runtime stats of the final step.
struct Measured {
    walls: Vec<Duration>,
    losses: Vec<Vec<f32>>,
    rpcs: usize,
    peak_bytes: usize,
    alloc: EvalStats,
    kinds: Vec<(&'static str, Duration, u32)>,
}

fn run(trainer: &Trainer, data: &[Vec<Vec<Tensor>>]) -> Measured {
    let mut walls = Vec::new();
    let mut losses = Vec::new();
    let mut rpcs = 0;
    let mut alloc = EvalStats::default();
    let mut kind_map: std::collections::HashMap<&'static str, (Duration, u32)> =
        std::collections::HashMap::new();
    for step_data in data {
        let t0 = Instant::now();
        let out = trainer.step(step_data).unwrap();
        walls.push(t0.elapsed());
        losses.push(out.losses.clone());
        rpcs = out.stats.rpcs;
        alloc = out.stats.alloc_stats();
        kind_map.clear();
        for p in &out.stats.profiles {
            for (k, d, c) in p.entries() {
                let e = kind_map.entry(k).or_insert((Duration::ZERO, 0));
                e.0 += d;
                e.1 += c;
            }
        }
    }
    let mut kinds: Vec<_> = kind_map.into_iter().map(|(k, (d, c))| (k, d, c)).collect();
    kinds.sort_by_key(|x| std::cmp::Reverse(x.1));
    let peak_bytes = trainer
        .runtime()
        .peak_store_bytes()
        .map(|v| v.iter().sum())
        .unwrap_or(0);
    Measured {
        walls,
        losses,
        rpcs,
        peak_bytes,
        alloc,
        kinds,
    }
}

fn step_data(rng: &mut StdRng, steps: usize) -> Vec<Vec<Vec<Tensor>>> {
    (0..steps)
        .map(|_| {
            vec![(0..N_MB)
                .map(|_| Tensor::randn([BATCH, WIDTH], 1.0, rng))
                .collect()]
        })
        .collect()
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// One tensor-parallel variant: a fresh trainer at `degree` with the
/// given collective mode, warmed and timed over the shared data stream,
/// with every step's losses asserted bitwise-equal to the tp=1 run.
struct TpVariant {
    timed: Measured,
    collectives: u64,
    wait_us: u64,
    overlap_ratio: f64,
    bytes_wire: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_tp_variant(
    model: &BuiltModel,
    data: &[Vec<Vec<Tensor>>],
    warmup: usize,
    degree: usize,
    lanes: bool,
    warm_losses: &[Vec<f32>],
    fast_losses: &[Vec<f32>],
    tag: &str,
) -> TpVariant {
    let trainer = build_trainer_tp(model, degree);
    trainer.set_tp_lanes(lanes);
    let warm = run(&trainer, &data[..warmup]);
    let timed = run(&trainer, &data[warmup..]);
    for (i, (got, want)) in warm
        .losses
        .iter()
        .chain(timed.losses.iter())
        .zip(warm_losses.iter().chain(fast_losses.iter()))
        .enumerate()
    {
        assert_eq!(
            got, want,
            "step {i}: {tag} losses diverge bitwise from tp=1"
        );
    }
    let m = trainer.metrics();
    let collectives = m.counter("tp_collectives_total");
    assert!(collectives > 0, "{tag} run executed no collectives");
    TpVariant {
        timed,
        collectives,
        wait_us: m.counter("tp_collective_wait_us"),
        overlap_ratio: m.gauge("tp_overlap_ratio").unwrap_or(0.0),
        bytes_wire: m.counter("tp_bytes_wire"),
    }
}

fn tp_json(degree: usize, lanes: bool, v: &TpVariant) -> Json {
    Json::obj(vec![
        ("degree", Json::Num(degree as f64)),
        ("lanes", Json::Bool(lanes)),
        ("median_step_s", Json::Num(secs(median(&v.timed.walls)))),
        (
            "p95_step_s",
            Json::Num(secs(percentile(&v.timed.walls, 95.0))),
        ),
        ("collectives_per_run", Json::Num(v.collectives as f64)),
        ("bytes_wire", Json::Num(v.bytes_wire as f64)),
        ("collective_wait_us", Json::Num(v.wait_us as f64)),
        ("overlap_ratio", Json::Num(v.overlap_ratio)),
        ("bitwise_parity", Json::Bool(true)),
    ])
}

/// One data-parallel variant: a fresh trainer with `replicas` pipeline
/// replicas sharing out the same N_MB-microbatch global batch. The
/// determinism gate is two-tier (`docs/determinism.md`): the *first*
/// step's pre-update losses must be bitwise-equal to the dp=1 run;
/// every later step must agree within fp32-summation bounds (the
/// gradient fold associates differently across degrees). Per-replica
/// microbatch accounting is asserted from the executed profile spans:
/// every actor runs exactly N_MB/replicas forward tasks.
struct DpVariant {
    timed: Measured,
    collectives: u64,
    wait_us: u64,
    bytes_wire: u64,
    microbatches_per_replica: usize,
}

fn run_dp_variant(
    model: &BuiltModel,
    data: &[Vec<Vec<Tensor>>],
    warmup: usize,
    replicas: usize,
    warm_losses: &[Vec<f32>],
    fast_losses: &[Vec<f32>],
    tag: &str,
) -> DpVariant {
    let trainer = build_trainer_dp(model, replicas);
    let warm = run(&trainer, &data[..warmup]);
    let timed = run(&trainer, &data[warmup..]);
    for (i, (got, want)) in warm
        .losses
        .iter()
        .chain(timed.losses.iter())
        .zip(warm_losses.iter().chain(fast_losses.iter()))
        .enumerate()
    {
        if i == 0 {
            assert_eq!(
                got, want,
                "step 0: {tag} pre-update losses diverge bitwise from dp=1"
            );
        } else {
            for (m, (x, y)) in got.iter().zip(want).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-3 * x.abs().max(1.0),
                    "step {i} mubatch {m}: {tag} loss {x} drifted beyond bounds from dp=1 {y}"
                );
            }
        }
    }
    // Span-level accounting: one more (untimed) step, then check every
    // actor executed exactly its replica's share of forward tasks.
    let n_local = N_MB / replicas;
    let acct = trainer.step(&data[data.len() - 1]).unwrap();
    for (a, p) in acct.stats.profiles.iter().enumerate() {
        let fwd = p.get("fwd").map(|(_, c)| c as usize).unwrap_or(0);
        assert_eq!(
            fwd, n_local,
            "{tag}: actor {a} ran {fwd} forward tasks, want {n_local} (N/d)"
        );
    }
    let m = trainer.metrics();
    assert_eq!(
        m.gauge("dp_microbatches_per_replica"),
        Some(n_local as f64),
        "{tag}: wrong dp_microbatches_per_replica gauge"
    );
    let collectives = m.counter("dp_collectives_total");
    assert!(collectives > 0, "{tag} run executed no DP collectives");
    DpVariant {
        timed,
        collectives,
        wait_us: m.counter("dp_collective_wait_us"),
        bytes_wire: m.counter("dp_bytes_wire"),
        microbatches_per_replica: n_local,
    }
}

fn dp_json(replicas: usize, v: &DpVariant) -> Json {
    Json::obj(vec![
        ("replicas", Json::Num(replicas as f64)),
        ("median_step_s", Json::Num(secs(median(&v.timed.walls)))),
        (
            "p95_step_s",
            Json::Num(secs(percentile(&v.timed.walls, 95.0))),
        ),
        (
            "microbatches_per_replica",
            Json::Num(v.microbatches_per_replica as f64),
        ),
        ("dp_collectives_per_run", Json::Num(v.collectives as f64)),
        ("dp_bytes_wire", Json::Num(v.bytes_wire as f64)),
        ("dp_collective_wait_us", Json::Num(v.wait_us as f64)),
        // Step-0 (pre-update) losses bitwise vs dp=1; later steps are
        // bounded, not bitwise — tier 2 of docs/determinism.md.
        ("bitwise_parity", Json::Bool(true)),
    ])
}

fn main() {
    let quick = matches!(std::env::var("RAXPP_BENCH_QUICK").as_deref(), Ok(v) if v != "0");
    let steps = env_steps("RAXPP_BENCH_STEPS", if quick { 3 } else { 9 });
    let ref_steps = env_steps("RAXPP_BENCH_REF_STEPS", 2);
    let warmup = env_steps("RAXPP_BENCH_WARMUP", if quick { 1 } else { 2 });
    let available_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let model = mlp_chain(WIDTH, BATCH, LAYERS, STAGES, 42).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    // One shared data stream; every path replays the same prefix so the
    // parameter trajectories — and therefore per-step losses — align.
    let data = step_data(&mut rng, warmup + steps);

    println!(
        "step_time: {STAGES}-stage MLP, {LAYERS}x[{WIDTH},{WIDTH}] weights, \
         batch [{BATCH},{WIDTH}], {N_MB} microbatches, gpipe \
         ({warmup} warmup + {steps} timed steps, {available_cores} cores{})",
        if quick { ", quick mode" } else { "" },
    );
    rule(72);

    // Optimized path: blocked kernels + zero-copy interpreter.
    set_reference_mode(false);
    set_num_threads(THREADS);
    let trainer = build_trainer(&model);
    let warm = run(&trainer, &data[..warmup]); // warmup steps (untimed below)
    let fast = run(&trainer, &data[warmup..]);
    println!(
        "optimized ({THREADS} threads): median {:>8.2?}  p95 {:>8.2?}  ({steps} steps)",
        median(&fast.walls),
        percentile(&fast.walls, 95.0),
    );
    println!(
        "  rpcs/step {}  peak store {:.1} MiB  alloc/reused/freed per step: {}/{}/{}",
        fast.rpcs,
        fast.peak_bytes as f64 / (1024.0 * 1024.0),
        fast.alloc.allocated,
        fast.alloc.reused,
        fast.alloc.freed,
    );
    for &(k, d, c) in &fast.kinds {
        println!("    {k:<15} {:>9.1?} total  ({c} instrs)", d);
    }

    // Reference path (skipped in quick mode): seed-equivalent deep-copy
    // interpreter, naive kernels, single thread. Fresh trainer from the
    // same init params.
    let mut reference_json = None;
    let mut speedup = None;
    if !quick {
        set_reference_mode(true);
        set_num_threads(1);
        let ref_trainer = build_trainer(&model);
        let reference = run(&ref_trainer, &data[..warmup + ref_steps]);
        set_reference_mode(false);
        set_num_threads(THREADS);
        // Skip the shared warmup steps when timing the baseline.
        let ref_walls = &reference.walls[warmup..];
        println!(
            "reference (1 thread):        median {:>8.2?}  p95 {:>8.2?}  ({ref_steps} steps)",
            median(ref_walls),
            percentile(ref_walls, 95.0),
        );

        // Bit-compatibility gate: identical params + data => identical
        // losses, down to the last bit, on every overlapping step.
        let fast_losses: Vec<&Vec<f32>> = warm.losses.iter().chain(fast.losses.iter()).collect();
        for (i, want) in reference.losses.iter().enumerate() {
            assert_eq!(
                fast_losses[i], want,
                "step {i}: optimized losses diverge bitwise from reference"
            );
        }
        println!(
            "bitwise loss parity: OK over {} shared steps",
            reference.losses.len()
        );

        let s = secs(median(ref_walls)) / secs(median(&fast.walls));
        rule(72);
        println!("speedup (median step wall): {s:.2}x  (acceptance: >= 3x)");
        speedup = Some(s);
        reference_json = Some(Json::obj(vec![
            ("steps", Json::Num(ref_steps as f64)),
            ("median_step_s", Json::Num(secs(median(ref_walls)))),
            ("p95_step_s", Json::Num(secs(percentile(ref_walls, 95.0)))),
            ("rpcs_per_step", Json::Num(reference.rpcs as f64)),
            ("peak_store_bytes", Json::Num(reference.peak_bytes as f64)),
        ]));
    }

    // Tracing overhead gate (skipped in quick mode): interleave
    // untraced and traced steps over the same data so machine drift
    // hits both populations alike. The instrumentation must be
    // zero-cost when disabled — a traced step does strictly more work
    // (timestamps, span formatting, ring pushes), so an untraced step
    // may cost at most traced + 1% noise. The last traced step's spans
    // are exported next to BENCH_step.json for Perfetto.
    let mut tracing_json = None;
    if !quick {
        let pairs = steps;
        let mut off_walls = Vec::with_capacity(pairs);
        let mut on_walls = Vec::with_capacity(pairs);
        let mut last_trace = None;
        for i in 0..pairs {
            let d = &data[warmup + (i % steps)];
            trainer.runtime().set_tracing(false);
            let t0 = Instant::now();
            trainer.step(d).unwrap();
            off_walls.push(t0.elapsed());
            trainer.runtime().set_tracing(true);
            let t0 = Instant::now();
            trainer.step(d).unwrap();
            on_walls.push(t0.elapsed());
            last_trace = trainer.runtime().take_step_trace();
        }
        trainer.runtime().set_tracing(false);
        let (m_off, m_on) = (median(&off_walls), median(&on_walls));
        let traced_overhead = secs(m_on) / secs(m_off) - 1.0;
        println!(
            "tracing: untraced median {:>8.2?}  traced median {:>8.2?}  \
             (traced overhead {:+.1}%, {pairs} interleaved pairs)",
            m_off,
            m_on,
            traced_overhead * 100.0,
        );
        assert!(
            secs(m_off) <= 1.01 * secs(m_on),
            "tracing-disabled step ({m_off:?}) costs more than 1% over a traced \
             step ({m_on:?}): the disabled path is not zero-cost"
        );
        let trace = last_trace.expect("traced step recorded no trace");
        let trace_path = workspace_root().join("BENCH_trace.json");
        std::fs::write(&trace_path, trace.chrome_trace_json()).unwrap();
        println!(
            "wrote {} ({} spans; load in Perfetto)",
            trace_path.display(),
            trace.span_count()
        );
        tracing_json = Some(Json::obj(vec![
            ("untraced_median_step_s", Json::Num(secs(m_off))),
            ("traced_median_step_s", Json::Num(secs(m_on))),
            ("traced_overhead", Json::Num(traced_overhead)),
            ("spans", Json::Num(trace.span_count() as f64)),
        ]));
    }

    // Tensor-parallel variants: the same model and data under PP×TP.
    // Bitwise loss parity with the tp=1 trainer is the determinism
    // contract's acceptance gate; the wall-time ratios are recorded as
    // `tp_speedup` (lane mode vs tp=1) and `tp_lanes_speedup` (lane
    // mode vs the serial ring on the same tp=2 program). On a
    // single-core box the lanes time-slice one CPU, so `tp_speedup`
    // measures coordination overhead, not parallel compute — read it
    // next to `available_cores`.
    let tp2 = run_tp_variant(
        &model,
        &data,
        warmup,
        2,
        true,
        &warm.losses,
        &fast.losses,
        "tp=2 (lanes)",
    );
    let tp_speedup = secs(median(&fast.walls)) / secs(median(&tp2.timed.walls));
    println!(
        "tp=2 lanes (8 shard actors): median {:>8.2?}  p95 {:>8.2?}  \
         (bitwise parity OK, {} collectives, tp_speedup {tp_speedup:.2}x)",
        median(&tp2.timed.walls),
        percentile(&tp2.timed.walls, 95.0),
        tp2.collectives,
    );
    println!(
        "  wire {:.1} MiB  collective_wait {:.1} ms  overlap_ratio {:.2}",
        tp2.bytes_wire as f64 / (1024.0 * 1024.0),
        tp2.wait_us as f64 / 1000.0,
        tp2.overlap_ratio,
    );

    // Data-parallel variant: dp=2 shards the same 4-microbatch global
    // batch across two replicas (2 microbatches each) and sums
    // gradients with real DP all-reduces. Both trainers process the
    // same samples per step, so `dp_speedup` — the wall-time ratio — is
    // a true per-sample throughput ratio. Runs in quick mode too; the
    // `scripts/verify.sh` gate checks the per-replica microbatch
    // accounting and, on multi-core boxes, the speedup itself. On a
    // single-core box the replicas time-slice one CPU and the ratio
    // measures coordination overhead instead.
    let dp2 = run_dp_variant(&model, &data, warmup, 2, &warm.losses, &fast.losses, "dp=2");
    let dp_speedup = secs(median(&fast.walls)) / secs(median(&dp2.timed.walls));
    println!(
        "dp=2 (8 replica actors):     median {:>8.2?}  p95 {:>8.2?}  \
         ({}/{N_MB} µbatches per replica, {} DP collectives, dp_speedup {dp_speedup:.2}x)",
        median(&dp2.timed.walls),
        percentile(&dp2.timed.walls, 95.0),
        dp2.microbatches_per_replica,
        dp2.collectives,
    );
    println!(
        "  dp wire {:.1} MiB  dp_collective_wait {:.1} ms",
        dp2.bytes_wire as f64 / (1024.0 * 1024.0),
        dp2.wait_us as f64 / 1000.0,
    );

    let mut tp2_serial_json = None;
    let mut tp4_json = None;
    let mut lanes_speedup = None;
    if !quick {
        // Serial-ring fallback on the identical tp=2 program: the
        // before/after of the shard-lane rendezvous.
        let tp2s = run_tp_variant(
            &model,
            &data,
            warmup,
            2,
            false,
            &warm.losses,
            &fast.losses,
            "tp=2 (serial ring)",
        );
        let ls = secs(median(&tp2s.timed.walls)) / secs(median(&tp2.timed.walls));
        println!(
            "tp=2 serial ring:            median {:>8.2?}  p95 {:>8.2?}  \
             (bitwise parity OK, lanes are {ls:.2}x vs serial)",
            median(&tp2s.timed.walls),
            percentile(&tp2s.timed.walls, 95.0),
        );
        lanes_speedup = Some(ls);
        tp2_serial_json = Some(tp_json(2, false, &tp2s));

        // tp=4: 16 shard actors, deeper sharding of the same model.
        let tp4 = run_tp_variant(
            &model,
            &data,
            warmup,
            4,
            true,
            &warm.losses,
            &fast.losses,
            "tp=4 (lanes)",
        );
        println!(
            "tp=4 lanes (16 shard actors): median {:>8.2?}  p95 {:>8.2?}  \
             (bitwise parity OK, {} collectives, overlap_ratio {:.2})",
            median(&tp4.timed.walls),
            percentile(&tp4.timed.walls, 95.0),
            tp4.collectives,
            tp4.overlap_ratio,
        );
        tp4_json = Some(tp_json(4, true, &tp4));
    }

    let mut fields = vec![
        (
            "workload",
            Json::Str(format!(
                "{STAGES}-stage MLP {LAYERS}x[{WIDTH},{WIDTH}], batch [{BATCH},{WIDTH}], \
                 {N_MB} microbatches, gpipe"
            )),
        ),
        ("quick", Json::Bool(quick)),
        ("threads", Json::Num(THREADS as f64)),
        ("available_cores", Json::Num(available_cores as f64)),
        ("warmup_steps", Json::Num(warmup as f64)),
        ("steps", Json::Num(steps as f64)),
        ("median_step_s", Json::Num(secs(median(&fast.walls)))),
        ("p95_step_s", Json::Num(secs(percentile(&fast.walls, 95.0)))),
        ("rpcs_per_step", Json::Num(fast.rpcs as f64)),
        ("peak_store_bytes", Json::Num(fast.peak_bytes as f64)),
        (
            "alloc_per_step",
            Json::obj(vec![
                ("allocated", Json::Num(fast.alloc.allocated as f64)),
                ("reused", Json::Num(fast.alloc.reused as f64)),
                ("freed", Json::Num(fast.alloc.freed as f64)),
            ]),
        ),
    ];
    if let Some(r) = reference_json {
        fields.push(("reference", r));
    }
    if let Some(s) = speedup {
        fields.push(("speedup_median", Json::Num(s)));
    }
    fields.push(("tensor_parallel", tp_json(2, true, &tp2)));
    if let Some(t) = tp2_serial_json {
        fields.push(("tensor_parallel_serial", t));
    }
    if let Some(t) = tp4_json {
        fields.push(("tensor_parallel_tp4", t));
    }
    fields.push(("tp_speedup", Json::Num(tp_speedup)));
    if let Some(ls) = lanes_speedup {
        fields.push(("tp_lanes_speedup", Json::Num(ls)));
    }
    fields.push(("data_parallel", dp_json(2, &dp2)));
    fields.push(("dp_speedup", Json::Num(dp_speedup)));
    if let Some(t) = tracing_json {
        fields.push(("tracing", t));
    }
    let json = Json::obj(fields);
    let path = match std::env::var("RAXPP_BENCH_OUT") {
        Ok(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => workspace_root().join("BENCH_step.json"),
    };
    write_json(&path, &json);
    println!("wrote {}", path.display());
}
