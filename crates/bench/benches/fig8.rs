//! Figure 8: weak scaling of GPT-3 175B training from 64 to 1024 GPUs
//! (GBS 128 → 2048): RaxPP's interleaved-1F1B pipeline vs JAX FSDP.
//!
//! Paper numbers: 92.87% (JaxPP) vs 93.97% (FSDP) scaling efficiency,
//! with JaxPP delivering higher absolute throughput and lower step time
//! at every scale.

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_core::experiments::{figure8, paper};
use raxpp_simcluster::ClusterSpec;

fn main() {
    let rows = figure8(&ClusterSpec::eos()).expect("figure 8 configs are feasible");
    println!("Figure 8 — weak scaling, GPT-3 175B, GBS 2/GPU");
    println!(
        "{:>6} | {:>14} {:>14} | {:>14} {:>14}",
        "GPUs", "RaxPP step(s)", "RaxPP TFLOPS", "FSDP step(s)", "FSDP TFLOPS"
    );
    rule(72);
    let mut records = Vec::new();
    for row in &rows {
        println!(
            "{:>6} | {:>14.2} {:>14.0} | {:>14.2} {:>14.0}",
            row.gpus,
            row.jaxpp.step_time,
            row.jaxpp.tflops_per_gpu,
            row.fsdp.step_time,
            row.fsdp.tflops_per_gpu
        );
        records.push(Compared::new(
            format!("jaxpp@{}", row.gpus),
            row.jaxpp.step_time,
            None,
        ));
        records.push(Compared::new(
            format!("fsdp@{}", row.gpus),
            row.fsdp.step_time,
            None,
        ));
    }
    let jaxpp_eff = rows[0].jaxpp.step_time / rows.last().unwrap().jaxpp.step_time;
    let fsdp_eff = rows[0].fsdp.step_time / rows.last().unwrap().fsdp.step_time;
    println!(
        "\nweak-scaling efficiency 64 → 1024 GPUs: RaxPP {:.2}% (paper {:.2}%), \
         FSDP {:.2}% (paper {:.2}%)",
        jaxpp_eff * 100.0,
        paper::WEAK_SCALING_JAXPP * 100.0,
        fsdp_eff * 100.0,
        paper::WEAK_SCALING_FSDP * 100.0
    );
    records.push(Compared::new(
        "jaxpp_efficiency",
        jaxpp_eff,
        Some(paper::WEAK_SCALING_JAXPP),
    ));
    records.push(Compared::new(
        "fsdp_efficiency",
        fsdp_eff,
        Some(paper::WEAK_SCALING_FSDP),
    ));
    dump_json("fig8", &records);
}
