//! Figure 6: GPT-3 175B on 64 GPUs, global batch 128 — step time across
//! circular-repeat degrees and microbatch sizes (paper §5.1.1).
//!
//! Expected shape: larger repeat improves throughput until tasks become
//! small enough that dispatch overheads and P2P latencies emerge; larger
//! microbatches improve kernel efficiency.

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_core::experiments::figure6;
use raxpp_simcluster::ClusterSpec;

fn main() {
    let pts = figure6(&ClusterSpec::eos());
    println!("Figure 6 — GPT-3 175B, 64 GPUs (PP=8, TP=8), GBS 128");
    println!("step time in seconds; columns = microbatch size\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>10}",
        "repeat", "mbs=1", "mbs=2", "mbs=4"
    );
    rule(46);
    let mut records = Vec::new();
    for &repeat in &[1usize, 2, 3, 4, 6, 12] {
        print!("{repeat:>8} |");
        for &mbs in &[1usize, 2, 4] {
            let p = pts
                .iter()
                .find(|p| p.circular_repeat == repeat && p.microbatch == mbs)
                .expect("grid point");
            match &p.report {
                Ok(r) => {
                    print!(" {:>10.2}", r.step_time);
                    records.push(Compared::new(
                        format!("repeat={repeat},mbs={mbs}"),
                        r.step_time,
                        None,
                    ));
                }
                Err(e) => print!(" {:>10}", format!("{e}")),
            }
        }
        println!();
    }
    let best = |mbs: usize| {
        pts.iter()
            .filter(|p| p.microbatch == mbs && p.report.is_ok())
            .min_by(|a, b| {
                a.report
                    .as_ref()
                    .unwrap()
                    .step_time
                    .partial_cmp(&b.report.as_ref().unwrap().step_time)
                    .unwrap()
            })
            .unwrap()
            .circular_repeat
    };
    println!(
        "\nbest repeat per microbatch size: mbs=1 → {}, mbs=2 → {}, mbs=4 → {}",
        best(1),
        best(2),
        best(4)
    );
    println!("paper shape: interior optimum — improving with repeat, then");
    println!("falling off as dispatch overheads emerge; larger microbatches win.");
    dump_json("fig6", &records);
}
