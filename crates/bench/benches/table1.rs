//! Table 1: full training-performance table — step time and
//! TFLOPS/device for RaxPP (JaxPP), JAX FSDP, JAX SPMD PP, and NeMo on
//! GPT-3 175B (64-1024 GPUs) and Llama2 70B (64 GPUs), printed
//! paper-vs-measured.

use raxpp_bench::{dump_json, pct_err, rule, Compared};
use raxpp_core::experiments::table1;
use raxpp_simcluster::ClusterSpec;

fn main() {
    let rows = table1(&ClusterSpec::eos()).expect("table 1 configs are feasible");
    println!("Table 1 — training performance (simulated DGX H100 / NDR400 cluster)");
    println!(
        "{:<16}{:<12}{:>6}{:>7} | {:>9}{:>9}{:>8} | {:>8}{:>8}{:>8}",
        "System", "Model", "GBS", "GPUs", "step(s)", "paper", "err", "TFLOPS", "paper", "err"
    );
    rule(100);
    let mut records = Vec::new();
    for row in &rows {
        println!(
            "{:<16}{:<12}{:>6}{:>7} | {:>9.2}{:>9.2}{:>8} | {:>8.0}{:>8.0}{:>8}",
            row.system,
            row.model,
            row.gbs,
            row.gpus,
            row.step_time,
            row.paper_step,
            pct_err(row.step_time, row.paper_step),
            row.tflops,
            row.paper_tflops,
            pct_err(row.tflops, row.paper_tflops),
        );
        records.push(Compared::new(
            format!("{}/{}@{}gpus/step", row.system, row.model, row.gpus),
            row.step_time,
            Some(row.paper_step),
        ));
        records.push(Compared::new(
            format!("{}/{}@{}gpus/tflops", row.system, row.model, row.gpus),
            row.tflops,
            Some(row.paper_tflops),
        ));
    }
    let worst = records
        .iter()
        .filter_map(|c| c.paper.map(|p| ((c.measured - p) / p).abs()))
        .fold(0.0f64, f64::max);
    println!(
        "\nworst-case deviation from the paper: {:.1}%",
        worst * 100.0
    );
    dump_json("table1", &records);
}
