//! Figure 7: GPT-3 175B on 64 GPUs, circular repeat 6 — utilization
//! (TFLOPS/device) across gradient-accumulation degrees and microbatch
//! sizes (paper §5.1.2).
//!
//! Expected shape: more microbatches shrink the pipeline bubble and
//! raise utilization, with diminishing returns; larger microbatches help
//! at every accumulation degree.

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_core::experiments::figure7;
use raxpp_simcluster::ClusterSpec;

fn main() {
    let pts = figure7(&ClusterSpec::eos());
    println!("Figure 7 — GPT-3 175B, 64 GPUs (PP=8, TP=8), repeat 6");
    println!("TFLOPS per device; columns = microbatch size\n");
    println!(
        "{:>6} | {:>10} {:>10} {:>10}",
        "GA", "mbs=1", "mbs=2", "mbs=4"
    );
    rule(44);
    let mut records = Vec::new();
    for &ga in &[8usize, 16, 32, 64, 128] {
        print!("{ga:>6} |");
        for &mbs in &[1usize, 2, 4] {
            let p = pts
                .iter()
                .find(|p| p.n_microbatches == ga && p.microbatch == mbs)
                .expect("grid point");
            match &p.report {
                Ok(r) => {
                    print!(" {:>10.0}", r.tflops_per_gpu);
                    records.push(Compared::new(
                        format!("ga={ga},mbs={mbs}"),
                        r.tflops_per_gpu,
                        None,
                    ));
                }
                Err(e) => print!(" {:>10}", format!("{e}")),
            }
        }
        println!();
    }
    println!("\npaper shape: utilization rises with accumulation (smaller bubble)");
    println!("and with microbatch size (better kernels); note the paper's caveat");
    println!("that more accumulation also lengthens end-to-end training time.");
    dump_json("fig7", &records);
}
