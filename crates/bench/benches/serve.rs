//! Serving-tier latency/throughput benchmark (ISSUE acceptance gate).
//!
//! Drives the continuous-batching engine (`raxpp-serve`) with a
//! **saturating closed-loop load**: per pipeline-slot count, `2 ×
//! n_slots` client threads each keep exactly one request in flight
//! (submit, wait, submit again) until every client has collected its
//! quota of replies. Per-request latency is measured client-side,
//! admission to reply; throughput is total replies over the loaded
//! wall.
//!
//! Sweeping the slot count (`n_mubatches` of the forward-only program:
//! 1, 2, 4, 8) yields the latency-vs-throughput curve of step-granular
//! continuous batching: more slots amortize the pipeline fill across
//! more requests (throughput up), while each request waits for a
//! larger dispatch to fill (p99 up).
//!
//! The parity gate runs per slot count: one probe request served
//! through the batching engine must be **bitwise-identical** to the
//! same request run alone through an unbatched (one-slot) forward
//! program — asserted before the JSON is written, so a committed
//! `BENCH_serve.json` with `bitwise_parity: true` is a machine-checked
//! claim.
//!
//! Writes `BENCH_serve.json` at the workspace root: per slot count,
//! p50/p99 request latency, throughput, mean slot utilization, and
//! dispatch/padding counters, plus `available_cores` (on a single-core
//! box the clients, engine, and actors time-slice one CPU, so absolute
//! latencies measure coordination overhead — read the *curve*, not the
//! numbers).
//!
//! Knobs:
//!
//! * `RAXPP_BENCH_SERVE_REQS` — replies each client collects (default
//!   40; 10 in quick mode);
//! * `RAXPP_BENCH_QUICK` — any value but `0`: smaller quota and only
//!   slot counts {1, 4}, for the `scripts/verify.sh` regression gate;
//! * `RAXPP_BENCH_OUT` — override the JSON output path (quick mode
//!   should point this at a scratch file so the committed
//!   `BENCH_serve.json` keeps its full-run numbers).

use std::time::{Duration, Instant};

use raxpp_bench::{median, percentile, rule, workspace_root, write_json, Json};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::{Jaxpr, Tensor, TraceCtx};
use raxpp_sched::gpipe;
use raxpp_serve::{compile_forward_step, ForwardOptions, ForwardStep, ServeConfig, Server};

const WIDTH: usize = 256;
const BATCH: usize = 8;
const STAGES: usize = 2;

fn env_steps(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The served model: loss = 0.5 Σ y², y = tanh(x@w1) @ w2, two
/// pipeline stages, the prediction served as aux output — the
/// training-form trace `compile_forward_step` requires.
fn model() -> Jaxpr {
    let ctx = TraceCtx::new();
    let w1 = ctx.input([WIDTH, WIDTH]);
    let w2 = ctx.input([WIDTH, WIDTH]);
    let x = ctx.input([BATCH, WIDTH]);
    let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
    let y = h.matmul(&w2).unwrap();
    let loss = y.mul(&y).unwrap().sum().scale(0.5);
    ctx.finish(&[loss, y]).unwrap()
}

fn params(rng: &mut StdRng) -> Vec<Tensor> {
    vec![
        Tensor::randn([WIDTH, WIDTH], 0.05, rng),
        Tensor::randn([WIDTH, WIDTH], 0.05, rng),
    ]
}

fn forward_step(jaxpr: &Jaxpr, n_slots: usize, weights: &[Tensor]) -> ForwardStep {
    let step = compile_forward_step(
        jaxpr,
        2,
        &gpipe(STAGES, n_slots).unwrap(),
        ForwardOptions::default(),
    )
    .unwrap();
    step.load_params(weights).unwrap();
    step
}

struct Loaded {
    latencies: Vec<Duration>,
    wall: Duration,
    replies: usize,
}

/// The closed loop: `clients` threads, one request in flight each,
/// until every thread has `quota` replies. Requests reuse a small pool
/// of pre-generated microbatches (tensors are `Arc` clones — no
/// per-request allocation noise).
fn closed_loop(server: &Server, pool: &[Tensor], clients: usize, quota: usize) -> Loaded {
    let t0 = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(quota);
                    for i in 0..quota {
                        let x = pool[(c + i) % pool.len()].clone();
                        let t = Instant::now();
                        server.infer(vec![x]).expect("loaded request failed");
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::with_capacity(clients * quota);
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all
    });
    Loaded {
        wall: t0.elapsed(),
        replies: latencies.len(),
        latencies,
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let quick = matches!(std::env::var("RAXPP_BENCH_QUICK").as_deref(), Ok(v) if v != "0");
    let quota = env_steps("RAXPP_BENCH_SERVE_REQS", if quick { 10 } else { 40 });
    let slot_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let available_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let jaxpr = model();
    let mut rng = StdRng::seed_from_u64(1207);
    let weights = params(&mut rng);
    let pool: Vec<Tensor> = (0..8)
        .map(|_| Tensor::randn([BATCH, WIDTH], 1.0, &mut rng))
        .collect();
    let probe = pool[0].clone();

    // The unbatched reference for the parity gate: one slot, the probe
    // request alone.
    let single = forward_step(&jaxpr, 1, &weights);
    let want = single.forward(&[vec![probe.clone()]]).unwrap();
    drop(single);

    println!(
        "serve: {STAGES}-stage MLP [{WIDTH},{WIDTH}] weights, request [{BATCH},{WIDTH}], \
         closed loop, {quota} replies/client, {available_cores} cores{}",
        if quick { ", quick mode" } else { "" },
    );
    rule(72);

    let mut curves = Vec::new();
    let mut all_parity = true;
    for &n_slots in slot_counts {
        let clients = 2 * n_slots;
        let step = forward_step(&jaxpr, n_slots, &weights);
        // The admission deadline scales with the dispatch size: a
        // bigger batch legitimately waits longer to fill (on a
        // time-sliced single core, replied clients resubmit serially).
        let max_wait = Duration::from_millis(n_slots as u64);
        let server = Server::start(
            step,
            ServeConfig {
                max_wait,
                ..ServeConfig::default()
            },
        );

        // Warm the pipeline (untimed), then apply the load.
        server.infer(vec![probe.clone()]).unwrap();
        let loaded = closed_loop(&server, &pool, clients, quota);

        let p50 = percentile(&loaded.latencies, 50.0);
        let p99 = percentile(&loaded.latencies, 99.0);
        let throughput = loaded.replies as f64 / secs(loaded.wall);
        let m = server.metrics();
        let batches = m.counter("serve_batches_total");
        let padded = m.counter("serve_padded_slots_total");
        let served = m.counter("serve_replies_total");
        let mean_fill = served as f64 / (batches.max(1) * n_slots as u64) as f64;

        // Parity gate: the loaded, batching server answers the probe
        // bitwise-identically to the unbatched forward program.
        let got = server.infer(vec![probe.clone()]).unwrap();
        let parity = got.iter().zip(&want).all(|(t, w)| t.data() == w[0].data());
        assert!(
            parity,
            "n_slots={n_slots}: served probe diverges from the unbatched forward"
        );
        all_parity &= parity;

        println!(
            "slots {n_slots} ({clients} clients): p50 {:>9.2?}  p99 {:>9.2?}  \
             {throughput:>7.1} req/s  fill {:.2}  ({batches} dispatches, {padded} padded slots)",
            p50, p99, mean_fill,
        );

        curves.push(Json::obj(vec![
            ("n_slots", Json::Num(n_slots as f64)),
            ("clients", Json::Num(clients as f64)),
            ("replies", Json::Num(loaded.replies as f64)),
            ("p50_us", Json::Num(micros(p50))),
            ("p99_us", Json::Num(micros(p99))),
            ("median_us", Json::Num(micros(median(&loaded.latencies)))),
            ("throughput_rps", Json::Num(throughput)),
            ("mean_slot_fill", Json::Num(mean_fill)),
            ("dispatches", Json::Num(batches as f64)),
            ("padded_slots", Json::Num(padded as f64)),
            ("bitwise_parity", Json::Bool(parity)),
        ]));
        server.shutdown();
    }
    rule(72);
    println!("bitwise parity vs unbatched forward: OK across all slot counts");

    let json = Json::obj(vec![
        (
            "workload",
            Json::Str(format!(
                "{STAGES}-stage MLP [{WIDTH},{WIDTH}], request [{BATCH},{WIDTH}], \
                 closed loop 2x clients per slot, max_wait 1ms/slot"
            )),
        ),
        ("quick", Json::Bool(quick)),
        ("available_cores", Json::Num(available_cores as f64)),
        ("replies_per_client", Json::Num(quota as f64)),
        ("curves", Json::Arr(curves)),
        ("bitwise_parity", Json::Bool(all_parity)),
    ]);
    let path = match std::env::var("RAXPP_BENCH_OUT") {
        Ok(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => workspace_root().join("BENCH_serve.json"),
    };
    write_json(&path, &json);
    println!("wrote {}", path.display());
}
