//! Figure 10: where the SPMD-PP baseline loses its time relative to
//! RaxPP (paper §5.3) — a waterfall obtained by toggling one mechanism
//! at a time on the SPMD configuration (GPT-3 175B, 128 GPUs, GBS 256):
//!
//! 1. SPMD PP as-is: GPipe schedule, full rematerialization, synchronous sends;
//! 2. + asynchronous P2P (JaxPP's §4.2 overlap);
//! 3. + 1F1B scheduling, whose memory profile ends full remat (the ≈20% effect);
//! 4. RaxPP proper (interleaved 1F1B).

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_core::experiments::{figure10, paper};
use raxpp_simcluster::ClusterSpec;

fn main() {
    let f = figure10(&ClusterSpec::eos()).expect("figure 10 configs are feasible");
    println!("Figure 10 — overhead decomposition, GPT-3 175B @ 128 GPUs, GBS 256\n");
    println!("{:<44} {:>9} {:>8}", "variant", "step(s)", "remat");
    rule(64);
    let rows = [
        ("JAX SPMD PP (GPipe, full remat, sync P2P)", &f.spmd_pp),
        ("  + asynchronous P2P overlap (§4.2)", &f.spmd_async_p2p),
        ("  + 1F1B schedule → no full remat (§5.3)", &f.one_f1b),
        ("RaxPP: interleaved 1F1B (§5.1.1)", &f.jaxpp),
    ];
    for (label, r) in rows {
        println!(
            "{label:<44} {:>9.2} {:>8}",
            r.step_time,
            format!("{:?}", r.remat_policy)
        );
    }
    let async_gain = f.spmd_pp.step_time - f.spmd_async_p2p.step_time;
    let remat_gain = f.spmd_async_p2p.step_time - f.one_f1b.step_time;
    let sched_gain = f.one_f1b.step_time - f.jaxpp.step_time;
    println!("\nsavings attribution (fraction of the SPMD PP step):");
    println!(
        "  async send/recv overlap : {:>5.1}%",
        async_gain / f.spmd_pp.step_time * 100.0
    );
    println!(
        "  rematerialization removed: {:>5.1}%   (paper ≈ {:.0}%)",
        remat_gain / f.spmd_pp.step_time * 100.0,
        paper::REMAT_SHARE * 100.0
    );
    println!(
        "  finer interleaving       : {:>5.1}%",
        sched_gain / f.spmd_pp.step_time * 100.0
    );
    dump_json(
        "fig10",
        &[
            Compared::new("spmd_pp", f.spmd_pp.step_time, None),
            Compared::new("spmd_async_p2p", f.spmd_async_p2p.step_time, None),
            Compared::new("one_f1b", f.one_f1b.step_time, None),
            Compared::new("jaxpp", f.jaxpp.step_time, None),
            Compared::new(
                "remat_share",
                remat_gain / f.spmd_pp.step_time,
                Some(paper::REMAT_SHARE),
            ),
        ],
    );
}
