//! Configuration auto-tuning sweep (extension): enumerate every feasible
//! (pp, tp, dp, microbatch, accumulation, repeat, schedule) combination
//! on the performance model and rank by step time.
//!
//! The paper's hand-chosen flagship configuration landing at/near the
//! top is an end-to-end validation of the calibration; the sweep also
//! quantifies how much the zero-bubble extension buys over the paper's
//! schedules.

use raxpp_bench::{dump_json, rule, Compared};
use raxpp_models::ModelConfig;
use raxpp_simcluster::{tune, ClusterSpec, TunerOptions};

fn main() {
    let eos = ClusterSpec::eos();
    let mut records = Vec::new();
    for (model, gpus, gbs) in [
        (ModelConfig::gpt3_175b(), 64usize, 128usize),
        (ModelConfig::llama2_70b(), 64, 128),
    ] {
        let results = tune(&model, gpus, gbs, &eos, &TunerOptions::default());
        println!(
            "Auto-tuner — {model}, {gpus} GPUs, GBS {gbs}: {} feasible configs",
            results.len()
        );
        println!(
            "{:>4} {:<44} {:>9} {:>8}",
            "#", "configuration", "step(s)", "TFLOPS"
        );
        rule(70);
        for (i, c) in results.iter().take(10).enumerate() {
            println!(
                "{:>4} {:<44} {:>9.2} {:>8.0}",
                i + 1,
                c.config.to_string(),
                c.report.step_time,
                c.report.tflops_per_gpu
            );
            records.push(Compared::new(
                format!("{}#{}: {}", model.name, i + 1, c.config),
                c.report.step_time,
                None,
            ));
        }
        if let Some(flagship) = results.iter().position(|c| {
            c.config.pp == 8
                && c.config.tp == 8
                && c.config.microbatch == 4
                && c.config.circular_repeat == 6
        }) {
            println!(
                "\npaper flagship (pp=8 tp=8 mbs=4 repeat=6) ranks #{} of {}\n",
                flagship + 1,
                results.len()
            );
        } else {
            println!();
        }
    }
    dump_json("tuner", &records);
}
