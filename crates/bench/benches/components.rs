//! Criterion microbenchmarks of RaxPP's own machinery: tracing,
//! differentiation, pipeline compilation, schedule generation, the
//! discrete-event simulator, and one full executable training step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::{grad, Tensor, TraceCtx};
use raxpp_models::{mlp_chain, ModelConfig};
use raxpp_sched::{interleaved_1f1b, simulate, UniformCost};
use raxpp_simcluster::{simulate_pipeline, ClusterSpec, ParallelConfig, SimOptions};
use raxpp_taskgraph::{insert_frees, pipeline_model, unroll_loop, UnrollOptions};

fn trace_mlp(layers: usize) -> raxpp_ir::Jaxpr {
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..layers).map(|_| ctx.input([32, 32])).collect();
    let x = ctx.input([8, 32]);
    let mut h = x;
    for w in &ws {
        h = h.matmul(w).unwrap().tanh();
    }
    let loss = h.mul(&h).unwrap().sum();
    ctx.finish(&[loss]).unwrap()
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("trace_16_layer_mlp", |b| b.iter(|| trace_mlp(16)));
    let jaxpr = trace_mlp(16);
    c.bench_function("autodiff_16_layer_mlp", |b| {
        b.iter(|| grad(&jaxpr).unwrap())
    });

    let model = mlp_chain(16, 4, 8, 4, 0).unwrap();
    let pmodel = pipeline_model(&model.jaxpr, model.n_params).unwrap();
    let schedule = interleaved_1f1b(2, 8, 2).unwrap();
    c.bench_function("unroll_8x4_pipeline", |b| {
        b.iter(|| {
            let mut compiled = unroll_loop(&pmodel, &schedule, UnrollOptions::default()).unwrap();
            insert_frees(&mut compiled.program);
            compiled
        })
    });
}

fn bench_schedules(c: &mut Criterion) {
    c.bench_function("build_interleaved_pp8_ga32_v6", |b| {
        b.iter(|| interleaved_1f1b(8, 32, 6).unwrap())
    });
    let schedule = interleaved_1f1b(8, 32, 6).unwrap();
    c.bench_function("uniform_simulate_pp8_ga32_v6", |b| {
        b.iter(|| simulate(&schedule, UniformCost::default()).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    c.bench_function("des_gpt3_flagship", |b| {
        b.iter(|| {
            simulate_pipeline(
                &gpt3,
                ParallelConfig::jaxpp_gpt3(1),
                &eos,
                &SimOptions::default(),
            )
            .unwrap()
        })
    });
}

fn bench_runtime(c: &mut Criterion) {
    let model = mlp_chain(8, 2, 4, 2, 0).unwrap();
    let schedule = raxpp_sched::one_f1b(2, 4).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.01 },
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    let data: Vec<Vec<Tensor>> = vec![(0..4).map(|_| Tensor::ones([2, 8])).collect()];
    c.bench_function("mpmd_training_step_2actors", |b| {
        b.iter_batched(
            || data.clone(),
            |d| trainer.step(&d).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_compiler,
    bench_schedules,
    bench_simulator,
    bench_runtime
);
criterion_main!(benches);
