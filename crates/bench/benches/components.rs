//! Microbenchmarks of RaxPP's own machinery: tracing, differentiation,
//! pipeline compilation, schedule generation, the discrete-event
//! simulator, and one full executable training step. Timed with the
//! in-tree harness (`raxpp_bench::time_it`).

use raxpp_bench::time_it;
use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::{grad, Tensor, TraceCtx};
use raxpp_models::{mlp_chain, ModelConfig};
use raxpp_sched::{interleaved_1f1b, simulate, UniformCost};
use raxpp_simcluster::{simulate_pipeline, ClusterSpec, ParallelConfig, SimOptions};
use raxpp_taskgraph::{insert_frees, pipeline_model, unroll_loop, UnrollOptions};

fn trace_mlp(layers: usize) -> raxpp_ir::Jaxpr {
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..layers).map(|_| ctx.input([32, 32])).collect();
    let x = ctx.input([8, 32]);
    let mut h = x;
    for w in &ws {
        h = h.matmul(w).unwrap().tanh();
    }
    let loss = h.mul(&h).unwrap().sum();
    ctx.finish(&[loss]).unwrap()
}

fn bench_compiler() {
    time_it("trace_16_layer_mlp", 3, 20, || {
        let _ = trace_mlp(16);
    });
    let jaxpr = trace_mlp(16);
    time_it("autodiff_16_layer_mlp", 3, 20, || {
        let _ = grad(&jaxpr).unwrap();
    });

    let model = mlp_chain(16, 4, 8, 4, 0).unwrap();
    let pmodel = pipeline_model(&model.jaxpr, model.n_params).unwrap();
    let schedule = interleaved_1f1b(2, 8, 2).unwrap();
    time_it("unroll_8x4_pipeline", 3, 20, || {
        let mut compiled = unroll_loop(&pmodel, &schedule, UnrollOptions::default()).unwrap();
        insert_frees(&mut compiled.program);
    });
}

fn bench_schedules() {
    time_it("build_interleaved_pp8_ga32_v6", 3, 20, || {
        let _ = interleaved_1f1b(8, 32, 6).unwrap();
    });
    let schedule = interleaved_1f1b(8, 32, 6).unwrap();
    time_it("uniform_simulate_pp8_ga32_v6", 3, 20, || {
        let _ = simulate(&schedule, UniformCost::default()).unwrap();
    });
}

fn bench_simulator() {
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    time_it("des_gpt3_flagship", 3, 20, || {
        let _ = simulate_pipeline(
            &gpt3,
            ParallelConfig::jaxpp_gpt3(1),
            &eos,
            &SimOptions::default(),
        )
        .unwrap();
    });
}

fn bench_runtime() {
    let model = mlp_chain(8, 2, 4, 2, 0).unwrap();
    let schedule = raxpp_sched::one_f1b(2, 4).unwrap();
    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.01 },
        CompileOptions::default(),
    )
    .unwrap();
    trainer.init(&model.init).unwrap();
    let data: Vec<Vec<Tensor>> = vec![(0..4).map(|_| Tensor::ones([2, 8])).collect()];
    time_it("mpmd_training_step_2actors", 2, 10, || {
        let _ = trainer.step(&data).unwrap();
    });
}

fn main() {
    bench_compiler();
    bench_schedules();
    bench_simulator();
    bench_runtime();
}
