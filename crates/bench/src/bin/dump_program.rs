//! Developer utility: compile a tiny 2-stage pipeline and dump the fused
//! per-actor instruction streams (used to generate the worked example in
//! docs/ARCHITECTURE.md).

use raxpp_ir::TraceCtx;
use raxpp_sched::one_f1b;
use raxpp_taskgraph::{insert_frees, pipeline_model, unroll_loop, UnrollOptions};

fn main() {
    let ctx = TraceCtx::new();
    let w1 = ctx.input([2, 2]);
    let w2 = ctx.input([2, 2]);
    let x = ctx.input([1, 2]);
    let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
    let y = h.matmul(&w2).unwrap();
    let loss = y.mul(&y).unwrap().sum();
    let jaxpr = ctx.finish(&[loss]).unwrap();
    println!("=== traced jaxpr ===\n{jaxpr}\n");
    let model = pipeline_model(&jaxpr, 2).unwrap();
    println!(
        "=== stage 0 forward (augmented with residuals) ===\n{}\n",
        model.fwd[0]
    );
    println!("=== stage 0 backward ===\n{}\n", model.bwd[0]);
    let schedule = one_f1b(2, 2).unwrap();
    let mut compiled = unroll_loop(&model, &schedule, UnrollOptions::default()).unwrap();
    insert_frees(&mut compiled.program);
    println!(
        "=== fused MPMD program (1F1B, 2 microbatches) ===\n{}",
        compiled.program.dump()
    );
}
