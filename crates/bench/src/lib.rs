//! Shared helpers for the paper-reproduction bench harnesses: pretty
//! tables on stdout plus machine-readable JSON records, emitted by an
//! in-tree writer (the workspace builds with an empty registry, so
//! there is no serde here).

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A minimal JSON value for the artifact dumps.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers print without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-prints with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < members.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The workspace root (anchor for artifact paths regardless of the
/// bench's CWD).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes a JSON value to `path` (best-effort; printing is the primary
/// output of every harness).
pub fn write_json(path: &Path, value: &Json) {
    if let Some(dir) = path.parent() {
        if fs::create_dir_all(dir).is_err() {
            return;
        }
    }
    let _ = fs::write(path, value.to_string_pretty() + "\n");
}

/// Writes one experiment's records as JSON under
/// `target/paper_artifacts/<name>.json` (best-effort).
pub fn dump_json(name: &str, records: &[Compared]) {
    let arr = Json::Arr(records.iter().map(Compared::to_json).collect());
    let path = workspace_root()
        .join("target/paper_artifacts")
        .join(format!("{name}.json"));
    write_json(&path, &arr);
}

/// Prints a horizontal rule sized for the harness tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a relative error in percent.
pub fn pct_err(measured: f64, paper: f64) -> String {
    format!("{:+.1}%", (measured - paper) / paper * 100.0)
}

/// A (measured, paper) pair for the JSON dumps.
#[derive(Debug)]
pub struct Compared {
    /// Label of the data point.
    pub label: String,
    /// Value measured by the simulator.
    pub measured: f64,
    /// Value reported in the paper (if any).
    pub paper: Option<f64>,
}

impl Compared {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, measured: f64, paper: Option<f64>) -> Compared {
        Compared {
            label: label.into(),
            measured,
            paper,
        }
    }

    /// This record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("measured", Json::Num(self.measured)),
            ("paper", self.paper.map(Json::Num).unwrap_or(Json::Null)),
        ])
    }
}

/// Times `f` over `iters` iterations after `warmup` discarded ones and
/// prints the mean per-iteration wall time. Returns the mean duration.
/// The hand-rolled replacement for the criterion micro-bench harness.
pub fn time_it(label: &str, warmup: usize, iters: usize, mut f: impl FnMut()) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = t0.elapsed() / iters.max(1) as u32;
    println!("{label:<40} {mean:>12.2?}/iter  ({iters} iters)");
    mean
}

/// The `p`-th percentile (0..=100) of a set of durations, by
/// nearest-rank on a sorted copy.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1).min(sorted.len()) - 1]
}

/// The median of a set of durations.
pub fn median(samples: &[Duration]) -> Duration {
    percentile(samples, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_pretty_output() {
        let v = Json::obj(vec![
            ("name", Json::Str("a\"b".into())),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("none", Json::Null),
            ("ok", Json::Bool(true)),
        ]);
        let s = v.to_string_pretty();
        assert!(s.contains("\"a\\\"b\""), "{s}");
        assert!(s.contains("2.5"), "{s}");
        assert!(s.contains("null"), "{s}");
        // Integral floats print without a fraction.
        assert!(s.contains("\n    1,"), "{s}");
    }

    #[test]
    fn percentiles() {
        let xs: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(median(&xs), Duration::from_millis(50));
        assert_eq!(percentile(&xs, 95.0), Duration::from_millis(95));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn compared_to_json() {
        let c = Compared::new("x", 1.5, None);
        let s = c.to_json().to_string_pretty();
        assert!(s.contains("\"paper\": null"), "{s}");
    }
}
