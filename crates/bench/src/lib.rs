//! Shared helpers for the paper-reproduction bench harnesses: pretty
//! tables on stdout plus machine-readable JSON records under
//! `target/paper_artifacts/`.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Writes one experiment's records as JSON under
/// `target/paper_artifacts/<name>.json` (best-effort; printing is the
/// primary output).
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    // Anchor at the workspace root regardless of the bench's CWD.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/paper_artifacts");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = fs::write(dir.join(format!("{name}.json")), s);
    }
}

/// Prints a horizontal rule sized for the harness tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a relative error in percent.
pub fn pct_err(measured: f64, paper: f64) -> String {
    format!("{:+.1}%", (measured - paper) / paper * 100.0)
}

/// A serializable (measured, paper) pair for the JSON dumps.
#[derive(Debug, Serialize)]
pub struct Compared {
    /// Label of the data point.
    pub label: String,
    /// Value measured by the simulator.
    pub measured: f64,
    /// Value reported in the paper (if any).
    pub paper: Option<f64>,
}

impl Compared {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, measured: f64, paper: Option<f64>) -> Compared {
        Compared {
            label: label.into(),
            measured,
            paper,
        }
    }
}
