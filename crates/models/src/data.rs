//! Synthetic training data for the executable examples and tests:
//! deterministic token tasks, a character vocabulary for real text, and
//! a batcher that produces exactly the `data[input][mubatch]` layout the
//! `raxpp-core` trainer consumes for [`crate::tiny_lm`] models.

use raxpp_ir::rng::{Rng, SeedableRng, StdRng};

use raxpp_ir::Tensor;

use crate::builders::{causal_mask, one_hot, TinyLmConfig};

/// A synthetic next-token prediction task over integer tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticTask {
    /// Predict `(t + stride) mod V` from token `t` of a cyclic sequence.
    CyclicNext {
        /// The cycle stride.
        stride: usize,
    },
    /// Sequences of random tokens where the target repeats the input
    /// token (an identity/copy task — learnable with zero context).
    Copy,
    /// Random tokens; target is the *previous* input token (requires the
    /// causal attention to look one step back).
    Previous,
}

impl SyntheticTask {
    /// Generates `(input, target)` token sequences for microbatch `mb`.
    pub fn sequences(
        &self,
        seq: usize,
        vocab: usize,
        mb: usize,
        rng: &mut StdRng,
    ) -> (Vec<usize>, Vec<usize>) {
        match *self {
            SyntheticTask::CyclicNext { stride } => {
                let tokens: Vec<usize> = (0..seq).map(|i| (i * stride + mb) % vocab).collect();
                let targets = tokens.iter().map(|&t| (t + stride) % vocab).collect();
                (tokens, targets)
            }
            SyntheticTask::Copy => {
                let tokens: Vec<usize> = (0..seq).map(|_| rng.gen_range(0..vocab)).collect();
                let targets = tokens.clone();
                (tokens, targets)
            }
            SyntheticTask::Previous => {
                let tokens: Vec<usize> = (0..seq).map(|_| rng.gen_range(0..vocab)).collect();
                let mut targets = vec![0];
                targets.extend_from_slice(&tokens[..seq - 1]);
                (tokens, targets)
            }
        }
    }
}

/// Builds the three data inputs ([one-hot tokens, one-hot targets,
/// causal masks], each with `n_mb` microbatches) a [`crate::tiny_lm`]
/// trainer expects.
pub fn lm_batches(
    cfg: &TinyLmConfig,
    task: SyntheticTask,
    n_mb: usize,
    seed: u64,
) -> Vec<Vec<Tensor>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = causal_mask(cfg.seq);
    let mut xs = Vec::with_capacity(n_mb);
    let mut ys = Vec::with_capacity(n_mb);
    let mut masks = Vec::with_capacity(n_mb);
    for mb in 0..n_mb {
        let (tokens, targets) = task.sequences(cfg.seq, cfg.vocab, mb, &mut rng);
        xs.push(one_hot(&tokens, cfg.vocab));
        ys.push(one_hot(&targets, cfg.vocab));
        masks.push(mask.clone());
    }
    vec![xs, ys, masks]
}

/// A character-level vocabulary built from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharVocab {
    chars: Vec<char>,
}

impl CharVocab {
    /// Builds the vocabulary of distinct characters in `text`, sorted for
    /// determinism.
    pub fn from_text(text: &str) -> CharVocab {
        let mut chars: Vec<char> = text.chars().collect();
        chars.sort_unstable();
        chars.dedup();
        CharVocab { chars }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Encodes text to token ids, skipping out-of-vocabulary characters.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.chars()
            .filter_map(|c| self.chars.binary_search(&c).ok())
            .collect()
    }

    /// Decodes token ids back to text.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids.
    pub fn decode(&self, tokens: &[usize]) -> String {
        tokens.iter().map(|&t| self.chars[t]).collect()
    }

    /// Cuts next-character training windows of length `seq` from `text`,
    /// as `(input, target)` id sequences, stepping by `seq`.
    pub fn windows(&self, text: &str, seq: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        let ids = self.encode(text);
        let mut out = Vec::new();
        let mut start = 0;
        while start + seq < ids.len() {
            out.push((
                ids[start..start + seq].to_vec(),
                ids[start + 1..start + seq + 1].to_vec(),
            ));
            start += seq;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_task_is_deterministic() {
        let mut r1 = StdRng::seed_from_u64(0);
        let mut r2 = StdRng::seed_from_u64(0);
        let t = SyntheticTask::CyclicNext { stride: 2 };
        assert_eq!(
            t.sequences(8, 10, 1, &mut r1),
            t.sequences(8, 10, 1, &mut r2)
        );
        let (x, y) = t.sequences(4, 10, 0, &mut r1);
        assert_eq!(x, vec![0, 2, 4, 6]);
        assert_eq!(y, vec![2, 4, 6, 8]);
    }

    #[test]
    fn copy_targets_equal_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = SyntheticTask::Copy.sequences(16, 8, 0, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn previous_targets_shift() {
        let mut rng = StdRng::seed_from_u64(2);
        let (x, y) = SyntheticTask::Previous.sequences(8, 8, 0, &mut rng);
        assert_eq!(&y[1..], &x[..7]);
    }

    #[test]
    fn lm_batches_shape_matches_trainer_contract() {
        let cfg = TinyLmConfig::default();
        let data = lm_batches(&cfg, SyntheticTask::Copy, 4, 3);
        assert_eq!(data.len(), 3); // tokens, targets, masks
        assert_eq!(data[0].len(), 4);
        assert_eq!(data[0][0].shape().dims(), &[cfg.seq, cfg.vocab]);
        assert_eq!(data[2][0].shape().dims(), &[cfg.seq, cfg.seq]);
    }

    #[test]
    fn char_vocab_roundtrip() {
        let v = CharVocab::from_text("hello pipeline");
        assert!(!v.is_empty());
        let ids = v.encode("pipe");
        assert_eq!(v.decode(&ids), "pipe");
        // OOV characters are skipped.
        assert_eq!(v.decode(&v.encode("pi~pe")), "pipe");
    }

    #[test]
    fn windows_cover_text() {
        let v = CharVocab::from_text("abcabcabcabc");
        let w = v.windows("abcabcabcabc", 4);
        assert_eq!(w.len(), 2);
        for (x, y) in &w {
            assert_eq!(x.len(), 4);
            assert_eq!(y.len(), 4);
        }
        // Targets are the input shifted by one character.
        assert_eq!(v.decode(&w[0].0), "abca");
        assert_eq!(v.decode(&w[0].1), "bcab");
    }
}
