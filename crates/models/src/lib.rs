//! `raxpp-models` — model configurations and workloads for the paper's
//! evaluation.
//!
//! Two halves:
//!
//! * **Analytic**: [`ModelConfig`] describes GPT-3 175B and Llama2 70B
//!   exactly as the paper trains them, with the parameter-count, model-
//!   FLOPs, and activation-memory formulas the `raxpp-simcluster`
//!   performance model is built on (validated against Table 1's
//!   step-time/TFLOPS pairs).
//! * **Executable**: [`mlp_chain`] and [`tiny_lm`] trace small but real
//!   networks (attention, layer norm, residuals, tied embeddings) over
//!   `raxpp-ir` for end-to-end training through the MPMD runtime.

#![warn(missing_docs)]

mod builders;
mod config;
mod data;
mod memory;

pub use builders::{causal_mask, mlp_chain, one_hot, tiny_lm, BuiltModel, TinyLmConfig};
pub use config::ModelConfig;
pub use data::{lm_batches, CharVocab, SyntheticTask};
pub use memory::{
    activation_bytes_per_layer, remat_compute_factor, static_state_bytes, RematPolicy,
};
