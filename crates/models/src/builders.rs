//! Executable tiny models traced over `raxpp-ir`, used by the examples
//! and the correctness tests of the MPMD runtime.
//!
//! These are real trainable networks (a deep MLP and a small transformer
//! language model with single-head attention, residuals, layer norm, and
//! optionally *tied embeddings* — the paper's §3.4 shared-weight case),
//! small enough for the CPU interpreter yet exercising every compiler
//! feature: multi-stage partitioning, non-adjacent dataflow, and shared
//! weights.

use raxpp_ir::rng::{SeedableRng, StdRng};

use raxpp_ir::{IrError, Jaxpr, Result, Tensor, TraceCtx, TracedTensor};

/// A traced model plus its initial parameter values.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The traced training-step function `(params…, data…) → (loss,…)`,
    /// annotated with `pipeline_yield` stage markers.
    pub jaxpr: Jaxpr,
    /// How many leading inputs are parameters.
    pub n_params: usize,
    /// Initial parameter tensors, aligned with the first `n_params`
    /// inputs.
    pub init: Vec<Tensor>,
}

/// Builds an `n_stages`-stage MLP chain with square `width`×`width`
/// layers and tanh activations; loss is half the squared output norm.
///
/// Data input: one microbatch `[batch, width]`.
///
/// # Errors
///
/// Returns [`IrError::Invalid`] when `layers < n_stages` or `n_stages`
/// is 0.
pub fn mlp_chain(
    width: usize,
    batch: usize,
    layers: usize,
    n_stages: usize,
    seed: u64,
) -> Result<BuiltModel> {
    if n_stages == 0 || layers < n_stages {
        return Err(IrError::Invalid(format!(
            "need at least one layer per stage (layers={layers}, stages={n_stages})"
        )));
    }
    let ctx = TraceCtx::new();
    let ws: Vec<TracedTensor> = (0..layers).map(|_| ctx.input([width, width])).collect();
    let x = ctx.input([batch, width]);
    let mut h = x;
    let boundaries = stage_boundaries(layers, n_stages);
    for (i, w) in ws.iter().enumerate() {
        h = h.matmul(w)?.tanh();
        if boundaries.contains(&(i + 1)) {
            h = ctx.pipeline_yield(&h);
        }
    }
    let loss = h.mul(&h)?.sum().scale(0.5);
    let jaxpr = ctx.finish(&[loss])?;
    let mut rng = StdRng::seed_from_u64(seed);
    let init = (0..layers)
        .map(|_| Tensor::randn([width, width], 1.0 / (width as f32).sqrt(), &mut rng))
        .collect();
    Ok(BuiltModel {
        jaxpr,
        n_params: layers,
        init,
    })
}

/// Indices after which a stage boundary is placed (excluding the end).
fn stage_boundaries(layers: usize, n_stages: usize) -> Vec<usize> {
    let mut b = Vec::new();
    let mut acc = 0;
    for s in 0..n_stages - 1 {
        acc += layers / n_stages + usize::from(s < layers % n_stages);
        b.push(acc);
    }
    b
}

/// Configuration of the tiny transformer language model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TinyLmConfig {
    /// Sequence length (one sequence per microbatch).
    pub seq: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub emb: usize,
    /// Feed-forward inner dimension.
    pub ffn: usize,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Attention heads per block (must divide `emb`; 1 = single-head).
    pub heads: usize,
    /// Number of pipeline stages to mark.
    pub n_stages: usize,
    /// Tie the output head to the embedding table (the shared-weight
    /// pattern of paper §3.4).
    pub tied_embeddings: bool,
}

impl Default for TinyLmConfig {
    fn default() -> Self {
        TinyLmConfig {
            seq: 8,
            vocab: 16,
            emb: 16,
            ffn: 32,
            blocks: 4,
            heads: 1,
            n_stages: 2,
            tied_embeddings: true,
        }
    }
}

/// Builds a tiny decoder-only language model: token embeddings, `blocks`
/// attention blocks (single- or multi-head; pre-norm, residual, GELU
/// MLP), a final norm, and a (optionally tied) LM head with mean token
/// cross-entropy loss.
///
/// Data inputs, in order: one-hot tokens `[seq, vocab]`, one-hot targets
/// `[seq, vocab]`, and an additive attention mask `[seq, seq]` (use
/// [`causal_mask`]).
///
/// # Errors
///
/// Returns [`IrError::Invalid`] for inconsistent stage counts.
pub fn tiny_lm(cfg: TinyLmConfig, seed: u64) -> Result<BuiltModel> {
    if cfg.n_stages == 0 || cfg.blocks < cfg.n_stages {
        return Err(IrError::Invalid(format!(
            "need at least one block per stage (blocks={}, stages={})",
            cfg.blocks, cfg.n_stages
        )));
    }
    if cfg.heads == 0 || !cfg.emb.is_multiple_of(cfg.heads) {
        return Err(IrError::Invalid(format!(
            "heads ({}) must divide the embedding dim ({})",
            cfg.heads, cfg.emb
        )));
    }
    let (s, v, e, f) = (cfg.seq, cfg.vocab, cfg.emb, cfg.ffn);
    let ctx = TraceCtx::new();

    // Parameters (trace order = parameter order).
    let w_emb = ctx.input([v, e]);
    struct Block {
        wq: TracedTensor,
        wk: TracedTensor,
        wv: TracedTensor,
        wo: TracedTensor,
        ln1_g: TracedTensor,
        ln1_b: TracedTensor,
        w1: TracedTensor,
        w2: TracedTensor,
        ln2_g: TracedTensor,
        ln2_b: TracedTensor,
    }
    let blocks: Vec<Block> = (0..cfg.blocks)
        .map(|_| Block {
            wq: ctx.input([e, e]),
            wk: ctx.input([e, e]),
            wv: ctx.input([e, e]),
            wo: ctx.input([e, e]),
            ln1_g: ctx.input([e]),
            ln1_b: ctx.input([e]),
            w1: ctx.input([e, f]),
            w2: ctx.input([f, e]),
            ln2_g: ctx.input([e]),
            ln2_b: ctx.input([e]),
        })
        .collect();
    let lnf_g = ctx.input([e]);
    let lnf_b = ctx.input([e]);
    let w_out = if cfg.tied_embeddings {
        None
    } else {
        Some(ctx.input([e, v]))
    };
    let n_params = 1 + 10 * cfg.blocks + 2 + usize::from(w_out.is_some());

    // Data inputs.
    let x_onehot = ctx.input([s, v]);
    let y_onehot = ctx.input([s, v]);
    let mask = ctx.input([s, s]);

    // Forward.
    let mut h = x_onehot.matmul(&w_emb)?;
    let boundaries = stage_boundaries(cfg.blocks, cfg.n_stages);
    for (i, blk) in blocks.iter().enumerate() {
        let hn = h.layer_norm(&blk.ln1_g, &blk.ln1_b, 1e-5)?;
        let q = hn.matmul(&blk.wq)?;
        let k = hn.matmul(&blk.wk)?;
        let val = hn.matmul(&blk.wv)?;
        let ctx_out = if cfg.heads == 1 {
            let scores = q
                .matmul(&k.t()?)?
                .scale(1.0 / (e as f32).sqrt())
                .add(&mask)?;
            let attn = scores.softmax(1)?;
            attn.matmul(&val)?
        } else {
            // Multi-head: [s, e] → [heads, s, dh], batched attention per
            // head, then back.
            let dh = e / cfg.heads;
            let split = |t: &TracedTensor| -> raxpp_ir::Result<TracedTensor> {
                t.reshape([s, cfg.heads, dh])?.permute(&[1, 0, 2])
            };
            let qh = split(&q)?;
            let kh = split(&k)?;
            let vh = split(&val)?;
            let scores = qh
                .bmm(&kh.t()?)?
                .scale(1.0 / (dh as f32).sqrt())
                .add(&mask.broadcast_to([cfg.heads, s, s])?)?;
            let attn = scores.softmax(2)?;
            attn.bmm(&vh)?.permute(&[1, 0, 2])?.reshape([s, e])?
        };
        let o = ctx_out.matmul(&blk.wo)?;
        h = h.add(&o)?;
        let hn2 = h.layer_norm(&blk.ln2_g, &blk.ln2_b, 1e-5)?;
        let m = hn2.matmul(&blk.w1)?.gelu().matmul(&blk.w2)?;
        h = h.add(&m)?;
        if boundaries.contains(&(i + 1)) {
            h = ctx.pipeline_yield(&h);
        }
    }
    let hf = h.layer_norm(&lnf_g, &lnf_b, 1e-5)?;
    let logits = match &w_out {
        Some(w) => hf.matmul(w)?,
        // Tied head: reuse the embedding table — a shared weight across
        // the first and last stage (paper §3.4).
        None => hf.matmul(&w_emb.t()?)?,
    };
    let log_probs = logits.log_softmax(1)?;
    let loss = y_onehot.mul(&log_probs)?.sum().neg().scale(1.0 / s as f32);
    let jaxpr = ctx.finish(&[loss])?;

    // Initialization.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = Vec::with_capacity(n_params);
    let scale = 0.3 / (e as f32).sqrt();
    init.push(Tensor::randn([v, e], scale, &mut rng));
    for _ in 0..cfg.blocks {
        init.push(Tensor::randn([e, e], scale, &mut rng)); // wq
        init.push(Tensor::randn([e, e], scale, &mut rng)); // wk
        init.push(Tensor::randn([e, e], scale, &mut rng)); // wv
        init.push(Tensor::randn([e, e], scale, &mut rng)); // wo
        init.push(Tensor::ones([e])); // ln1_g
        init.push(Tensor::zeros([e])); // ln1_b
        init.push(Tensor::randn([e, f], scale, &mut rng)); // w1
        init.push(Tensor::randn([f, e], scale, &mut rng)); // w2
        init.push(Tensor::ones([e])); // ln2_g
        init.push(Tensor::zeros([e])); // ln2_b
    }
    init.push(Tensor::ones([e]));
    init.push(Tensor::zeros([e]));
    if w_out.is_some() {
        init.push(Tensor::randn([e, v], scale, &mut rng));
    }
    debug_assert_eq!(init.len(), n_params);
    Ok(BuiltModel {
        jaxpr,
        n_params,
        init,
    })
}

/// Additive causal attention mask: 0 on and below the diagonal, a large
/// negative value above it.
pub fn causal_mask(seq: usize) -> Tensor {
    let mut data = vec![0.0f32; seq * seq];
    for i in 0..seq {
        for j in (i + 1)..seq {
            data[i * seq + j] = -1e9;
        }
    }
    Tensor::from_vec([seq, seq], data).expect("mask shape")
}

/// One-hot encodes a token sequence into `[len, vocab]`.
///
/// # Panics
///
/// Panics if any token id is out of range.
pub fn one_hot(tokens: &[usize], vocab: usize) -> Tensor {
    let mut data = vec![0.0f32; tokens.len() * vocab];
    for (i, &t) in tokens.iter().enumerate() {
        assert!(t < vocab, "token {t} out of range for vocab {vocab}");
        data[i * vocab + t] = 1.0;
    }
    Tensor::from_vec([tokens.len(), vocab], data).expect("one-hot shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_ir::eval;

    #[test]
    fn boundaries_are_balanced() {
        assert_eq!(stage_boundaries(4, 2), vec![2]);
        assert_eq!(stage_boundaries(5, 2), vec![3]);
        assert_eq!(stage_boundaries(6, 3), vec![2, 4]);
        assert!(stage_boundaries(4, 1).is_empty());
    }

    #[test]
    fn mlp_chain_builds_and_evaluates() {
        let m = mlp_chain(4, 2, 4, 2, 0).unwrap();
        assert_eq!(m.n_params, 4);
        let mut args = m.init.clone();
        args.push(Tensor::ones([2, 4]));
        let out = eval(&m.jaxpr, &args).unwrap();
        assert!(out[0].item().unwrap().is_finite());
    }

    #[test]
    fn mlp_chain_rejects_too_many_stages() {
        assert!(mlp_chain(4, 2, 2, 3, 0).is_err());
    }

    #[test]
    fn tiny_lm_loss_starts_near_uniform() {
        // With random init, loss ≈ ln(vocab).
        let cfg = TinyLmConfig::default();
        let m = tiny_lm(cfg, 1).unwrap();
        let tokens: Vec<usize> = (0..cfg.seq).map(|i| i % cfg.vocab).collect();
        let targets: Vec<usize> = (1..=cfg.seq).map(|i| i % cfg.vocab).collect();
        let mut args = m.init.clone();
        args.push(one_hot(&tokens, cfg.vocab));
        args.push(one_hot(&targets, cfg.vocab));
        args.push(causal_mask(cfg.seq));
        let out = eval(&m.jaxpr, &args).unwrap();
        let loss = out[0].item().unwrap();
        let uniform = (cfg.vocab as f32).ln();
        assert!(
            (loss - uniform).abs() < 1.0,
            "initial loss {loss} far from ln(V) = {uniform}"
        );
    }

    #[test]
    fn tied_model_has_one_fewer_param() {
        let tied = tiny_lm(TinyLmConfig::default(), 2).unwrap();
        let untied = tiny_lm(
            TinyLmConfig {
                tied_embeddings: false,
                ..TinyLmConfig::default()
            },
            2,
        )
        .unwrap();
        assert_eq!(untied.n_params, tied.n_params + 1);
    }

    #[test]
    fn multi_head_lm_builds_and_evaluates() {
        let cfg = TinyLmConfig {
            heads: 4,
            ..TinyLmConfig::default()
        };
        let m = tiny_lm(cfg, 3).unwrap();
        let tokens: Vec<usize> = (0..cfg.seq).map(|i| i % cfg.vocab).collect();
        let mut args = m.init.clone();
        args.push(one_hot(&tokens, cfg.vocab));
        args.push(one_hot(&tokens, cfg.vocab));
        args.push(causal_mask(cfg.seq));
        let out = eval(&m.jaxpr, &args).unwrap();
        assert!(out[0].item().unwrap().is_finite());
    }

    #[test]
    fn invalid_head_counts_rejected() {
        assert!(tiny_lm(
            TinyLmConfig {
                heads: 0,
                ..TinyLmConfig::default()
            },
            0
        )
        .is_err());
        assert!(tiny_lm(
            TinyLmConfig {
                heads: 3,
                ..TinyLmConfig::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m.data()[1], -1e9);
        assert_eq!(m.data()[2 * 3], 0.0);
        assert_eq!(m.data()[3 + 1], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_checks_range() {
        one_hot(&[5], 4);
    }
}
