//! Transformer model configurations and analytic FLOPs/parameter
//! formulas for the paper's two evaluation workloads.

use std::fmt;

/// Architecture of a decoder-only transformer language model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of transformer layers.
    pub n_layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Feed-forward inner dimension.
    pub ffn_hidden: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Number of key/value heads (`n_heads` for MHA, fewer for GQA).
    pub n_kv_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Training sequence length.
    pub seq_len: usize,
    /// Whether the MLP is gated (SwiGLU, 3 weight matrices) as in Llama.
    pub gated_mlp: bool,
}

impl ModelConfig {
    /// GPT-3 175B (Brown et al., 2020) as evaluated in the paper:
    /// 96 layers, hidden 12288, sequence length 2048, BF16.
    pub fn gpt3_175b() -> ModelConfig {
        ModelConfig {
            name: "GPT-3 175B".into(),
            n_layers: 96,
            hidden: 12288,
            ffn_hidden: 4 * 12288,
            n_heads: 96,
            n_kv_heads: 96,
            vocab: 51200,
            seq_len: 2048,
            gated_mlp: false,
        }
    }

    /// Llama2 70B (Touvron et al., 2023) as evaluated in the paper:
    /// 80 layers, hidden 8192, GQA with 8 KV heads, SwiGLU MLP,
    /// sequence length 4096, BF16.
    pub fn llama2_70b() -> ModelConfig {
        ModelConfig {
            name: "Llama2 70B".into(),
            n_layers: 80,
            hidden: 8192,
            ffn_hidden: 28672,
            n_heads: 64,
            n_kv_heads: 8,
            vocab: 32000,
            seq_len: 4096,
            gated_mlp: true,
        }
    }

    /// GPT-3 6.7B (Brown et al., 2020, Table 2.1): 32 layers, hidden
    /// 4096, 32 heads.
    pub fn gpt3_6_7b() -> ModelConfig {
        ModelConfig {
            name: "GPT-3 6.7B".into(),
            n_layers: 32,
            hidden: 4096,
            ffn_hidden: 4 * 4096,
            n_heads: 32,
            n_kv_heads: 32,
            vocab: 51200,
            seq_len: 2048,
            gated_mlp: false,
        }
    }

    /// GPT-3 13B (Brown et al., 2020, Table 2.1): 40 layers, hidden
    /// 5140 in the paper; 5120 here (the commonly used power-of-two
    /// variant, e.g. Megatron's).
    pub fn gpt3_13b() -> ModelConfig {
        ModelConfig {
            name: "GPT-3 13B".into(),
            n_layers: 40,
            hidden: 5120,
            ffn_hidden: 4 * 5120,
            n_heads: 40,
            n_kv_heads: 40,
            vocab: 51200,
            seq_len: 2048,
            gated_mlp: false,
        }
    }

    /// Llama2 7B (Touvron et al., 2023): 32 layers, hidden 4096, MHA,
    /// SwiGLU with inner dim 11008.
    pub fn llama2_7b() -> ModelConfig {
        ModelConfig {
            name: "Llama2 7B".into(),
            n_layers: 32,
            hidden: 4096,
            ffn_hidden: 11008,
            n_heads: 32,
            n_kv_heads: 32,
            vocab: 32000,
            seq_len: 4096,
            gated_mlp: true,
        }
    }

    /// A small config for tests and examples (not a paper workload).
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            name: "tiny".into(),
            n_layers: 4,
            hidden: 64,
            ffn_hidden: 256,
            n_heads: 4,
            n_kv_heads: 4,
            vocab: 128,
            seq_len: 32,
            gated_mlp: false,
        }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.n_heads
    }

    /// Parameters of one transformer layer.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn_hidden as u64;
        let kv = (self.n_kv_heads * self.head_dim()) as u64;
        // Attention: Q and O are h×h; K and V are h×kv (GQA-aware).
        let attn = h * h * 2 + h * kv * 2;
        // MLP: two matrices (up/down), plus the gate for SwiGLU.
        let mlp = if self.gated_mlp { 3 * h * f } else { 2 * h * f };
        // LayerNorm gains/biases are negligible but counted.
        let norms = 4 * h;
        attn + mlp + norms
    }

    /// Total parameter count (embeddings + layers + final norm).
    /// The LM head is tied to the embedding table.
    pub fn n_params(&self) -> u64 {
        let h = self.hidden as u64;
        let emb = self.vocab as u64 * h + self.seq_len as u64 * h;
        emb + self.n_layers as u64 * self.params_per_layer() + 2 * h
    }

    /// Forward-pass model FLOPs for `tokens` tokens: `2·N` per token for
    /// the weight matmuls plus the attention score/context matmuls
    /// (`4·L·s·h` per token).
    pub fn fwd_flops(&self, tokens: u64) -> f64 {
        let weight = 2.0 * self.n_params() as f64 * tokens as f64;
        let attn =
            4.0 * self.n_layers as f64 * tokens as f64 * self.seq_len as f64 * self.hidden as f64;
        weight + attn
    }

    /// Training-step model FLOPs (forward + 2× backward — the standard
    /// "model FLOPs" convention used for the paper's TFLOPS/device
    /// numbers; rematerialization is *not* counted).
    pub fn train_flops(&self, global_batch: u64) -> f64 {
        3.0 * self.fwd_flops(global_batch * self.seq_len as u64)
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L={}, h={}, heads={}, seq={}, N={:.1}B)",
            self.name,
            self.n_layers,
            self.hidden,
            self.n_heads,
            self.seq_len,
            self.n_params() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_parameter_count() {
        let n = ModelConfig::gpt3_175b().n_params();
        assert!(
            (n as f64 - 175e9).abs() / 175e9 < 0.02,
            "GPT-3 params {:.1}B should be ≈175B",
            n as f64 / 1e9
        );
    }

    #[test]
    fn llama2_parameter_count() {
        let n = ModelConfig::llama2_70b().n_params();
        assert!(
            (n as f64 - 69e9).abs() / 69e9 < 0.03,
            "Llama2 params {:.1}B should be ≈69B",
            n as f64 / 1e9
        );
    }

    #[test]
    fn gpt3_step_flops_consistent_with_table1() {
        // Table 1, row 1: GBS 128 on 64 GPUs at 462 TFLOPS/device takes
        // 9.53 s. Our formula must reproduce that triple within a few %.
        let cfg = ModelConfig::gpt3_175b();
        let flops = cfg.train_flops(128);
        let implied_step = flops / (64.0 * 462e12);
        assert!(
            (implied_step - 9.53).abs() / 9.53 < 0.05,
            "implied step time {implied_step:.2}s vs paper 9.53s"
        );
    }

    #[test]
    fn llama2_step_flops_consistent_with_table1() {
        // Table 1: Llama2 70B, GBS 128, 64 GPUs, 432 TFLOPS → 8.42 s.
        let cfg = ModelConfig::llama2_70b();
        let flops = cfg.train_flops(128);
        let implied_step = flops / (64.0 * 432e12);
        assert!(
            (implied_step - 8.42).abs() / 8.42 < 0.05,
            "implied step time {implied_step:.2}s vs paper 8.42s"
        );
    }

    #[test]
    fn family_parameter_counts() {
        for (cfg, expect) in [
            (ModelConfig::gpt3_6_7b(), 6.7e9),
            (ModelConfig::gpt3_13b(), 13e9),
            (ModelConfig::llama2_7b(), 6.74e9),
        ] {
            let n = cfg.n_params() as f64;
            assert!(
                (n - expect).abs() / expect < 0.05,
                "{}: {:.2}B vs expected {:.2}B",
                cfg.name,
                n / 1e9,
                expect / 1e9
            );
        }
    }

    #[test]
    fn gqa_reduces_params() {
        let mut mha = ModelConfig::llama2_70b();
        mha.n_kv_heads = mha.n_heads;
        assert!(mha.n_params() > ModelConfig::llama2_70b().n_params());
    }

    #[test]
    fn display_mentions_scale() {
        let s = ModelConfig::gpt3_175b().to_string();
        assert!(s.contains("GPT-3"));
        assert!(s.contains('B'));
    }
}
