//! Device-memory accounting: static training state and per-microbatch
//! activation footprints, following the Megatron-LM analysis
//! (Korthikanti et al., 2022). Used by the cluster simulator to decide
//! when a configuration must rematerialize (paper §5.3: the GPipe-style
//! SPMD pipeline is memory-bound and pays ≈20% step time in recompute).

use crate::config::ModelConfig;

/// How activations are retained between forward and backward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RematPolicy {
    /// Keep every intermediate (fastest, most memory).
    None,
    /// Keep only the matmul operands; attention internals are free thanks
    /// to flash attention (the cuDNN attention path the paper uses),
    /// matching Megatron's "selective" recomputation.
    Selective,
    /// Keep only layer inputs; recompute the layer in backward
    /// (GPipe-style full recomputation, costing ≈ one extra forward).
    Full,
}

/// Bytes of resident training state per device: BF16 weights and
/// gradients plus FP32 Adam moments and master weights
/// (2 + 2 + 4 + 4 + 4 = 16 bytes/parameter), for `params` local
/// parameters.
pub fn static_state_bytes(params: f64) -> f64 {
    16.0 * params
}

/// Per-layer activation bytes for one microbatch of `mb` sequences under
/// `policy`, with tensor parallelism degree `tp` sharding the main terms.
///
/// Follows the Megatron-LM BF16 estimates: `s·b·h·(34 + 5·a·s/h)` per
/// layer when every intermediate (including attention score matrices) is
/// kept, `24·s·b·h` with selective recomputation on a flash-attention
/// stack, and `2·s·b·h` (the layer input only — see the note on
/// [`RematPolicy::Full`] in the simulator, which does not multiply this
/// by the layer count) with full recomputation.
pub fn activation_bytes_per_layer(
    cfg: &ModelConfig,
    mb: usize,
    tp: usize,
    policy: RematPolicy,
) -> f64 {
    let s = cfg.seq_len as f64;
    let b = mb as f64;
    let h = cfg.hidden as f64;
    let a = cfg.n_heads as f64;
    let t = tp as f64;
    match policy {
        RematPolicy::None => s * b * h * (34.0 + 5.0 * a * s / h) / t,
        RematPolicy::Selective => 24.0 * s * b * h / t,
        RematPolicy::Full => 2.0 * s * b * h,
    }
}

/// Extra compute factor of a backward pass under `policy`, as a multiple
/// of the forward cost: full recomputation re-runs the forward
/// (paper §5.3's dominant overhead); selective recomputation only redoes
/// the cheap attention internals.
pub fn remat_compute_factor(policy: RematPolicy) -> f64 {
    match policy {
        RematPolicy::None => 0.0,
        RematPolicy::Selective => 0.05,
        RematPolicy::Full => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_state_matches_rule_of_thumb() {
        // GPT-3 fully resident would need 175e9 * 16 = 2.8 TB.
        let b = static_state_bytes(175e9);
        assert!((b - 2.8e12).abs() / 2.8e12 < 0.01);
    }

    #[test]
    fn remat_policies_order_memory() {
        let cfg = ModelConfig::gpt3_175b();
        let none = activation_bytes_per_layer(&cfg, 2, 8, RematPolicy::None);
        let sel = activation_bytes_per_layer(&cfg, 2, 8, RematPolicy::Selective);
        let full = activation_bytes_per_layer(&cfg, 2, 8, RematPolicy::Full);
        assert!(none > sel && sel > full);
    }

    #[test]
    fn tp_shards_activations() {
        let cfg = ModelConfig::gpt3_175b();
        let t1 = activation_bytes_per_layer(&cfg, 2, 1, RematPolicy::None);
        let t8 = activation_bytes_per_layer(&cfg, 2, 8, RematPolicy::None);
        assert!((t1 / t8 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn full_remat_costs_one_forward() {
        assert_eq!(remat_compute_factor(RematPolicy::Full), 1.0);
        assert_eq!(remat_compute_factor(RematPolicy::None), 0.0);
    }

    #[test]
    fn gpt3_activations_dominate_without_remat() {
        // A GPipe pipeline holding all 32 microbatches of activations for
        // 12 layers/GPU without remat must blow the 80 GB budget —
        // this is exactly why the SPMD-PP baseline rematerializes.
        // The paper's SPMD-PP configuration (Table 1): PP=16, TP=4,
        // GA=128 — GPipe keeps all 128 microbatches alive.
        let cfg = ModelConfig::gpt3_175b();
        let per_layer = activation_bytes_per_layer(&cfg, 1, 4, RematPolicy::Selective);
        let layers_per_gpu = cfg.n_layers / 16;
        let worst = per_layer * layers_per_gpu as f64 * 128.0;
        assert!(worst > 80e9, "GPipe without remat fits?! {worst:.2e}");
    }
}
