//! Engine-level behavior of the serving tier: batching, padding,
//! swaps, shutdown. (Parity with training and fault handling live in
//! the workspace-level `tests/tests/serving.rs`.)

use std::time::Duration;

use raxpp_ir::{Jaxpr, Tensor, TraceCtx};
use raxpp_sched::gpipe;
use raxpp_serve::{
    compile_forward_step, ForwardOptions, ForwardStep, ServeConfig, ServeError, Server,
};

/// loss = 0.5 * Σ (tanh(x@w1) @ w2)², prediction served as aux output.
fn model() -> Jaxpr {
    let ctx = TraceCtx::new();
    let w1 = ctx.input([4, 4]);
    let w2 = ctx.input([4, 4]);
    let x = ctx.input([2, 4]);
    let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
    let y = h.matmul(&w2).unwrap();
    let loss = y.mul(&y).unwrap().sum().scale(0.5);
    ctx.finish(&[loss, y]).unwrap()
}

fn params(scale: f32) -> Vec<Tensor> {
    vec![
        Tensor::from_vec([4, 4], (0..16).map(|i| scale * 0.05 * i as f32).collect()).unwrap(),
        Tensor::from_vec(
            [4, 4],
            (0..16).map(|i| scale * 0.03 * (i % 5) as f32).collect(),
        )
        .unwrap(),
    ]
}

fn request(i: usize) -> Tensor {
    Tensor::from_vec([2, 4], (0..8).map(|j| 0.1 * (i * 8 + j) as f32).collect()).unwrap()
}

fn forward_step(n_mubatches: usize) -> ForwardStep {
    let jaxpr = model();
    let step = compile_forward_step(
        &jaxpr,
        2,
        &gpipe(2, n_mubatches).unwrap(),
        ForwardOptions::default(),
    )
    .unwrap();
    step.load_params(&params(1.0)).unwrap();
    step
}

#[test]
fn served_outputs_match_a_direct_forward_bitwise() {
    // One step serves, an identical twin runs the same slots directly.
    let direct = forward_step(3);
    let data: Vec<Vec<Tensor>> = vec![(0..3).map(request).collect()];
    let want = direct.forward(&data).unwrap();

    let server = Server::start(forward_step(3), ServeConfig::default());
    let tickets: Vec<_> = (0..3)
        .map(|i| server.submit(vec![request(i)]).unwrap())
        .collect();
    for (slot, t) in tickets.into_iter().enumerate() {
        let got = t.wait().unwrap();
        assert_eq!(got.len(), 2, "loss + prediction");
        for (o, tensor) in got.iter().enumerate() {
            assert_eq!(
                tensor.data(),
                want[o][slot].data(),
                "output {o} of slot {slot} must be bitwise identical"
            );
        }
    }
    let m = server.metrics().snapshot();
    drop(m);
    server.shutdown();
}

#[test]
fn deadline_fires_and_pads_a_partial_dispatch() {
    let server = Server::start(
        forward_step(4),
        ServeConfig {
            max_wait: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );
    // One request into a 4-slot pipeline: only the deadline can launch it.
    let out = server.infer(vec![request(0)]).unwrap();
    assert_eq!(out.len(), 2);
    let metrics = server.metrics();
    assert_eq!(metrics.counter("serve_batches_total"), 1);
    assert_eq!(metrics.counter("serve_padded_slots_total"), 3);
    let util = metrics.gauge("serve_slot_utilization").unwrap();
    assert!((util - 0.25).abs() < 1e-12, "utilization {util}");
    assert!(metrics.gauge("serve_p99_us").unwrap() > 0.0);
    server.shutdown();
}

#[test]
fn full_dispatch_needs_no_deadline() {
    // max_wait far beyond the test's patience: only slot-full dispatch
    // can answer these.
    let server = Server::start(
        forward_step(2),
        ServeConfig {
            max_wait: Duration::from_secs(3600),
            ..ServeConfig::default()
        },
    );
    let t0 = server.submit(vec![request(0)]).unwrap();
    let t1 = server.submit(vec![request(1)]).unwrap();
    t0.wait().unwrap();
    t1.wait().unwrap();
    assert_eq!(server.metrics().counter("serve_padded_slots_total"), 0);
    server.shutdown();
}

#[test]
fn malformed_requests_are_rejected_at_admission() {
    let server = Server::start(forward_step(2), ServeConfig::default());
    match server.submit(vec![]) {
        Err(ServeError::BadRequest(m)) => assert!(m.contains("data inputs"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    match server.submit(vec![Tensor::zeros([3, 3])]) {
        Err(ServeError::BadRequest(m)) => assert!(m.contains("shape"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_eq!(server.queue_depth(), 0, "rejected requests never queue");
    server.shutdown();
}

#[test]
fn weight_swaps_apply_between_dispatches() {
    let direct = forward_step(2);
    direct.load_params(&params(2.0)).unwrap();
    let data: Vec<Vec<Tensor>> = vec![(0..2).map(request).collect()];
    let want = direct.forward(&data).unwrap();

    let server = Server::start(forward_step(2), ServeConfig::default());
    // Generation 1 answers...
    let t0 = server.submit(vec![request(0)]).unwrap();
    let t1 = server.submit(vec![request(1)]).unwrap();
    let gen1 = t0.wait().unwrap();
    t1.wait().unwrap();
    // ...then generation 2 swaps in and answers differently but
    // bitwise-equal to a direct forward under the same weights.
    server.swap_weights(params(2.0)).unwrap();
    let t0 = server.submit(vec![request(0)]).unwrap();
    let t1 = server.submit(vec![request(1)]).unwrap();
    let gen2 = t0.wait().unwrap();
    t1.wait().unwrap();
    assert_ne!(gen1[1].data(), gen2[1].data(), "weights actually changed");
    assert_eq!(gen2[0].data(), want[0][0].data());
    assert_eq!(gen2[1].data(), want[1][0].data());
    assert_eq!(server.metrics().counter("serve_weight_swaps_total"), 1);
    server.shutdown();
}

#[test]
fn bad_swaps_keep_the_previous_generation_live() {
    let server = Server::start(forward_step(2), ServeConfig::default());
    match server.swap_weights(vec![Tensor::zeros([1, 1])]) {
        Err(ServeError::Swap(m)) => assert!(m.contains("parameters"), "{m}"),
        other => panic!("expected Swap error, got {other:?}"),
    }
    // Still serving from the original weights.
    let t0 = server.submit(vec![request(0)]).unwrap();
    let t1 = server.submit(vec![request(1)]).unwrap();
    t0.wait().unwrap();
    t1.wait().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_returns_the_step_ready_to_serve_again() {
    // An hour-long deadline: the lone queued request cannot dispatch,
    // so shutdown must answer it.
    let server = Server::start(
        forward_step(2),
        ServeConfig {
            max_wait: Duration::from_secs(3600),
            ..ServeConfig::default()
        },
    );
    let t = server.submit(vec![request(0)]).unwrap();
    let step = server.shutdown();
    // The queued-but-never-dispatched request got a bounded answer.
    assert_eq!(t.wait(), Err(ServeError::ShuttingDown));
    // The step (weights included) survives and can be restarted.
    let server = Server::start(step, ServeConfig::default());
    let t0 = server.submit(vec![request(0)]).unwrap();
    let t1 = server.submit(vec![request(1)]).unwrap();
    t0.wait().unwrap();
    t1.wait().unwrap();
    server.shutdown();
}
