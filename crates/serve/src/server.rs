//! The serving front-end: request admission, weight swaps, shutdown.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use raxpp_core::ForwardStep;
use raxpp_ir::{Shape, Tensor};
use raxpp_runtime::{Metrics, StepTrace};

use crate::engine::Engine;
use crate::{ServeConfig, ServeError, Ticket};

/// One queued request, owned by the engine from admission to reply.
pub(crate) struct Request {
    pub(crate) id: u64,
    /// One tensor per data input, shaped like one microbatch (one
    /// pipeline slot).
    pub(crate) inputs: Vec<Tensor>,
    pub(crate) enqueued: Instant,
    pub(crate) reply: mpsc::Sender<Result<Vec<Tensor>, ServeError>>,
}

/// Engine mailbox traffic. Requests and weight swaps ride one channel,
/// so a swap is *ordered* with respect to dispatches: the engine
/// applies it between two forwards, never inside one.
pub(crate) enum Msg {
    Request(Request),
    Swap {
        params: Vec<Tensor>,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    SwapCheckpoint {
        dir: PathBuf,
        reply: mpsc::Sender<Result<Option<u64>, ServeError>>,
    },
    Shutdown,
}

/// A running serving tier: a single engine thread that owns a
/// [`ForwardStep`] and continuously batches admitted requests into its
/// pipeline slots.
///
/// `Server` is `Sync`: any number of client threads may
/// [`Server::submit`] concurrently (the closed-loop bench does exactly
/// that). Dropping the server shuts the engine down; queued requests
/// are answered with [`ServeError::ShuttingDown`].
#[derive(Debug)]
pub struct Server {
    tx: mpsc::Sender<Msg>,
    engine: Option<JoinHandle<ForwardStep>>,
    queue_depth: Arc<AtomicUsize>,
    last_trace: Arc<Mutex<Option<StepTrace>>>,
    next_id: AtomicU64,
    n_slots: usize,
    n_data_inputs: usize,
    data_shapes: Vec<Shape>,
    metrics: Metrics,
}

impl Server {
    /// Starts the engine thread over a compiled, launched forward step.
    ///
    /// The step's parameters need not be loaded yet — but every
    /// dispatch before the first [`Server::swap_weights`] /
    /// [`Server::load_latest_checkpoint`] (or a pre-`start`
    /// [`ForwardStep::load_params`]) will fail with
    /// [`ServeError::Dispatch`].
    pub fn start(step: ForwardStep, config: ServeConfig) -> Server {
        let (tx, rx) = mpsc::channel();
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let last_trace = Arc::new(Mutex::new(None));
        let n_slots = step.n_mubatches();
        let n_data_inputs = step.n_data_inputs();
        let data_shapes = step.data_shapes().to_vec();
        let metrics = step.metrics().clone();
        let engine = Engine::new(
            step,
            config,
            rx,
            Arc::clone(&queue_depth),
            Arc::clone(&last_trace),
        );
        let handle = std::thread::Builder::new()
            .name("raxpp-serve".into())
            .spawn(move || engine.run())
            .expect("spawning the serve engine thread failed");
        Server {
            tx,
            engine: Some(handle),
            queue_depth,
            last_trace,
            next_id: AtomicU64::new(0),
            n_slots,
            n_data_inputs,
            data_shapes,
            metrics,
        }
    }

    /// Admits one request — one pipeline slot's worth of data: one
    /// tensor per data input, shaped like a single microbatch — and
    /// returns a [`Ticket`] for its outputs.
    ///
    /// The request joins the dispatch currently being formed (or opens
    /// the next one when that dispatch is full) and is answered when
    /// its dispatch completes: at the latest after
    /// [`ServeConfig::max_wait`] plus one forward step.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on input count/shape mismatch (the
    /// request is not enqueued); [`ServeError::ShuttingDown`] when the
    /// engine is gone.
    pub fn submit(&self, inputs: Vec<Tensor>) -> Result<Ticket, ServeError> {
        if inputs.len() != self.n_data_inputs {
            return Err(ServeError::BadRequest(format!(
                "expected {} data inputs, got {}",
                self.n_data_inputs,
                inputs.len()
            )));
        }
        for (i, t) in inputs.iter().enumerate() {
            if t.shape() != &self.data_shapes[i] {
                return Err(ServeError::BadRequest(format!(
                    "data input {i} shape mismatch: {} vs {}",
                    t.shape(),
                    self.data_shapes[i]
                )));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::channel();
        let req = Request {
            id,
            inputs,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.set_gauge("serve_queue_depth", depth as f64);
        self.metrics.inc("serve_requests_total", 1);
        if self.tx.send(Msg::Request(req)).is_err() {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        Ok(Ticket { id, rx: reply_rx })
    }

    /// Submits one request and blocks for its outputs —
    /// [`Server::submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// As [`Server::submit`] and [`Ticket::wait`].
    pub fn infer(&self, inputs: Vec<Tensor>) -> Result<Vec<Tensor>, ServeError> {
        self.submit(inputs)?.wait()
    }

    /// Installs a new parameter generation, applied by the engine
    /// strictly between dispatches; blocks until it is live (or
    /// rejected). Requests dispatched before the swap keep the old
    /// generation, requests dispatched after read the new one — no
    /// request mixes the two.
    ///
    /// # Errors
    ///
    /// [`ServeError::Swap`] on count/shape mismatch or placement
    /// failure (the previous generation stays live);
    /// [`ServeError::ShuttingDown`] when the engine is gone.
    pub fn swap_weights(&self, params: Vec<Tensor>) -> Result<(), ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Msg::Swap {
                params,
                reply: reply_tx,
            })
            .map_err(|_| ServeError::ShuttingDown)?;
        reply_rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Swaps in the newest valid checkpoint generation under `dir`
    /// (see [`ForwardStep::load_latest_checkpoint`]); same between-
    /// dispatch semantics as [`Server::swap_weights`]. Returns the
    /// loaded generation's training step, or `None` when `dir` holds
    /// no valid generation (weights unchanged).
    ///
    /// # Errors
    ///
    /// [`ServeError::Swap`] for unreadable/mis-shaped checkpoints;
    /// [`ServeError::ShuttingDown`] when the engine is gone.
    pub fn load_latest_checkpoint(
        &self,
        dir: impl Into<PathBuf>,
    ) -> Result<Option<u64>, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Msg::SwapCheckpoint {
                dir: dir.into(),
                reply: reply_tx,
            })
            .map_err(|_| ServeError::ShuttingDown)?;
        reply_rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Pipeline slots per dispatch (`schedule.n_mubatches()` of the
    /// underlying step) — the maximum batch one forward serves.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Requests admitted but not yet answered.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// The shared metrics registry (the underlying step's): serving
    /// counters and gauges (`serve_*`) land next to the forward-step
    /// metrics — `docs/observability.md` has the catalog.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Takes the most recent traced dispatch, if tracing was enabled
    /// on the step's runtime ([`raxpp_runtime::Runtime::set_tracing`]
    /// before [`Server::start`]): the pipeline actors' spans plus the
    /// appended pseudo-actor track of `"serve"` request spans (trace
    /// schema v7).
    pub fn take_step_trace(&self) -> Option<StepTrace> {
        self.last_trace.lock().unwrap().take()
    }

    /// Stops the engine — queued requests are answered with
    /// [`ServeError::ShuttingDown`], a partially formed dispatch is
    /// *not* launched — and returns the [`ForwardStep`], weights still
    /// loaded, ready to serve again or to hand back to training
    /// tooling.
    pub fn shutdown(mut self) -> ForwardStep {
        let _ = self.tx.send(Msg::Shutdown);
        self.engine
            .take()
            .expect("engine already joined")
            .join()
            .expect("the serve engine thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.engine.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }
}
