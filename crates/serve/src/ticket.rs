//! The client half of one in-flight request.

use std::sync::mpsc;
use std::time::Duration;

use raxpp_ir::Tensor;

use crate::ServeError;

/// A claim on one served request's outputs.
///
/// Returned by [`crate::Server::submit`]; redeem it with
/// [`Ticket::wait`]. Every admitted request is answered in bounded
/// time: with its per-microbatch outputs on success, with
/// [`ServeError::Dispatch`] if its dispatch failed on the fleet, or
/// with [`ServeError::ShuttingDown`] if the server stopped first.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<Vec<Tensor>, ServeError>>,
}

impl Ticket {
    /// The server-assigned request id (also the `<id>` in the
    /// request's `"serve"` trace span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request is answered, returning one output
    /// tensor per model output (the request's pipeline slot, demuxed).
    ///
    /// # Errors
    ///
    /// [`ServeError::Dispatch`] when the carrying dispatch failed;
    /// [`ServeError::ShuttingDown`] when the server stopped before
    /// answering.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Like [`Ticket::wait`], but gives up after `timeout`, returning
    /// `None` (the ticket is consumed; the reply, if any, is dropped).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Vec<Tensor>, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}
