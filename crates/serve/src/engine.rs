//! The single-threaded serving engine: slot packing, dispatch,
//! padding, weight swaps, and fleet repair.
//!
//! One thread owns the [`ForwardStep`] and processes its mailbox
//! strictly in order. That single-threadedness *is* the weight-swap
//! barrier: a swap message is applied between two dispatches because
//! nothing else can interleave, so a parameter generation is never
//! replaced while a forward is reading it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use raxpp_core::{CoreError, ForwardStep};
use raxpp_ir::Tensor;
use raxpp_runtime::{ActorTrace, RuntimeError, SpanEvent, StepTrace};
use raxpp_sched::SlotPlan;

use crate::server::{Msg, Request};
use crate::{ServeConfig, ServeError};

pub(crate) struct Engine {
    step: ForwardStep,
    cfg: ServeConfig,
    rx: mpsc::Receiver<Msg>,
    queue_depth: Arc<AtomicUsize>,
    last_trace: Arc<Mutex<Option<StepTrace>>>,
    /// The slot ledger of the dispatch being formed.
    plan: SlotPlan,
    /// Requests of the forming dispatch, in slot order.
    batch: Vec<Request>,
    /// Filler tensors for padded slots: zeros of the per-microbatch
    /// data shapes, allocated once (tensors are cheap `Arc` clones).
    pad: Vec<Tensor>,
    /// Most recent request latencies (µs), bounded by
    /// `cfg.latency_window` — the source of the p50/p99 gauges.
    window: VecDeque<u64>,
    consecutive_failures: u32,
}

impl Engine {
    pub(crate) fn new(
        step: ForwardStep,
        cfg: ServeConfig,
        rx: mpsc::Receiver<Msg>,
        queue_depth: Arc<AtomicUsize>,
        last_trace: Arc<Mutex<Option<StepTrace>>>,
    ) -> Engine {
        let plan = SlotPlan::new(step.n_mubatches());
        let pad = step
            .data_shapes()
            .iter()
            .map(|s| Tensor::zeros(s.clone()))
            .collect();
        Engine {
            step,
            cfg,
            rx,
            queue_depth,
            last_trace,
            plan,
            batch: Vec::new(),
            pad,
            window: VecDeque::new(),
            consecutive_failures: 0,
        }
    }

    /// The engine loop. Returns the step on shutdown so the server can
    /// hand it back to the caller.
    pub(crate) fn run(mut self) -> ForwardStep {
        loop {
            let msg = if self.batch.is_empty() {
                // Nothing forming: block until traffic arrives.
                match self.rx.recv() {
                    Ok(m) => m,
                    Err(_) => break, // all senders gone
                }
            } else {
                // A dispatch is forming: wait at most until the oldest
                // request's admission deadline, then pad and launch.
                let deadline = self.batch[0].enqueued + self.cfg.max_wait;
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    self.dispatch();
                    continue;
                }
                match self.rx.recv_timeout(left) {
                    Ok(m) => m,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        self.dispatch();
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        self.dispatch();
                        break;
                    }
                }
            };
            match msg {
                Msg::Request(req) => {
                    self.plan
                        .admit()
                        .expect("a full plan must have been dispatched");
                    self.batch.push(req);
                    if self.plan.is_full() {
                        self.dispatch();
                    }
                }
                Msg::Swap { params, reply } => {
                    let r = self
                        .step
                        .load_params(&params)
                        .map_err(|e| ServeError::Swap(e.to_string()));
                    if r.is_ok() {
                        self.step.metrics().inc("serve_weight_swaps_total", 1);
                    }
                    let _ = reply.send(r);
                }
                Msg::SwapCheckpoint { dir, reply } => {
                    let r = self
                        .step
                        .load_latest_checkpoint(&dir)
                        .map_err(|e| ServeError::Swap(e.to_string()));
                    if matches!(r, Ok(Some(_))) {
                        self.step.metrics().inc("serve_weight_swaps_total", 1);
                    }
                    let _ = reply.send(r);
                }
                Msg::Shutdown => break,
            }
        }
        // Answer everything still queued — a partially formed dispatch
        // and any unread mailbox traffic — so no client blocks forever.
        for req in self.batch.drain(..) {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
            let _ = req.reply.send(Err(ServeError::ShuttingDown));
        }
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                Msg::Request(req) => {
                    self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    let _ = req.reply.send(Err(ServeError::ShuttingDown));
                }
                Msg::Swap { reply, .. } => {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                }
                Msg::SwapCheckpoint { reply, .. } => {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                }
                Msg::Shutdown => {}
            }
        }
        self.step
    }

    /// Launches the forming dispatch: pads the free slots, runs one
    /// forward step, demuxes each filled slot's outputs to its ticket
    /// (padded outputs are discarded), and updates the latency gauges.
    /// On failure, errors every carried request (bounded wait) and
    /// repairs the fleet for the next dispatch.
    fn dispatch(&mut self) {
        debug_assert!(!self.batch.is_empty(), "nothing to dispatch");
        let metrics = self.step.metrics().clone();
        metrics.inc("serve_padded_slots_total", self.plan.padded() as u64);
        metrics.set_gauge("serve_slot_utilization", self.plan.utilization());

        // data[input][slot]: filled slots carry request tensors, the
        // padded tail carries zero filler whose outputs nobody reads.
        let n_inputs = self.pad.len();
        let mut data: Vec<Vec<Tensor>> = vec![Vec::with_capacity(self.plan.n_slots()); n_inputs];
        for req in &self.batch {
            for (i, t) in req.inputs.iter().enumerate() {
                data[i].push(t.clone());
            }
        }
        for _ in self.plan.padded_slots() {
            for (i, p) in self.pad.iter().enumerate() {
                data[i].push(p.clone());
            }
        }

        let t0 = Instant::now();
        let result = self.step.forward(&data);
        metrics.observe("serve_batch_time_s", t0.elapsed().as_secs_f64());
        match result {
            Ok(outputs) => {
                self.consecutive_failures = 0;
                metrics.inc("serve_batches_total", 1);
                // Latency of each carried request, admission -> reply.
                let lat_ns: Vec<u64> = self
                    .batch
                    .iter()
                    .map(|r| r.enqueued.elapsed().as_nanos() as u64)
                    .collect();
                self.record_trace(&lat_ns);
                for (slot, req) in self.batch.drain(..).enumerate() {
                    let out = outputs.iter().map(|row| row[slot].clone()).collect();
                    // Depth drops before the reply is sent: a client
                    // woken by its ticket must never observe its own
                    // request still counted as queued.
                    self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    let _ = req.reply.send(Ok(out));
                    metrics.inc("serve_replies_total", 1);
                }
                for ns in &lat_ns {
                    if self.window.len() == self.cfg.latency_window.max(1) {
                        self.window.pop_front();
                    }
                    self.window.push_back(ns / 1_000);
                }
                let mut sorted: Vec<u64> = self.window.iter().copied().collect();
                sorted.sort_unstable();
                metrics.set_gauge("serve_p50_us", percentile(&sorted, 50.0));
                metrics.set_gauge("serve_p99_us", percentile(&sorted, 99.0));
            }
            Err(e) => {
                self.consecutive_failures += 1;
                metrics.inc("serve_failed_batches_total", 1);
                let msg = e.to_string();
                for req in self.batch.drain(..) {
                    self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    let _ = req.reply.send(Err(ServeError::Dispatch(msg.clone())));
                    metrics.inc("serve_request_failures_total", 1);
                }
                self.repair(&e);
            }
        }
        metrics.set_gauge(
            "serve_queue_depth",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        self.plan.reset();
    }

    /// Degraded-mode ladder after a failed dispatch: respawn dead
    /// actors in place, or — once `rebalance_after` consecutive
    /// dispatches failed and the culprit is known — permanently fold
    /// its stages onto survivors. Either way the current weight
    /// generation is re-placed, so the next dispatch answers from the
    /// same weights.
    fn repair(&mut self, e: &CoreError) {
        let dead = match e {
            CoreError::Runtime(RuntimeError::ActorDied { actor })
            | CoreError::Runtime(RuntimeError::Exec { actor, .. })
            | CoreError::Runtime(RuntimeError::Timeout { actor }) => Some(*actor),
            _ => None,
        };
        if let (Some(actor), Some(after)) = (dead, self.cfg.rebalance_after) {
            if self.consecutive_failures >= after && self.step.rebalance(&[actor]).is_ok() {
                self.consecutive_failures = 0;
                return;
            }
        }
        let _ = self.step.recover();
    }

    /// When the runtime traced this dispatch, appends the serving
    /// tier's pseudo-actor track — one `"serve"` span per carried
    /// request, admission to reply — and parks the merged trace for
    /// [`crate::Server::take_step_trace`]. Trace schema v7.
    fn record_trace(&self, lat_ns: &[u64]) {
        if !self.step.runtime().tracing_enabled() {
            return;
        }
        let Some(mut trace) = self.step.runtime().take_step_trace() else {
            return;
        };
        let now_ns = self.step.runtime().now_ns();
        let track = self.step.runtime().program().n_actors();
        let spans = self
            .batch
            .iter()
            .zip(lat_ns)
            .enumerate()
            .map(|(slot, (req, &ns))| SpanEvent {
                instr: slot as u32,
                kind: "serve",
                name: format!("request {} (slot {slot})", req.id),
                start_ns: now_ns.saturating_sub(ns),
                dur_ns: ns,
                bytes: 0,
                alloc: None,
            })
            .collect();
        trace.actors.push(ActorTrace {
            actor: track,
            spans,
            dropped: 0,
        });
        *self.last_trace.lock().unwrap() = Some(trace);
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (µs); 0 for
/// an empty window.
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50.0);
        assert_eq!(percentile(&s, 99.0), 99.0);
        assert_eq!(percentile(&s, 100.0), 100.0);
        assert_eq!(percentile(&[7], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
