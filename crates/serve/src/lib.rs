//! `raxpp-serve` — pipelined inference serving with **continuous
//! batching** on the MPMD runtime.
//!
//! Training and serving share one compiled artifact: a
//! [`ForwardStep`] is the forward half of the training step —
//! extracted by `raxpp_taskgraph::forward_project`, so its jaxprs and
//! buffers are byte-for-byte the ones training executes — bound to a
//! live actor fleet. This crate adds the request plane on top:
//!
//! * **Continuous batching at step granularity.** A forward dispatch
//!   always executes `schedule.n_mubatches()` pipeline slots; an
//!   arriving request takes the next free slot of the dispatch being
//!   formed ([`raxpp_sched::SlotPlan`]). The dispatch launches the
//!   moment every slot is taken, or when the admission deadline
//!   ([`ServeConfig::max_wait`]) of its oldest request fires — only
//!   then are the remaining slots padded, and their outputs are
//!   discarded.
//! * **Zero-downtime weight swaps.** [`Server::swap_weights`] /
//!   [`Server::load_latest_checkpoint`] install a new parameter
//!   generation strictly *between* dispatches: the engine is one
//!   thread, so a dispatch in flight keeps its generation and the next
//!   one reads the new buffers. No request ever mixes generations.
//! * **Degraded-mode serving.** A failed dispatch errors its
//!   in-flight requests (bounded — nobody waits forever), then the
//!   engine respawns dead actors ([`ForwardStep::recover`]) or, after
//!   [`ServeConfig::rebalance_after`] consecutive failures, folds the
//!   dead actors' stages onto survivors ([`ForwardStep::rebalance`])
//!   and keeps answering from the same weight generation.
//!
//! Request latency (`serve_p50_us`/`serve_p99_us`), queue depth, and
//! throughput counters land in the same metrics registry the trainer
//! uses, and traced dispatches carry `"serve"` spans on a pseudo-actor
//! track (trace schema v7) — see `docs/observability.md`.
//!
//! The traced function is the *training* jaxpr — first output a
//! scalar loss, predictions as auxiliary outputs — because the
//! compiler's front half (stage partitioning, per-stage
//! differentiation, unrolling) runs before the forward projection
//! strips the backward tasks. Serve the model you train; each request
//! gets every traced output for its slot.
//!
//! # Example: serve a 2-stage MLP
//!
//! ```
//! use raxpp_ir::{Tensor, TraceCtx};
//! use raxpp_sched::gpipe;
//! use raxpp_serve::{compile_forward_step, ForwardOptions, Server, ServeConfig};
//!
//! // The training trace: loss first, the prediction as aux output.
//! let ctx = TraceCtx::new();
//! let w1 = ctx.input([4, 4]);
//! let w2 = ctx.input([4, 4]);
//! let x = ctx.input([2, 4]);
//! let h = ctx.pipeline_yield(&x.matmul(&w1)?.tanh());
//! let y = h.matmul(&w2)?;
//! let loss = y.mul(&y)?.sum().scale(0.5);
//! let jaxpr = ctx.finish(&[loss, y])?;
//!
//! let step = compile_forward_step(&jaxpr, 2, &gpipe(2, 2)?, ForwardOptions::default())?;
//! step.load_params(&[Tensor::eye(4), Tensor::eye(4)])?;
//! let server = Server::start(step, ServeConfig::default());
//!
//! // Two concurrent requests fill the two pipeline slots -> one dispatch.
//! let t0 = server.submit(vec![Tensor::full([2, 4], 0.1)])?;
//! let t1 = server.submit(vec![Tensor::full([2, 4], 0.2)])?;
//! let out = t0.wait()?; // [loss, y] for request 0's slot
//! assert_eq!(out[1].shape(), &raxpp_ir::Shape::from([2, 4]));
//! t1.wait()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

// Compile-and-run the code blocks of the serving guide as doctests, so
// `docs/serving.md` can never drift from the API it documents (same
// treatment as `docs/parallelism.md` / `docs/determinism.md` in
// `raxpp-core`).
#[cfg(doctest)]
#[doc = include_str!("../../../docs/serving.md")]
mod doc_serving {}

mod engine;
mod server;
mod ticket;

pub use server::Server;
pub use ticket::Ticket;

// The compile-side serving API lives in `raxpp-core` (it is the
// forward projection of `compile_train_step`); re-exported here so a
// serving binary needs only this crate.
pub use raxpp_core::{compile_forward_step, ForwardOptions, ForwardStep};

use std::fmt;
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission deadline: how long the oldest queued request may wait
    /// for the dispatch to fill before the engine pads the remaining
    /// slots and launches anyway. Lower bounds tail latency under
    /// trickle load; higher improves slot utilization. Default 2 ms.
    pub max_wait: Duration,
    /// After this many *consecutive* failed dispatches with a known
    /// dead actor, fold that actor's stages onto survivors
    /// ([`ForwardStep::rebalance`]) instead of respawning it
    /// ([`ForwardStep::recover`]). `None` (the default) always
    /// respawns.
    pub rebalance_after: Option<u32>,
    /// Number of most-recent request latencies retained for the
    /// `serve_p50_us` / `serve_p99_us` gauges. Default 1024.
    pub latency_window: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_wait: Duration::from_millis(2),
            rebalance_after: None,
            latency_window: 1024,
        }
    }
}

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request was malformed (wrong input count or tensor shapes);
    /// nothing was enqueued.
    BadRequest(String),
    /// The dispatch carrying this request failed on the fleet. The
    /// request is *not* retried — the engine repairs the fleet and the
    /// next dispatch proceeds; the client decides whether to resubmit.
    Dispatch(String),
    /// A weight swap was rejected (shape mismatch, unreadable
    /// checkpoint, or placement failure); the previous generation
    /// stays live.
    Swap(String),
    /// The server is shutting down (or its engine is gone); the
    /// request was not served.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Dispatch(m) => write!(f, "dispatch failed: {m}"),
            ServeError::Swap(m) => write!(f, "weight swap failed: {m}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}
