//! Property-style tests over the schedule builders and the idealized
//! simulator, exhaustively sweeping the parameter grids the original
//! proptest harness sampled from.

use raxpp_sched::{
    gpipe, ideal_bubble_ratio, interleaved_1f1b, one_f1b, simulate, zero_bubble_h1, UniformCost,
};

/// Every builder output validates (construction implies validation)
/// and simulates to completion for arbitrary sizes.
#[test]
fn builders_always_validate() {
    for pp in 1usize..=8 {
        for mult in 1usize..=4 {
            for v in 1usize..=4 {
                let mb = pp * mult;
                for s in [
                    gpipe(pp, mb).unwrap(),
                    one_f1b(pp, mb).unwrap(),
                    interleaved_1f1b(pp, mb, v).unwrap(),
                    zero_bubble_h1(pp, mb).unwrap(),
                ] {
                    let sim = simulate(&s, UniformCost::default()).unwrap();
                    assert!(sim.makespan > 0.0, "pp={pp} mb={mb} v={v}");
                    assert!(
                        sim.bubble_ratio >= -1e-9 && sim.bubble_ratio < 1.0,
                        "pp={pp} mb={mb} v={v}: {}",
                        sim.bubble_ratio
                    );
                }
            }
        }
    }
}

/// 1F1B never has a longer makespan than GPipe, and both contain the
/// serial lower bound m·(fwd+bwd).
#[test]
fn one_f1b_at_most_gpipe() {
    let cost = UniformCost::default();
    for pp in 1usize..=8 {
        for mb in 1usize..=24 {
            let g = simulate(&gpipe(pp, mb).unwrap(), cost).unwrap();
            let f = simulate(&one_f1b(pp, mb).unwrap(), cost).unwrap();
            assert!(f.makespan <= g.makespan + 1e-9, "pp={pp} mb={mb}");
            let serial = mb as f64 * (cost.fwd + cost.bwd);
            assert!(f.makespan >= serial - 1e-9, "pp={pp} mb={mb}");
        }
    }
}

/// With equal fwd/bwd costs, 1F1B's bubble matches the analytic
/// (pp-1)/(m+pp-1) exactly.
#[test]
fn one_f1b_bubble_matches_formula() {
    let cost = UniformCost {
        fwd: 1.0,
        bwd: 1.0,
        wgrad: 0.0,
        p2p: 0.0,
    };
    for pp in 1usize..=8 {
        for mb in 1usize..=24 {
            let f = simulate(&one_f1b(pp, mb).unwrap(), cost).unwrap();
            let ideal = ideal_bubble_ratio(pp, mb, 1);
            assert!(
                (f.bubble_ratio - ideal).abs() < 1e-9,
                "pp={pp} mb={mb}: {} vs {ideal}",
                f.bubble_ratio
            );
        }
    }
}

/// 1F1B's per-rank live activations never exceed pp - rank.
#[test]
fn one_f1b_memory_bound() {
    for pp in 1usize..=8 {
        for mb in 1usize..=24 {
            let f = simulate(&one_f1b(pp, mb).unwrap(), UniformCost::default()).unwrap();
            for (r, &peak) in f.peak_live_activations.iter().enumerate() {
                assert!(peak <= (pp - r).min(mb), "pp={pp} mb={mb} rank {r}: {peak}");
            }
        }
    }
}

/// GPipe's rank-0 peak equals the microbatch count exactly.
#[test]
fn gpipe_memory_is_microbatch_count() {
    for pp in 2usize..=8 {
        for mb in 1usize..=24 {
            let g = simulate(&gpipe(pp, mb).unwrap(), UniformCost::default()).unwrap();
            assert_eq!(g.peak_live_activations[0], mb, "pp={pp} mb={mb}");
        }
    }
}

/// Zero-bubble never loses to 1F1B when the split halves sum to the
/// combined backward cost.
#[test]
fn zero_bubble_never_loses() {
    for pp in 1usize..=8 {
        for mult in 1usize..=3 {
            let mb = pp * mult + 1; // deliberately not divisible by pp
            let combined = simulate(&one_f1b(pp, mb).unwrap(), UniformCost::default()).unwrap();
            let split = simulate(
                &zero_bubble_h1(pp, mb).unwrap(),
                UniformCost {
                    fwd: 1.0,
                    bwd: 1.0,
                    wgrad: 1.0,
                    p2p: 0.0,
                },
            )
            .unwrap();
            assert!(
                split.makespan <= combined.makespan + 1e-9,
                "pp={pp} mb={mb}"
            );
        }
    }
}

/// Interleaving with scaled-down task sizes never increases the
/// bubble ratio relative to plain 1F1B.
#[test]
fn interleaving_never_hurts_bubble() {
    for pp in 2usize..=6 {
        for mult in 1usize..=3 {
            for v in 2usize..=4 {
                let mb = pp * mult;
                let base = simulate(&one_f1b(pp, mb).unwrap(), UniformCost::default()).unwrap();
                let scaled = UniformCost {
                    fwd: 1.0 / v as f64,
                    bwd: 2.0 / v as f64,
                    wgrad: 0.0,
                    p2p: 0.0,
                };
                let inter = simulate(&interleaved_1f1b(pp, mb, v).unwrap(), scaled).unwrap();
                assert!(
                    inter.bubble_ratio <= base.bubble_ratio + 1e-9,
                    "pp={pp} mb={mb} v={v}"
                );
            }
        }
    }
}
