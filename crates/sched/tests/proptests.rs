//! Property-based tests over the schedule builders and the idealized
//! simulator.

use proptest::prelude::*;
use raxpp_sched::{
    gpipe, ideal_bubble_ratio, interleaved_1f1b, one_f1b, simulate, zero_bubble_h1, UniformCost,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every builder output validates (construction implies validation)
    /// and simulates to completion for arbitrary sizes.
    #[test]
    fn builders_always_validate(pp in 1usize..=8, mult in 1usize..=4, v in 1usize..=4) {
        let mb = pp * mult;
        for s in [
            gpipe(pp, mb).unwrap(),
            one_f1b(pp, mb).unwrap(),
            interleaved_1f1b(pp, mb, v).unwrap(),
            zero_bubble_h1(pp, mb).unwrap(),
        ] {
            let sim = simulate(&s, UniformCost::default()).unwrap();
            prop_assert!(sim.makespan > 0.0);
            prop_assert!(sim.bubble_ratio >= -1e-9 && sim.bubble_ratio < 1.0);
        }
    }

    /// 1F1B never has a longer makespan than GPipe, and both contain the
    /// serial lower bound m·(fwd+bwd).
    #[test]
    fn one_f1b_at_most_gpipe(pp in 1usize..=8, mb in 1usize..=24) {
        let cost = UniformCost::default();
        let g = simulate(&gpipe(pp, mb).unwrap(), cost).unwrap();
        let f = simulate(&one_f1b(pp, mb).unwrap(), cost).unwrap();
        prop_assert!(f.makespan <= g.makespan + 1e-9);
        let serial = mb as f64 * (cost.fwd + cost.bwd);
        prop_assert!(f.makespan >= serial - 1e-9);
    }

    /// With equal fwd/bwd costs, 1F1B's bubble matches the analytic
    /// (pp-1)/(m+pp-1) exactly.
    #[test]
    fn one_f1b_bubble_matches_formula(pp in 1usize..=8, mb in 1usize..=24) {
        let cost = UniformCost { fwd: 1.0, bwd: 1.0, wgrad: 0.0, p2p: 0.0 };
        let f = simulate(&one_f1b(pp, mb).unwrap(), cost).unwrap();
        let ideal = ideal_bubble_ratio(pp, mb, 1);
        prop_assert!((f.bubble_ratio - ideal).abs() < 1e-9,
            "pp={pp} mb={mb}: {} vs {ideal}", f.bubble_ratio);
    }

    /// 1F1B's per-rank live activations never exceed pp - rank.
    #[test]
    fn one_f1b_memory_bound(pp in 1usize..=8, mb in 1usize..=24) {
        let f = simulate(&one_f1b(pp, mb).unwrap(), UniformCost::default()).unwrap();
        for (r, &peak) in f.peak_live_activations.iter().enumerate() {
            prop_assert!(peak <= (pp - r).min(mb), "rank {r}: {peak}");
        }
    }

    /// GPipe's rank-0 peak equals the microbatch count exactly.
    #[test]
    fn gpipe_memory_is_microbatch_count(pp in 2usize..=8, mb in 1usize..=24) {
        let g = simulate(&gpipe(pp, mb).unwrap(), UniformCost::default()).unwrap();
        prop_assert_eq!(g.peak_live_activations[0], mb);
    }

    /// Zero-bubble never loses to 1F1B when the split halves sum to the
    /// combined backward cost.
    #[test]
    fn zero_bubble_never_loses(pp in 1usize..=8, mult in 1usize..=3) {
        let mb = pp * mult + 1; // deliberately not divisible by pp
        let combined = simulate(&one_f1b(pp, mb).unwrap(), UniformCost::default()).unwrap();
        let split = simulate(
            &zero_bubble_h1(pp, mb).unwrap(),
            UniformCost { fwd: 1.0, bwd: 1.0, wgrad: 1.0, p2p: 0.0 },
        ).unwrap();
        prop_assert!(split.makespan <= combined.makespan + 1e-9);
    }

    /// Interleaving with scaled-down task sizes never increases the
    /// bubble ratio relative to plain 1F1B.
    #[test]
    fn interleaving_never_hurts_bubble(pp in 2usize..=6, mult in 1usize..=3, v in 2usize..=4) {
        let mb = pp * mult;
        let base = simulate(&one_f1b(pp, mb).unwrap(), UniformCost::default()).unwrap();
        let scaled = UniformCost {
            fwd: 1.0 / v as f64,
            bwd: 2.0 / v as f64,
            wgrad: 0.0,
            p2p: 0.0,
        };
        let inter = simulate(&interleaved_1f1b(pp, mb, v).unwrap(), scaled).unwrap();
        prop_assert!(inter.bubble_ratio <= base.bubble_ratio + 1e-9);
    }
}
