//! Tensor-parallel actor-space arithmetic.
//!
//! When a pipeline of `A` host actors is sharded over a tensor-parallel
//! axis of degree `t` (see `raxpp-taskgraph`'s `shard_program`), every
//! host actor `a` expands into the contiguous rank block
//! `a*t .. a*t + t - 1`. [`TpMap`] centralizes that arithmetic so the
//! compiler, the runtime, and tests all agree on shard-task identity:
//! shard actor `a*t + r` is "(pipeline actor `a`, tp rank `r`)".

/// Mapping between host (pipeline) actor indices and tensor-parallel
/// shard actor indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpMap {
    degree: usize,
}

impl TpMap {
    /// Builds a map for the given tensor-parallel degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> TpMap {
        assert!(degree > 0, "tensor-parallel degree must be positive");
        TpMap { degree }
    }

    /// The tensor-parallel degree `t`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The shard actor of `(host, rank)`.
    pub fn shard_actor(&self, host: usize, rank: usize) -> usize {
        debug_assert!(rank < self.degree);
        host * self.degree + rank
    }

    /// The host (pipeline) actor a shard actor belongs to.
    pub fn host_of(&self, shard: usize) -> usize {
        shard / self.degree
    }

    /// The tensor-parallel rank of a shard actor within its host.
    pub fn rank_of(&self, shard: usize) -> usize {
        shard % self.degree
    }

    /// Total shard actors for `n_hosts` pipeline actors.
    pub fn n_shard_actors(&self, n_hosts: usize) -> usize {
        n_hosts * self.degree
    }

    /// The rank-ascending collective group of one host actor.
    pub fn group_of(&self, host: usize) -> Vec<usize> {
        (0..self.degree)
            .map(|r| self.shard_actor(host, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = TpMap::new(4);
        for host in 0..3 {
            for rank in 0..4 {
                let s = m.shard_actor(host, rank);
                assert_eq!(m.host_of(s), host);
                assert_eq!(m.rank_of(s), rank);
            }
        }
        assert_eq!(m.n_shard_actors(3), 12);
    }

    #[test]
    fn groups_are_rank_ascending() {
        let m = TpMap::new(2);
        assert_eq!(m.group_of(0), vec![0, 1]);
        assert_eq!(m.group_of(2), vec![4, 5]);
        assert!(m.group_of(1).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn degree_one_is_identity() {
        let m = TpMap::new(1);
        assert_eq!(m.shard_actor(5, 0), 5);
        assert_eq!(m.host_of(5), 5);
        assert_eq!(m.rank_of(5), 0);
    }

    #[test]
    #[should_panic]
    fn zero_degree_panics() {
        TpMap::new(0);
    }
}
