//! Built-in pipeline schedules: GPipe, 1F1B, and interleaved 1F1B.
//!
//! All builders produce validated [`Schedule`]s; anything they can build,
//! a user could also hand-write through [`Schedule::new`] — the paper's
//! point is precisely that schedules are user-level data (§4.2).

use crate::schedule::{Schedule, ScheduleError};
use crate::task::Task;

/// The GPipe schedule (Huang et al., 2019): every actor runs all forward
/// microbatches for its stage, then all backward microbatches in reverse
/// order. Simple, but activation memory grows with the number of
/// microbatches and the bubble is paid in full (paper §2.2.1, Figure 2
/// top).
///
/// # Errors
///
/// Returns [`ScheduleError::Invalid`] for zero `pp`/`n_mubatches`.
pub fn gpipe(pp: usize, n_mubatches: usize) -> Result<Schedule, ScheduleError> {
    if pp == 0 || n_mubatches == 0 {
        return Err(ScheduleError::Invalid(
            "gpipe requires pp > 0 and microbatches > 0".into(),
        ));
    }
    let actors = (0..pp)
        .map(|r| {
            let mut tasks = Vec::with_capacity(2 * n_mubatches);
            tasks.extend((0..n_mubatches).map(|mb| Task::fwd(mb, r)));
            tasks.extend((0..n_mubatches).rev().map(|mb| Task::bwd(mb, r)));
            tasks
        })
        .collect();
    Schedule::new(
        format!("gpipe(pp={pp}, mb={n_mubatches})"),
        pp,
        n_mubatches,
        actors,
    )
}

/// The 1F1B schedule (Narayanan et al., 2019): after a per-rank warm-up of
/// `pp - rank - 1` forwards, actors alternate one-forward-one-backward,
/// bounding live activations by the stage count instead of the microbatch
/// count (paper §2.2.1, Figure 2 bottom).
///
/// # Errors
///
/// Returns [`ScheduleError::Invalid`] for zero `pp`/`n_mubatches`.
pub fn one_f1b(pp: usize, n_mubatches: usize) -> Result<Schedule, ScheduleError> {
    if pp == 0 || n_mubatches == 0 {
        return Err(ScheduleError::Invalid(
            "1f1b requires pp > 0 and microbatches > 0".into(),
        ));
    }
    let actors = (0..pp)
        .map(|r| {
            let warmup = (pp - r - 1).min(n_mubatches);
            let mut tasks = Vec::with_capacity(2 * n_mubatches);
            tasks.extend((0..warmup).map(|mb| Task::fwd(mb, r)));
            for i in 0..(n_mubatches - warmup) {
                tasks.push(Task::fwd(warmup + i, r));
                tasks.push(Task::bwd(i, r));
            }
            tasks.extend((n_mubatches - warmup..n_mubatches).map(|mb| Task::bwd(mb, r)));
            tasks
        })
        .collect();
    Schedule::new(
        format!("1f1b(pp={pp}, mb={n_mubatches})"),
        pp,
        n_mubatches,
        actors,
    )
}

/// The interleaved 1F1B schedule (Narayanan et al., 2021): each actor owns
/// `circular_repeat` non-adjacent stage chunks (actor `r` owns stages
/// `r, r + pp, r + 2·pp, …`), shrinking the pipeline bubble at the cost of
/// more communication (paper §2.2.1 and §5.1.1).
///
/// Follows Megatron-LM's ordering: warm-up of
/// `2·(pp - r - 1) + (v - 1)·pp` forwards, a steady 1F1B phase, and a
/// backward cool-down. With `circular_repeat == 1` this degenerates to
/// plain [`one_f1b`].
///
/// # Errors
///
/// Returns [`ScheduleError::Invalid`] when `n_mubatches` is not a positive
/// multiple of `pp` (a Megatron requirement that the paper's experiments
/// also satisfy) or when any parameter is zero.
pub fn interleaved_1f1b(
    pp: usize,
    n_mubatches: usize,
    circular_repeat: usize,
) -> Result<Schedule, ScheduleError> {
    if pp == 0 || circular_repeat == 0 {
        return Err(ScheduleError::Invalid(
            "interleaved 1f1b requires pp, repeat > 0".into(),
        ));
    }
    if circular_repeat == 1 {
        return one_f1b(pp, n_mubatches);
    }
    if n_mubatches == 0 || !n_mubatches.is_multiple_of(pp) {
        return Err(ScheduleError::Invalid(format!(
            "interleaved 1f1b requires microbatches ({n_mubatches}) divisible by pp ({pp})"
        )));
    }
    let v = circular_repeat;
    let n_stages = pp * v;
    let total = n_mubatches * v; // fwd units per actor
    let group = pp * v;

    // Forward execution counter -> (microbatch, stage) on rank `r`.
    let fwd_task = |r: usize, k: usize| -> Task {
        let pos = k % group;
        let chunk = pos / pp;
        let mb = (k / group) * pp + pos % pp;
        Task::fwd(mb, chunk * pp + r)
    };
    // Backward execution counter -> (microbatch, stage): chunks descend.
    let bwd_task = |r: usize, k: usize| -> Task {
        let pos = k % group;
        let chunk = v - 1 - pos / pp;
        let mb = (k / group) * pp + pos % pp;
        Task::bwd(mb, chunk * pp + r)
    };

    let actors = (0..pp)
        .map(|r| {
            let warmup = if n_mubatches == pp {
                // Megatron special case: fully fill before draining.
                total
            } else {
                (2 * (pp - r - 1) + (v - 1) * pp).min(total)
            };
            let mut tasks = Vec::with_capacity(2 * total);
            tasks.extend((0..warmup).map(|k| fwd_task(r, k)));
            for i in 0..(total - warmup) {
                tasks.push(fwd_task(r, warmup + i));
                tasks.push(bwd_task(r, i));
            }
            tasks.extend((total - warmup..total).map(|k| bwd_task(r, k)));
            tasks
        })
        .collect();
    Schedule::new(
        format!("interleaved_1f1b(pp={pp}, mb={n_mubatches}, repeat={v})"),
        n_stages,
        n_mubatches,
        actors,
    )
}

/// A zero-bubble-style schedule in the spirit of ZB-H1 (Qi et al.,
/// 2024), the schedule family the paper's related work highlights as
/// enabled by MPMD runtimes: backward passes are split into an
/// activation-gradient half (`Bwd`, on the critical path) and a deferred
/// weight-gradient half (`BwdW`) that fills what would otherwise be
/// pipeline bubble — chiefly the cool-down tail on early ranks.
///
/// This builder uses 1F1B's forward/backward ordering and schedules each
/// rank's weight gradients greedily after the steady state, so live
/// activation memory matches 1F1B while the bubble shrinks (see
/// `raxpp-sched`'s analysis tests for the measured effect).
///
/// # Errors
///
/// Returns [`ScheduleError::Invalid`] for zero `pp`/`n_mubatches`.
pub fn zero_bubble_h1(pp: usize, n_mubatches: usize) -> Result<Schedule, ScheduleError> {
    if pp == 0 || n_mubatches == 0 {
        return Err(ScheduleError::Invalid(
            "zero-bubble requires pp > 0 and microbatches > 0".into(),
        ));
    }
    let actors = (0..pp)
        .map(|r| {
            let warmup = (pp - r - 1).min(n_mubatches);
            let mut tasks = Vec::with_capacity(3 * n_mubatches);
            tasks.extend((0..warmup).map(|mb| Task::fwd(mb, r)));
            // Steady state: one-forward-one-backward(B); weight
            // gradients start flowing once the rank would otherwise
            // stall — later ranks (small warmup) can afford to do W
            // early, early ranks defer W into their cool-down tail.
            let mut w_done = 0usize;
            for i in 0..(n_mubatches - warmup) {
                tasks.push(Task::fwd(warmup + i, r));
                tasks.push(Task::bwd(i, r));
                // Ranks near the end of the pipeline interleave W
                // immediately (they have no tail work); earlier ranks
                // defer r weight-gradients.
                if i >= r {
                    tasks.push(Task::bwd_w(w_done, r));
                    w_done += 1;
                }
            }
            for mb in n_mubatches - warmup..n_mubatches {
                tasks.push(Task::bwd(mb, r));
                if w_done < n_mubatches {
                    tasks.push(Task::bwd_w(w_done, r));
                    w_done += 1;
                }
            }
            tasks.extend((w_done..n_mubatches).map(|mb| Task::bwd_w(mb, r)));
            tasks
        })
        .collect();
    Schedule::new(
        format!("zero_bubble_h1(pp={pp}, mb={n_mubatches})"),
        pp,
        n_mubatches,
        actors,
    )
}

/// The contiguous-block stage→actor assignment used by the folded
/// builders: stage `s` of `n_stages` lives on actor
/// `s * n_actors / n_stages`, so each actor hosts a run of adjacent
/// stages (GPipe-style folding; co-located boundaries cost no
/// communication).
pub fn fold_assign(n_stages: usize, n_actors: usize) -> Vec<usize> {
    (0..n_stages).map(|s| s * n_actors / n_stages).collect()
}

/// [`gpipe`] folded onto `n_actors < n_stages` actors: the
/// `actors < stages`-aware degraded mode, where each actor hosts a
/// contiguous block of stages (see [`fold_assign`]). With
/// `n_actors == n_stages` this is plain [`gpipe`].
///
/// # Errors
///
/// Returns [`ScheduleError::Invalid`] for zero parameters or
/// `n_actors > n_stages`.
pub fn gpipe_folded(
    n_stages: usize,
    n_actors: usize,
    n_mubatches: usize,
) -> Result<Schedule, ScheduleError> {
    if n_actors == 0 || n_actors > n_stages {
        return Err(ScheduleError::Invalid(format!(
            "gpipe_folded requires 0 < n_actors ({n_actors}) <= n_stages ({n_stages})"
        )));
    }
    gpipe(n_stages, n_mubatches)?.fold(&fold_assign(n_stages, n_actors))
}

/// [`one_f1b`] folded onto `n_actors < n_stages` actors (contiguous
/// stage blocks, see [`fold_assign`]). With `n_actors == n_stages` this
/// is plain [`one_f1b`].
///
/// # Errors
///
/// Returns [`ScheduleError::Invalid`] for zero parameters or
/// `n_actors > n_stages`.
pub fn one_f1b_folded(
    n_stages: usize,
    n_actors: usize,
    n_mubatches: usize,
) -> Result<Schedule, ScheduleError> {
    if n_actors == 0 || n_actors > n_stages {
        return Err(ScheduleError::Invalid(format!(
            "one_f1b_folded requires 0 < n_actors ({n_actors}) <= n_stages ({n_stages})"
        )));
    }
    one_f1b(n_stages, n_mubatches)?.fold(&fold_assign(n_stages, n_actors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Dir;

    #[test]
    fn gpipe_validates_across_sizes() {
        for pp in [1, 2, 4, 8] {
            for mb in [1, 2, 4, 16] {
                let s = gpipe(pp, mb).unwrap();
                assert_eq!(s.n_stages(), pp);
                assert_eq!(s.n_actors(), pp);
            }
        }
    }

    #[test]
    fn one_f1b_validates_across_sizes() {
        for pp in [1, 2, 4, 8] {
            for mb in [1, 2, 3, 8, 32] {
                one_f1b(pp, mb).unwrap();
            }
        }
    }

    #[test]
    fn one_f1b_interleaves_steady_state() {
        let s = one_f1b(4, 8).unwrap();
        // Last actor has no warmup: strictly alternating fwd/bwd.
        let tasks = s.actor_tasks(3);
        for (i, t) in tasks.iter().enumerate() {
            let expect = if i % 2 == 0 { Dir::Fwd } else { Dir::Bwd };
            assert_eq!(t.dir, expect, "position {i}");
        }
    }

    #[test]
    fn interleaved_validates_across_sizes() {
        for pp in [2, 4] {
            for v in [2, 3, 4] {
                for mult in [1, 2, 4] {
                    let mb = pp * mult;
                    let s = interleaved_1f1b(pp, mb, v)
                        .unwrap_or_else(|e| panic!("pp={pp} v={v} mb={mb}: {e}"));
                    assert_eq!(s.n_stages(), pp * v);
                    assert_eq!(s.stages_per_actor(), v);
                }
            }
        }
    }

    #[test]
    fn interleaved_stage_ownership_is_circular() {
        let s = interleaved_1f1b(4, 8, 2).unwrap();
        let owners = s.stage_actor();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_repeat_one_is_plain_1f1b() {
        let a = interleaved_1f1b(4, 8, 1).unwrap();
        let b = one_f1b(4, 8).unwrap();
        assert_eq!(a.actors(), b.actors());
    }

    #[test]
    fn interleaved_requires_divisible_microbatches() {
        assert!(interleaved_1f1b(4, 6, 2).is_err());
        assert!(interleaved_1f1b(4, 0, 2).is_err());
    }

    #[test]
    fn zero_bubble_validates_across_sizes() {
        for pp in [1, 2, 4, 8] {
            for mb in [1, 2, 4, 8, 32] {
                let s = zero_bubble_h1(pp, mb).unwrap();
                assert!(s.split_backward() || mb == 0);
            }
        }
    }

    #[test]
    fn zero_bubble_covers_weight_gradients_once() {
        let s = zero_bubble_h1(4, 8).unwrap();
        let w_count = s
            .actors()
            .iter()
            .flatten()
            .filter(|t| t.dir == Dir::BwdW)
            .count();
        assert_eq!(w_count, 4 * 8);
    }

    #[test]
    fn combined_schedules_are_not_split() {
        assert!(!one_f1b(4, 8).unwrap().split_backward());
        assert!(!gpipe(4, 8).unwrap().split_backward());
    }

    #[test]
    fn folded_builders_validate_across_sizes() {
        for stages in [2usize, 4, 8] {
            for actors in 1..=stages {
                for mb in [1, 4, 8] {
                    let g = gpipe_folded(stages, actors, mb).unwrap();
                    assert_eq!(g.n_actors(), actors);
                    assert_eq!(g.n_stages(), stages);
                    let f = one_f1b_folded(stages, actors, mb).unwrap();
                    assert_eq!(f.n_actors(), actors);
                }
            }
        }
        assert!(gpipe_folded(2, 3, 4).is_err());
        assert!(one_f1b_folded(2, 0, 4).is_err());
    }

    #[test]
    fn fold_assign_is_contiguous() {
        assert_eq!(fold_assign(4, 3), vec![0, 0, 1, 2]);
        assert_eq!(fold_assign(8, 4), vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(fold_assign(4, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fold_preserves_per_stage_task_order() {
        // Each stage's (fwd, bwd) task subsequence must keep its relative
        // order through folding — the property that makes folded training
        // bitwise-identical for chain models.
        let orig = one_f1b(4, 8).unwrap();
        let folded = orig.fold(&[0, 0, 1, 2]).unwrap();
        assert_eq!(folded.n_actors(), 3);
        for stage in 0..4 {
            let seq = |s: &Schedule| -> Vec<Task> {
                s.actors()
                    .iter()
                    .flatten()
                    .filter(|t| t.stage == stage)
                    .copied()
                    .collect::<Vec<_>>()
            };
            // Relative order within the owning actor's list.
            let old_owner = orig.stage_actor()[stage];
            let old_seq: Vec<Task> = orig
                .actor_tasks(old_owner)
                .iter()
                .filter(|t| t.stage == stage)
                .copied()
                .collect();
            let new_owner = folded.stage_actor()[stage];
            let new_seq: Vec<Task> = folded
                .actor_tasks(new_owner)
                .iter()
                .filter(|t| t.stage == stage)
                .copied()
                .collect();
            assert_eq!(old_seq, new_seq, "stage {stage} task order changed");
            assert_eq!(seq(&orig).len(), seq(&folded).len());
        }
    }

    #[test]
    fn fold_rejects_bad_assignments() {
        let s = gpipe(4, 4).unwrap();
        assert!(s.fold(&[0, 0, 1]).is_err()); // wrong length
        assert!(s.fold(&[0, 0, 2, 3]).is_err()); // skips new actor 1
    }

    #[test]
    fn gpipe_backward_is_reversed() {
        let s = gpipe(2, 3).unwrap();
        let tasks = s.actor_tasks(0);
        let bwd_mbs: Vec<usize> = tasks
            .iter()
            .filter(|t| t.dir == Dir::Bwd)
            .map(|t| t.mubatch)
            .collect();
        assert_eq!(bwd_mbs, vec![2, 1, 0]);
    }
}
