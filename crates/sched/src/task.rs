//! Pipeline task descriptors: the unit a schedule orders.

use std::fmt;

/// Whether a task is a forward or backward stage computation.
///
/// Zero-bubble schedules (Qi et al., 2024 — the schedule family the
/// paper's related work points at) split the backward pass in two:
/// [`Dir::Bwd`] then carries only the *activation* gradient (the part on
/// the critical path to earlier stages) while [`Dir::BwdW`] computes the
/// *weight* gradient, which can be deferred into pipeline bubbles. A
/// schedule either uses combined backwards (no `BwdW` tasks at all) or
/// split backwards (`BwdW` exactly once per forward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Forward pass of a stage for one microbatch.
    Fwd,
    /// Backward pass of a stage for one microbatch: the full backward in
    /// combined mode, or only the activation-gradient half in split
    /// mode.
    Bwd,
    /// Deferred weight-gradient half of a split backward.
    BwdW,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            match self {
                Dir::Fwd => "fwd",
                Dir::Bwd => "bwd",
                Dir::BwdW => "bwdw",
            }
        )
    }
}

/// One schedulable unit of pipeline work: run stage `stage`'s forward or
/// backward computation for microbatch `mubatch` (paper §4.2's
/// `Task(i=.., ty=.., stage=..)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    /// Gradient-accumulation iteration (microbatch index).
    pub mubatch: usize,
    /// Logical pipeline stage index in `0..n_stages`.
    pub stage: usize,
    /// Forward or backward.
    pub dir: Dir,
}

impl Task {
    /// Convenience constructor for a forward task.
    pub fn fwd(mubatch: usize, stage: usize) -> Task {
        Task {
            mubatch,
            stage,
            dir: Dir::Fwd,
        }
    }

    /// Convenience constructor for a backward task.
    pub fn bwd(mubatch: usize, stage: usize) -> Task {
        Task {
            mubatch,
            stage,
            dir: Dir::Bwd,
        }
    }

    /// Convenience constructor for a deferred weight-gradient task.
    pub fn bwd_w(mubatch: usize, stage: usize) -> Task {
        Task {
            mubatch,
            stage,
            dir: Dir::BwdW,
        }
    }

    /// The tasks this one depends on, given the total stage count:
    ///
    /// * `fwd(i, s)` needs `fwd(i, s-1)`;
    /// * `bwd(i, s)` needs `fwd(i, s)` (saved activations) and
    ///   `bwd(i, s+1)` (incoming cotangent), except for the last stage
    ///   whose backward follows directly from its own forward;
    /// * `bwdw(i, s)` needs `bwd(i, s)` (same operands, but deferrable).
    pub fn deps(&self, n_stages: usize) -> Vec<Task> {
        match self.dir {
            Dir::Fwd => {
                if self.stage == 0 {
                    vec![]
                } else {
                    vec![Task::fwd(self.mubatch, self.stage - 1)]
                }
            }
            Dir::Bwd => {
                let mut d = vec![Task::fwd(self.mubatch, self.stage)];
                if self.stage + 1 < n_stages {
                    d.push(Task::bwd(self.mubatch, self.stage + 1));
                }
                d
            }
            Dir::BwdW => vec![Task::bwd(self.mubatch, self.stage)],
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(mb={}, s={})", self.dir, self.mubatch, self.stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_chain_deps() {
        assert!(Task::fwd(0, 0).deps(4).is_empty());
        assert_eq!(Task::fwd(2, 3).deps(4), vec![Task::fwd(2, 2)]);
    }

    #[test]
    fn backward_deps() {
        assert_eq!(Task::bwd(1, 3).deps(4), vec![Task::fwd(1, 3)]);
        assert_eq!(
            Task::bwd(1, 1).deps(4),
            vec![Task::fwd(1, 1), Task::bwd(1, 2)]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Task::fwd(0, 2).to_string(), "fwd(mb=0, s=2)");
        assert_eq!(Task::bwd(3, 1).to_string(), "bwd(mb=3, s=1)");
        assert_eq!(Task::bwd_w(3, 1).to_string(), "bwdw(mb=3, s=1)");
    }

    #[test]
    fn weight_grad_follows_activation_grad() {
        assert_eq!(Task::bwd_w(2, 1).deps(4), vec![Task::bwd(2, 1)]);
    }
}
