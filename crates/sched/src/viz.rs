//! ASCII timeline rendering of simulated schedules (Figure 2 of the
//! paper).
//!
//! Forward tasks render as the microbatch digit, backward tasks as
//! lowercase letters (`a` = microbatch 0), deferred weight-gradient
//! tasks as uppercase letters, idle time as `.`:
//!
//! ```text
//! actor 0 |0123a.b.c.d|
//! actor 1 |.0123aabbccdd|
//! ```

use crate::analysis::SimResult;
use crate::schedule::Schedule;
use crate::task::Dir;

/// Renders a simulated timeline as one text row per actor.
///
/// `cols` is the number of character columns the makespan is quantized
/// into. Each cell shows the task occupying that instant (forward: digit,
/// backward: letter, idle: `.`).
pub fn render_timeline(sim: &SimResult, cols: usize) -> String {
    let cols = cols.max(1);
    let scale = cols as f64 / sim.makespan.max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for (a, tl) in sim.timeline.iter().enumerate() {
        let mut row = vec!['.'; cols];
        for e in tl {
            let start = (e.start * scale).floor() as usize;
            let end = ((e.end * scale).ceil() as usize).min(cols).max(start + 1);
            let c = match e.task.dir {
                Dir::Fwd => char::from_digit((e.task.mubatch % 10) as u32, 10).unwrap(),
                Dir::Bwd => (b'a' + (e.task.mubatch % 26) as u8) as char,
                Dir::BwdW => (b'A' + (e.task.mubatch % 26) as u8) as char,
            };
            for cell in row.iter_mut().take(end.min(cols)).skip(start.min(cols)) {
                *cell = c;
            }
        }
        out.push_str(&format!("actor {a} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

/// Renders the schedule's task-dependency graph in Graphviz DOT format:
/// one cluster per actor (in execution order), edges for the pipeline's
/// data dependencies. Pipe into `dot -Tsvg` to inspect.
pub fn schedule_dot(schedule: &Schedule) -> String {
    let mut out =
        String::from("digraph schedule {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
    let name_of = |t: &crate::task::Task| format!("\"{}_mb{}_s{}\"", t.dir, t.mubatch, t.stage);
    for (a, tasks) in schedule.actors().iter().enumerate() {
        out.push_str(&format!(
            "  subgraph cluster_{a} {{\n    label=\"actor {a}\";\n"
        ));
        for t in tasks {
            let color = match t.dir {
                Dir::Fwd => "lightblue",
                Dir::Bwd => "lightsalmon",
                Dir::BwdW => "lightgoldenrod",
            };
            out.push_str(&format!(
                "    {} [label=\"{}\\nmb{} s{}\", style=filled, fillcolor={color}];\n",
                name_of(t),
                t.dir,
                t.mubatch,
                t.stage
            ));
        }
        out.push_str("  }\n");
    }
    for tasks in schedule.actors() {
        for t in tasks {
            for d in t.deps(schedule.n_stages()) {
                out.push_str(&format!("  {} -> {};\n", name_of(&d), name_of(t)));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{simulate, UniformCost};
    use crate::builders::{gpipe, one_f1b};

    #[test]
    fn renders_one_row_per_actor() {
        let s = gpipe(3, 4).unwrap();
        let sim = simulate(&s, UniformCost::default()).unwrap();
        let text = render_timeline(&sim, 60);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("actor 0"));
        assert!(text.contains('0'));
        assert!(text.contains('a'));
    }

    #[test]
    fn first_actor_of_gpipe_starts_busy() {
        let s = gpipe(2, 2).unwrap();
        let sim = simulate(&s, UniformCost::default()).unwrap();
        let text = render_timeline(&sim, 40);
        let row0 = text.lines().next().unwrap();
        // Column right after the '|' must be microbatch 0's forward.
        let after_bar = row0.split('|').nth(1).unwrap();
        assert!(after_bar.starts_with('0'));
    }

    #[test]
    fn dot_export_is_wellformed() {
        let s = one_f1b(2, 2).unwrap();
        let dot = schedule_dot(&s);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // 2 actors x 4 tasks = 8 nodes; each bwd depends on its fwd and
        // the downstream bwd.
        assert_eq!(dot.matches("style=filled").count(), 8);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("\"fwd_mb0_s0\" -> \"fwd_mb0_s1\""));
        assert!(dot.contains("\"bwd_mb0_s1\" -> \"bwd_mb0_s0\""));
    }

    #[test]
    fn later_actors_idle_at_start() {
        let s = one_f1b(4, 4).unwrap();
        let sim = simulate(&s, UniformCost::default()).unwrap();
        let text = render_timeline(&sim, 80);
        let last_row = text.lines().last().unwrap();
        let after_bar = last_row.split('|').nth(1).unwrap();
        assert!(
            after_bar.starts_with('.'),
            "expected leading idle: {last_row}"
        );
    }
}
