//! Slot arithmetic for the serving tier's continuous batching.
//!
//! A forward-only step compiled from a [`crate::Schedule`] always
//! executes `n_mubatches()` microbatch *slots* per dispatch — the
//! pipeline's shape is fixed at compile time. Continuous batching
//! (`docs/serving.md`) is therefore slot packing at step granularity:
//! an arriving request takes the next free slot of the dispatch being
//! formed; the dispatch launches when every slot is taken (a full
//! batch) or when the admission deadline of its oldest request fires,
//! in which case the remaining slots are *padded* and their outputs
//! discarded.
//!
//! [`SlotPlan`] is that bookkeeping, factored out of the engine so the
//! serve crate, its tests, and the closed-loop bench all compute
//! filled/padded/utilization numbers the same way.

use std::ops::Range;

/// The slot ledger of one forming dispatch: how many of the step's
/// pipeline slots are taken by real requests, and which remain to be
/// padded if the deadline fires first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPlan {
    n_slots: usize,
    filled: usize,
}

impl SlotPlan {
    /// An empty plan over the step's slot count
    /// (`schedule.n_mubatches()`).
    ///
    /// # Panics
    ///
    /// Panics when `n_slots` is zero — a schedule always has at least
    /// one microbatch.
    pub fn new(n_slots: usize) -> SlotPlan {
        assert!(n_slots > 0, "a dispatch needs at least one slot");
        SlotPlan { n_slots, filled: 0 }
    }

    /// Admits one request, returning the slot it occupies, or `None`
    /// when the dispatch is already full (the request belongs to the
    /// *next* plan).
    pub fn admit(&mut self) -> Option<usize> {
        if self.filled == self.n_slots {
            return None;
        }
        self.filled += 1;
        Some(self.filled - 1)
    }

    /// Slots per dispatch.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Slots taken by real requests.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Slots that would be padded if the plan dispatched now.
    pub fn padded(&self) -> usize {
        self.n_slots - self.filled
    }

    /// The padded tail `filled..n_slots` — the slot indices whose
    /// inputs are filler and whose outputs the engine discards.
    pub fn padded_slots(&self) -> Range<usize> {
        self.filled..self.n_slots
    }

    /// Whether every slot is taken (dispatch immediately: waiting
    /// longer cannot improve the batch).
    pub fn is_full(&self) -> bool {
        self.filled == self.n_slots
    }

    /// Whether no slot is taken (nothing to dispatch; no deadline is
    /// armed).
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Fraction of the dispatch's compute doing real work:
    /// `filled / n_slots`. The serving tier reports this per dispatch
    /// as `serve_slot_utilization`.
    pub fn utilization(&self) -> f64 {
        self.filled as f64 / self.n_slots as f64
    }

    /// Empties the plan for the next dispatch.
    pub fn reset(&mut self) {
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_in_slot_order_then_refuses() {
        let mut plan = SlotPlan::new(3);
        assert!(plan.is_empty());
        assert_eq!(plan.admit(), Some(0));
        assert!(!plan.is_empty() && !plan.is_full());
        assert_eq!(plan.admit(), Some(1));
        assert_eq!(plan.admit(), Some(2));
        assert!(plan.is_full());
        assert_eq!(plan.admit(), None, "a full plan admits nothing");
    }

    #[test]
    fn padding_accounts_for_the_tail() {
        let mut plan = SlotPlan::new(4);
        plan.admit();
        plan.admit();
        assert_eq!(plan.filled(), 2);
        assert_eq!(plan.padded(), 2);
        assert_eq!(plan.padded_slots(), 2..4);
        assert!((plan.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_starts_the_next_dispatch() {
        let mut plan = SlotPlan::new(2);
        plan.admit();
        plan.admit();
        plan.reset();
        assert!(plan.is_empty());
        assert_eq!(plan.admit(), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        SlotPlan::new(0);
    }
}
