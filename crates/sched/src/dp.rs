//! Data-parallel actor-space arithmetic.
//!
//! When a compiled program of `base` actors (pipeline actors, already
//! expanded by any tensor-parallel sharding) is replicated over a
//! data-parallel axis of degree `R` (see `raxpp-taskgraph`'s
//! `replicate_program`), replica `rep`'s copy of base actor `a` is
//! `rep*base + a`: replicas occupy contiguous blocks of the raw actor
//! space. [`DpMap`] centralizes that arithmetic so the compiler, the
//! runtime, and tests all agree on replica-actor identity, exactly as
//! [`TpMap`](crate::TpMap) does for the tensor-parallel axis — the two
//! compose, with the TP expansion applied first (so `base` is already
//! `hosts * t`).

/// Mapping between base (single-replica) actor indices and raw
/// (replicated) actor indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpMap {
    replicas: usize,
    base_actors: usize,
}

impl DpMap {
    /// Builds a map for `replicas` copies of a `base_actors`-actor
    /// program.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(replicas: usize, base_actors: usize) -> DpMap {
        assert!(replicas > 0, "data-parallel degree must be positive");
        assert!(base_actors > 0, "base actor count must be positive");
        DpMap {
            replicas,
            base_actors,
        }
    }

    /// The data-parallel degree `R`.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Actors per replica (the pre-replication program size).
    pub fn base_actors(&self) -> usize {
        self.base_actors
    }

    /// The raw actor of `(replica, base actor)`.
    pub fn replica_actor(&self, replica: usize, base: usize) -> usize {
        debug_assert!(replica < self.replicas);
        debug_assert!(base < self.base_actors);
        replica * self.base_actors + base
    }

    /// The replica a raw actor belongs to.
    pub fn replica_of(&self, raw: usize) -> usize {
        raw / self.base_actors
    }

    /// The base (single-replica) actor index of a raw actor.
    pub fn base_of(&self, raw: usize) -> usize {
        raw % self.base_actors
    }

    /// Total raw actors.
    pub fn n_actors(&self) -> usize {
        self.replicas * self.base_actors
    }

    /// The replica-ascending collective group of one base actor: the
    /// `R` raw actors holding that pipeline position's copy in each
    /// replica. These are the memberships `replicate_program` puts on
    /// DP gradient collectives.
    pub fn group_of(&self, base: usize) -> Vec<usize> {
        (0..self.replicas)
            .map(|rep| self.replica_actor(rep, base))
            .collect()
    }

    /// The global batch size implied by `n_local` microbatches per
    /// replica: every replica runs the same per-replica schedule, so the
    /// global batch is `R * n_local` microbatches.
    pub fn global_mubatches(&self, n_local: usize) -> usize {
        self.replicas * n_local
    }

    /// The global index of replica `rep`'s local microbatch `m`, given
    /// `n_local` microbatches per replica: replicas own contiguous
    /// ascending ranges of the global batch, so this is
    /// `rep * n_local + m`.
    pub fn global_mubatch(&self, rep: usize, m: usize, n_local: usize) -> usize {
        debug_assert!(rep < self.replicas);
        debug_assert!(m < n_local);
        rep * n_local + m
    }

    /// The half-open global microbatch range `[start, end)` that replica
    /// `rep` consumes, given `n_local` microbatches per replica.
    pub fn mubatch_range(&self, rep: usize, n_local: usize) -> std::ops::Range<usize> {
        debug_assert!(rep < self.replicas);
        rep * n_local..(rep + 1) * n_local
    }

    /// The replica that consumes global microbatch `global`, given
    /// `n_local` microbatches per replica.
    pub fn replica_of_mubatch(&self, global: usize, n_local: usize) -> usize {
        debug_assert!(global < self.global_mubatches(n_local));
        global / n_local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = DpMap::new(3, 4);
        for rep in 0..3 {
            for base in 0..4 {
                let raw = m.replica_actor(rep, base);
                assert_eq!(m.replica_of(raw), rep);
                assert_eq!(m.base_of(raw), base);
            }
        }
        assert_eq!(m.n_actors(), 12);
    }

    #[test]
    fn groups_are_replica_ascending_and_strided() {
        let m = DpMap::new(2, 4);
        assert_eq!(m.group_of(0), vec![0, 4]);
        assert_eq!(m.group_of(3), vec![3, 7]);
        assert!(m.group_of(2).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_replica_is_identity() {
        let m = DpMap::new(1, 4);
        assert_eq!(m.replica_actor(0, 3), 3);
        assert_eq!(m.replica_of(3), 0);
        assert_eq!(m.base_of(3), 3);
        assert_eq!(m.group_of(3), vec![3]);
    }

    #[test]
    fn composes_with_tp() {
        // 2 hosts × t=2 → base=4; R=2 → raw actor of (rep=1, host=1,
        // rank=0) is 1*4 + 1*2 + 0 = 6.
        let tp = crate::TpMap::new(2);
        let dp = DpMap::new(2, tp.n_shard_actors(2));
        assert_eq!(dp.replica_actor(1, tp.shard_actor(1, 0)), 6);
    }

    #[test]
    #[should_panic]
    fn zero_replicas_panics() {
        DpMap::new(0, 4);
    }

    #[test]
    fn batch_ranges_partition_the_global_batch() {
        let m = DpMap::new(3, 2);
        let n_local = 4;
        assert_eq!(m.global_mubatches(n_local), 12);
        let mut seen = [false; 12];
        for rep in 0..3 {
            let range = m.mubatch_range(rep, n_local);
            assert_eq!(range.len(), n_local);
            for (local, global) in range.clone().enumerate() {
                assert_eq!(m.global_mubatch(rep, local, n_local), global);
                assert_eq!(m.replica_of_mubatch(global, n_local), rep);
                assert!(!seen[global], "microbatch {global} assigned twice");
                seen[global] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every microbatch must be owned");
    }
}
