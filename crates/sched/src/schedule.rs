//! Schedules: per-actor ordered task lists, and their validation.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::task::{Dir, Task};

/// Error raised when a schedule violates the pipeline execution model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A `(mubatch, stage, dir)` triple appears zero or multiple times.
    Coverage {
        /// The offending task.
        task: Task,
        /// How many times it appears.
        count: usize,
    },
    /// A stage's tasks are spread over more than one actor, or the
    /// backward of a stage is on a different actor than its forward
    /// (violating the colocation assumption of paper §3.3).
    StagePlacement {
        /// The offending stage.
        stage: usize,
    },
    /// In-order execution of the per-actor lists cannot make progress:
    /// every actor's next task waits on a task that never runs.
    Deadlock {
        /// The tasks at each blocked actor's cursor.
        blocked: Vec<Task>,
    },
    /// The schedule parameters are inconsistent (e.g. zero stages).
    Invalid(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Coverage { task, count } => {
                write!(
                    f,
                    "task {task} appears {count} times (expected exactly once)"
                )
            }
            ScheduleError::StagePlacement { stage } => {
                write!(f, "stage {stage} is not confined to a single actor")
            }
            ScheduleError::Deadlock { blocked } => {
                write!(f, "schedule deadlocks; blocked at: ")?;
                for (i, t) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            ScheduleError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A pipeline schedule: for each actor, the ordered list of stage
/// computations it executes during one gradient-accumulation loop
/// (paper §4.2).
///
/// Invariants (checked by [`Schedule::validate`], enforced at
/// construction):
///
/// * every `(mubatch, stage, dir)` pair for `mubatch < n_mubatches`,
///   `stage < n_stages` appears exactly once across all actors — with
///   `BwdW` tasks either absent everywhere (combined backward) or
///   present for every pair (split backward, zero-bubble style);
/// * each stage (forward *and* backward) lives on exactly one actor;
/// * executing each actor's list in order, always waiting for data
///   dependencies, terminates (no deadlock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    name: String,
    n_stages: usize,
    n_mubatches: usize,
    actors: Vec<Vec<Task>>,
}

impl Schedule {
    /// Builds and validates a schedule from per-actor task lists.
    ///
    /// This is the user-defined-schedule entry point from the paper: any
    /// list of tasks per actor is accepted as long as it is a correct
    /// execution of the gradient-accumulation loop.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] describing the violated invariant.
    pub fn new(
        name: impl Into<String>,
        n_stages: usize,
        n_mubatches: usize,
        actors: Vec<Vec<Task>>,
    ) -> Result<Schedule, ScheduleError> {
        let s = Schedule {
            name: name.into(),
            n_stages,
            n_mubatches,
            actors,
        };
        s.validate()?;
        Ok(s)
    }

    /// The schedule's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Number of microbatches per training step (gradient accumulation).
    pub fn n_mubatches(&self) -> usize {
        self.n_mubatches
    }

    /// Number of actors (SPMD process groups).
    pub fn n_actors(&self) -> usize {
        self.actors.len()
    }

    /// The ordered task list of actor `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n_actors()`.
    pub fn actor_tasks(&self, a: usize) -> &[Task] {
        &self.actors[a]
    }

    /// All per-actor task lists.
    pub fn actors(&self) -> &[Vec<Task>] {
        &self.actors
    }

    /// Which actor owns each stage (index = stage).
    pub fn stage_actor(&self) -> Vec<usize> {
        let mut map = vec![usize::MAX; self.n_stages];
        for (a, tasks) in self.actors.iter().enumerate() {
            for t in tasks {
                map[t.stage] = a;
            }
        }
        map
    }

    /// Number of stages per actor (the *circular repeat* degree when
    /// uniform, paper §2.2.1).
    pub fn stages_per_actor(&self) -> usize {
        self.n_stages / self.n_actors().max(1)
    }

    /// Whether this schedule splits backward passes into activation- and
    /// weight-gradient halves (zero-bubble style).
    pub fn split_backward(&self) -> bool {
        self.actors.iter().flatten().any(|t| t.dir == Dir::BwdW)
    }

    /// Checks all schedule invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.n_stages == 0 || self.n_mubatches == 0 || self.actors.is_empty() {
            return Err(ScheduleError::Invalid(
                "schedule needs at least one stage, one microbatch, one actor".into(),
            ));
        }
        // Coverage: every (mb, stage, dir) exactly once. BwdW tasks are
        // all-or-nothing: a split-backward schedule defers every weight
        // gradient, a combined one defers none.
        let split = self.split_backward();
        let mut counts: HashMap<Task, usize> = HashMap::new();
        for tasks in &self.actors {
            for &t in tasks {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let dirs: &[Dir] = if split {
            &[Dir::Fwd, Dir::Bwd, Dir::BwdW]
        } else {
            &[Dir::Fwd, Dir::Bwd]
        };
        for mb in 0..self.n_mubatches {
            for stage in 0..self.n_stages {
                for &dir in dirs {
                    let t = Task {
                        mubatch: mb,
                        stage,
                        dir,
                    };
                    let c = counts.remove(&t).unwrap_or(0);
                    if c != 1 {
                        return Err(ScheduleError::Coverage { task: t, count: c });
                    }
                }
            }
        }
        if let Some((&task, &count)) = counts.iter().next() {
            return Err(ScheduleError::Coverage { task, count });
        }
        // Stage placement: single actor per stage, fwd/bwd colocated.
        for stage in 0..self.n_stages {
            let mut owner: Option<usize> = None;
            for (a, tasks) in self.actors.iter().enumerate() {
                if tasks.iter().any(|t| t.stage == stage) {
                    match owner {
                        None => owner = Some(a),
                        Some(o) if o != a => return Err(ScheduleError::StagePlacement { stage }),
                        _ => {}
                    }
                }
            }
        }
        // Deadlock freedom under in-order execution.
        self.check_progress()?;
        Ok(())
    }

    /// Folds this schedule onto fewer actors: `assign[a]` names the new
    /// actor that takes over old actor `a`'s tasks (the
    /// `actors < stages`-aware mode — one new actor may host several
    /// stages, GPipe-style).
    ///
    /// The merged order is derived by replaying the original schedule in
    /// dependency order and appending each executed task to its new
    /// actor's list, so each stage's task subsequence keeps its relative
    /// order — for chain models this preserves every gradient
    /// accumulation order, and training on the folded schedule stays
    /// bitwise-identical to the original topology.
    ///
    /// `assign` values must cover `0..k` for the new actor count `k`
    /// (surjective onto a compact range).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if `assign` is malformed or the folded
    /// schedule violates a schedule invariant.
    pub fn fold(&self, assign: &[usize]) -> Result<Schedule, ScheduleError> {
        if assign.len() != self.actors.len() {
            return Err(ScheduleError::Invalid(format!(
                "fold assignment has {} entries for {} actors",
                assign.len(),
                self.actors.len()
            )));
        }
        let k = assign.iter().copied().max().map_or(0, |m| m + 1);
        for target in 0..k {
            if !assign.contains(&target) {
                return Err(ScheduleError::Invalid(format!(
                    "fold assignment skips new actor {target} (must cover 0..{k})"
                )));
            }
        }
        // Replay the original schedule in dependency order (the same walk
        // as `check_progress`), appending to the merged lists.
        let mut folded: Vec<Vec<Task>> = vec![Vec::new(); k];
        let mut done: HashSet<Task> = HashSet::new();
        let mut cursor = vec![0usize; self.actors.len()];
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for (a, tasks) in self.actors.iter().enumerate() {
                while cursor[a] < tasks.len() {
                    let t = tasks[cursor[a]];
                    if t.deps(self.n_stages).iter().all(|d| done.contains(d)) {
                        done.insert(t);
                        folded[assign[a]].push(t);
                        cursor[a] += 1;
                        progressed = true;
                    } else {
                        break;
                    }
                }
                if cursor[a] < tasks.len() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                let blocked = self
                    .actors
                    .iter()
                    .enumerate()
                    .filter(|(a, tasks)| cursor[*a] < tasks.len())
                    .map(|(a, tasks)| tasks[cursor[a]])
                    .collect();
                return Err(ScheduleError::Deadlock { blocked });
            }
        }
        Schedule::new(
            format!("{}/folded(actors={k})", self.name),
            self.n_stages,
            self.n_mubatches,
            folded,
        )
    }

    /// Simulates in-order execution (each actor blocks on its next task's
    /// dependencies) and fails if execution cannot complete.
    fn check_progress(&self) -> Result<(), ScheduleError> {
        let mut done: HashSet<Task> = HashSet::new();
        let mut cursor = vec![0usize; self.actors.len()];
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for (a, tasks) in self.actors.iter().enumerate() {
                while cursor[a] < tasks.len() {
                    let t = tasks[cursor[a]];
                    if t.deps(self.n_stages).iter().all(|d| done.contains(d)) {
                        done.insert(t);
                        cursor[a] += 1;
                        progressed = true;
                    } else {
                        break;
                    }
                }
                if cursor[a] < tasks.len() {
                    all_done = false;
                }
            }
            if all_done {
                return Ok(());
            }
            if !progressed {
                let blocked = self
                    .actors
                    .iter()
                    .enumerate()
                    .filter(|(a, tasks)| cursor[*a] < tasks.len())
                    .map(|(a, tasks)| tasks[cursor[a]])
                    .collect();
                return Err(ScheduleError::Deadlock { blocked });
            }
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (stages={}, microbatches={}, actors={})",
            self.name,
            self.n_stages,
            self.n_mubatches,
            self.actors.len()
        )?;
        for (a, tasks) in self.actors.iter().enumerate() {
            write!(f, "  actor {a}: ")?;
            for (i, t) in tasks.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A valid 2-stage, 2-microbatch GPipe-like schedule.
    fn tiny() -> Vec<Vec<Task>> {
        vec![
            vec![
                Task::fwd(0, 0),
                Task::fwd(1, 0),
                Task::bwd(1, 0),
                Task::bwd(0, 0),
            ],
            vec![
                Task::fwd(0, 1),
                Task::fwd(1, 1),
                Task::bwd(1, 1),
                Task::bwd(0, 1),
            ],
        ]
    }

    #[test]
    fn valid_schedule_passes() {
        let s = Schedule::new("tiny", 2, 2, tiny()).unwrap();
        assert_eq!(s.stage_actor(), vec![0, 1]);
        assert_eq!(s.stages_per_actor(), 1);
    }

    #[test]
    fn missing_task_rejected() {
        let mut actors = tiny();
        actors[0].pop();
        let err = Schedule::new("bad", 2, 2, actors).unwrap_err();
        assert!(matches!(err, ScheduleError::Coverage { count: 0, .. }));
    }

    #[test]
    fn duplicate_task_rejected() {
        let mut actors = tiny();
        let dup = actors[0][0];
        actors[0].push(dup);
        let err = Schedule::new("bad", 2, 2, actors).unwrap_err();
        assert!(matches!(err, ScheduleError::Coverage { count: 2, .. }));
    }

    #[test]
    fn split_stage_rejected() {
        // Move bwd of stage 0 to actor 1: violates colocation.
        let actors = vec![
            vec![Task::fwd(0, 0), Task::fwd(1, 0)],
            vec![
                Task::fwd(0, 1),
                Task::fwd(1, 1),
                Task::bwd(1, 1),
                Task::bwd(0, 1),
                Task::bwd(1, 0),
                Task::bwd(0, 0),
            ],
        ];
        let err = Schedule::new("bad", 2, 2, actors).unwrap_err();
        assert_eq!(err, ScheduleError::StagePlacement { stage: 0 });
    }

    #[test]
    fn deadlocking_order_rejected() {
        // Actor 0 waits for bwd before producing the fwd that enables it.
        let actors = vec![
            vec![
                Task::fwd(0, 0),
                Task::bwd(0, 0),
                Task::fwd(1, 0),
                Task::bwd(1, 0),
            ],
            vec![
                Task::fwd(1, 1),
                Task::bwd(1, 1),
                Task::fwd(0, 1),
                Task::bwd(0, 1),
            ],
        ];
        let err = Schedule::new("bad", 2, 2, actors).unwrap_err();
        assert!(matches!(err, ScheduleError::Deadlock { .. }));
    }

    #[test]
    fn extra_out_of_range_task_rejected() {
        let mut actors = tiny();
        actors[1].push(Task::fwd(2, 1)); // microbatch 2 does not exist
        let err = Schedule::new("bad", 2, 2, actors).unwrap_err();
        assert!(matches!(err, ScheduleError::Coverage { count: 1, .. }));
    }

    #[test]
    fn empty_schedule_rejected() {
        assert!(matches!(
            Schedule::new("bad", 0, 1, vec![vec![]]),
            Err(ScheduleError::Invalid(_))
        ));
    }
}
