//! `raxpp-sched` — pipeline schedules for MPMD pipeline parallelism.
//!
//! A [`Schedule`] is, per actor, the ordered list of forward/backward
//! stage computations it executes during one gradient-accumulation loop —
//! exactly the user-facing data structure of paper §4.2. The crate ships
//! the three classic schedules ([`gpipe`], [`one_f1b`],
//! [`interleaved_1f1b`]), validation for arbitrary user-defined
//! schedules, an idealized timing/memory simulator ([`simulate`]), and
//! ASCII timeline rendering ([`render_timeline`], Figure 2).
//!
//! # Example
//!
//! ```
//! use raxpp_sched::{one_f1b, simulate, UniformCost};
//!
//! let schedule = one_f1b(4, 8)?;
//! let sim = simulate(&schedule, UniformCost::default())?;
//! assert!(sim.bubble_ratio < 0.5);
//! # Ok::<(), raxpp_sched::ScheduleError>(())
//! ```

#![deny(missing_docs)]

mod analysis;
mod builders;
mod dp;
mod schedule;
mod serve;
mod task;
mod tp;
mod viz;

pub use analysis::{ideal_bubble_ratio, simulate, SimResult, TimelineEntry, UniformCost};
pub use builders::{
    fold_assign, gpipe, gpipe_folded, interleaved_1f1b, one_f1b, one_f1b_folded, zero_bubble_h1,
};
pub use dp::DpMap;
pub use schedule::{Schedule, ScheduleError};
pub use serve::SlotPlan;
pub use task::{Dir, Task};
pub use tp::TpMap;
pub use viz::{render_timeline, schedule_dot};
