//! Schedule analytics: idealized timing, bubble ratio, and activation
//! memory high-water marks.
//!
//! This module evaluates schedules under a *uniform* cost model (one
//! duration per forward task, one per backward, a flat P2P latency). It is
//! the tool used for Figure 2-style reasoning — e.g. "1F1B bounds live
//! activations by the stage count". The full machine model with kernel
//! efficiency, bandwidth, and memory capacity lives in `raxpp-simcluster`.

use crate::schedule::{Schedule, ScheduleError};
use crate::task::{Dir, Task};

/// Uniform task costs for idealized schedule analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformCost {
    /// Duration of one forward stage task.
    pub fwd: f64,
    /// Duration of one backward stage task (typically ≈2× forward for a
    /// combined backward, ≈1× when the schedule splits backward and this
    /// covers only the activation-gradient half).
    pub bwd: f64,
    /// Duration of a deferred weight-gradient task (split backward
    /// only; ≈1× forward).
    pub wgrad: f64,
    /// Latency added to a dependency crossing actors.
    pub p2p: f64,
}

impl Default for UniformCost {
    fn default() -> Self {
        UniformCost {
            fwd: 1.0,
            bwd: 2.0,
            wgrad: 1.0,
            p2p: 0.0,
        }
    }
}

/// One executed task in the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEntry {
    /// The task that ran.
    pub task: Task,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
}

/// Result of simulating a schedule under a [`UniformCost`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// End-to-end time of the gradient-accumulation loop.
    pub makespan: f64,
    /// Executed tasks per actor, in execution order.
    pub timeline: Vec<Vec<TimelineEntry>>,
    /// Fraction of total actor-time spent idle (the pipeline *bubble*).
    pub bubble_ratio: f64,
    /// Peak number of live microbatch activations per actor (allocated at
    /// the end of a forward task, freed at the end of the matching
    /// backward task).
    pub peak_live_activations: Vec<usize>,
}

/// Simulates in-order execution of `schedule` under `cost`.
///
/// Each actor executes its task list in order; a task starts when the
/// actor is free and all data dependencies have completed (plus `p2p`
/// latency for cross-actor edges).
///
/// # Errors
///
/// Returns [`ScheduleError::Deadlock`] if execution cannot complete —
/// [`Schedule`]s constructed through the public API never deadlock, so
/// this only fires for hand-crafted invalid inputs.
pub fn simulate(schedule: &Schedule, cost: UniformCost) -> Result<SimResult, ScheduleError> {
    let n_actors = schedule.n_actors();
    let n_stages = schedule.n_stages();
    let n_mb = schedule.n_mubatches();
    let stage_actor = schedule.stage_actor();
    let owner = |t: &Task| stage_actor[t.stage];

    // Dense completion table indexed by (stage, mubatch, dir) — the
    // greedy walk is on the tuner's hot path.
    let idx = |t: &Task| {
        (t.stage * n_mb + t.mubatch) * 3
            + match t.dir {
                Dir::Fwd => 0,
                Dir::Bwd => 1,
                Dir::BwdW => 2,
            }
    };
    let mut completion: Vec<f64> = vec![f64::NAN; n_stages * n_mb * 3];
    let done = |c: &[f64], t: &Task| !c[idx(t)].is_nan();
    let mut cursor = vec![0usize; n_actors];
    let mut actor_time = vec![0.0f64; n_actors];
    let mut timeline: Vec<Vec<TimelineEntry>> = vec![Vec::new(); n_actors];

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for a in 0..n_actors {
            let tasks = schedule.actor_tasks(a);
            while cursor[a] < tasks.len() {
                let t = tasks[cursor[a]];
                let deps = t.deps(n_stages);
                let Some(ready) = deps
                    .iter()
                    .map(|d| {
                        if done(&completion, d) {
                            Some(if owner(d) != a {
                                completion[idx(d)] + cost.p2p
                            } else {
                                completion[idx(d)]
                            })
                        } else {
                            None
                        }
                    })
                    .try_fold(0.0f64, |acc, c| c.map(|c| acc.max(c)))
                else {
                    break;
                };
                let start = actor_time[a].max(ready);
                let dur = match t.dir {
                    Dir::Fwd => cost.fwd,
                    Dir::Bwd => cost.bwd,
                    Dir::BwdW => cost.wgrad,
                };
                let end = start + dur;
                completion[idx(&t)] = end;
                timeline[a].push(TimelineEntry {
                    task: t,
                    start,
                    end,
                });
                actor_time[a] = end;
                cursor[a] += 1;
                progressed = true;
            }
            if cursor[a] < schedule.actor_tasks(a).len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            let blocked = (0..n_actors)
                .filter(|&a| cursor[a] < schedule.actor_tasks(a).len())
                .map(|a| schedule.actor_tasks(a)[cursor[a]])
                .collect();
            return Err(ScheduleError::Deadlock { blocked });
        }
    }

    let makespan = actor_time.iter().copied().fold(0.0, f64::max);
    let busy: f64 = timeline
        .iter()
        .flat_map(|tl| tl.iter().map(|e| e.end - e.start))
        .sum();
    let bubble_ratio = if makespan > 0.0 {
        1.0 - busy / (makespan * n_actors as f64)
    } else {
        0.0
    };

    // Activation liveness per actor: interval from fwd end to the end of
    // the matching backward — the weight-gradient half when the schedule
    // splits backward (residuals stay live until W consumes them).
    let split = schedule.split_backward();
    let mut peak = vec![0usize; n_actors];
    for a in 0..n_actors {
        let mut events: Vec<(f64, i32)> = Vec::new();
        for e in &timeline[a] {
            if e.task.dir == Dir::Fwd {
                let b = if split {
                    Task::bwd_w(e.task.mubatch, e.task.stage)
                } else {
                    Task::bwd(e.task.mubatch, e.task.stage)
                };
                let c = completion[idx(&b)];
                let free = if c.is_nan() { makespan } else { c };
                events.push((e.end, 1));
                events.push((free, -1));
            }
        }
        events.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        let mut live = 0i32;
        let mut max_live = 0i32;
        for (_, delta) in events {
            live += delta;
            max_live = max_live.max(live);
        }
        peak[a] = max_live as usize;
    }

    Ok(SimResult {
        makespan,
        timeline,
        bubble_ratio,
        peak_live_activations: peak,
    })
}

/// Analytic bubble ratio of an ideal (non-interleaved) pipeline with `pp`
/// stages and `m` microbatches: `(pp - 1) / (m + pp - 1)`.
///
/// With interleaving degree `v` the warm-up shrinks:
/// `(pp - 1) / (v·m + pp - 1)` per Narayanan et al. (2021).
pub fn ideal_bubble_ratio(pp: usize, m: usize, v: usize) -> f64 {
    let pp = pp as f64;
    let m = m as f64;
    let v = v as f64;
    (pp - 1.0) / (v * m + pp - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{gpipe, interleaved_1f1b, one_f1b};

    #[test]
    fn gpipe_memory_grows_with_microbatches() {
        let s = gpipe(4, 16).unwrap();
        let r = simulate(&s, UniformCost::default()).unwrap();
        // Stage 0 holds all 16 microbatch activations at once.
        assert_eq!(r.peak_live_activations[0], 16);
    }

    #[test]
    fn one_f1b_memory_bounded_by_stages() {
        // The paper's 2-3x activation-memory reduction (§2.2.1): live
        // activations on actor r are at most pp - r, independent of the
        // microbatch count.
        let pp = 4;
        let s = one_f1b(pp, 32).unwrap();
        let r = simulate(&s, UniformCost::default()).unwrap();
        for (rank, &peak) in r.peak_live_activations.iter().enumerate() {
            assert!(
                peak <= pp - rank,
                "actor {rank} peak {peak} exceeds bound {}",
                pp - rank
            );
        }
    }

    #[test]
    fn one_f1b_not_slower_than_gpipe() {
        for (pp, m) in [(2, 4), (4, 8), (4, 16), (8, 32)] {
            let g = simulate(&gpipe(pp, m).unwrap(), UniformCost::default()).unwrap();
            let f = simulate(&one_f1b(pp, m).unwrap(), UniformCost::default()).unwrap();
            assert!(
                f.makespan <= g.makespan + 1e-9,
                "pp={pp} m={m}: 1f1b {} vs gpipe {}",
                f.makespan,
                g.makespan
            );
        }
    }

    #[test]
    fn interleaving_reduces_bubble() {
        // With per-task durations scaled down by the repeat degree
        // (stages shrink as they are sliced finer), a higher circular
        // repeat must reduce the bubble ratio (paper §5.1.1, Figure 6's
        // rising segment).
        let pp = 4;
        let m = 8;
        let mut last = f64::INFINITY;
        for v in [1usize, 2, 4] {
            let s = interleaved_1f1b(pp, m, v).unwrap();
            let cost = UniformCost {
                fwd: 1.0 / v as f64,
                bwd: 2.0 / v as f64,
                wgrad: 0.0,
                p2p: 0.0,
            };
            let r = simulate(&s, cost).unwrap();
            assert!(
                r.bubble_ratio < last + 1e-9,
                "v={v}: bubble {} did not improve on {last}",
                r.bubble_ratio
            );
            last = r.bubble_ratio;
        }
    }

    #[test]
    fn bubble_matches_ideal_for_1f1b() {
        let pp = 4;
        let m = 16;
        let s = one_f1b(pp, m).unwrap();
        // With bwd = fwd the ideal formula is exact.
        let cost = UniformCost {
            fwd: 1.0,
            bwd: 1.0,
            wgrad: 0.0,
            p2p: 0.0,
        };
        let r = simulate(&s, cost).unwrap();
        let ideal = ideal_bubble_ratio(pp, m, 1);
        assert!(
            (r.bubble_ratio - ideal).abs() < 1e-9,
            "measured {} vs ideal {ideal}",
            r.bubble_ratio
        );
    }

    #[test]
    fn more_microbatches_shrink_bubble() {
        let pp = 4;
        let mut last = 1.0;
        for m in [4, 8, 16, 32] {
            let r = simulate(&one_f1b(pp, m).unwrap(), UniformCost::default()).unwrap();
            assert!(r.bubble_ratio < last);
            last = r.bubble_ratio;
        }
    }

    #[test]
    fn p2p_latency_extends_makespan() {
        let s = one_f1b(4, 8).unwrap();
        let base = simulate(&s, UniformCost::default()).unwrap();
        let lat = simulate(
            &s,
            UniformCost {
                p2p: 0.5,
                ..UniformCost::default()
            },
        )
        .unwrap();
        assert!(lat.makespan > base.makespan);
    }

    #[test]
    fn zero_bubble_beats_1f1b_makespan() {
        // Split backward: B and W are each ~1 forward; combined backward
        // is 2 forwards. Same total work, but ZB-H1's drain is shorter
        // and W fills the idle slots.
        use crate::builders::zero_bubble_h1;
        for (pp, m) in [(2, 8), (4, 8), (4, 16), (8, 32)] {
            let combined = simulate(&one_f1b(pp, m).unwrap(), UniformCost::default()).unwrap();
            let split_cost = UniformCost {
                fwd: 1.0,
                bwd: 1.0,
                wgrad: 1.0,
                p2p: 0.0,
            };
            let zb = simulate(&zero_bubble_h1(pp, m).unwrap(), split_cost).unwrap();
            assert!(
                zb.makespan < combined.makespan - 1e-9,
                "pp={pp} m={m}: zb {} vs 1f1b {}",
                zb.makespan,
                combined.makespan
            );
        }
    }

    #[test]
    fn zero_bubble_memory_bounded_by_stage_count() {
        // ZB-H1 keeps activation memory in the same O(pp) class as 1F1B
        // (vs GPipe's O(m)). Our liveness counter holds the *full*
        // residual set until W runs, so the per-rank bound is pp + 1
        // rather than 1F1B's pp - r (the real system retains only W's
        // smaller working set for the deferred half).
        use crate::builders::zero_bubble_h1;
        let pp = 4;
        let m = 16;
        let split_cost = UniformCost {
            fwd: 1.0,
            bwd: 1.0,
            wgrad: 1.0,
            p2p: 0.0,
        };
        let zb = simulate(&zero_bubble_h1(pp, m).unwrap(), split_cost).unwrap();
        for a in 0..pp {
            assert!(
                zb.peak_live_activations[a] <= pp + 1,
                "actor {a}: zb peak {} exceeds stage-count bound",
                zb.peak_live_activations[a]
            );
        }
        // Crucially it does NOT scale with the microbatch count.
        let zb_big = simulate(&zero_bubble_h1(pp, 32).unwrap(), split_cost).unwrap();
        assert_eq!(
            zb.peak_live_activations, zb_big.peak_live_activations,
            "ZB memory must be independent of the microbatch count"
        );
    }

    #[test]
    fn single_actor_has_no_bubble() {
        let s = one_f1b(1, 4).unwrap();
        let r = simulate(&s, UniformCost::default()).unwrap();
        assert!(r.bubble_ratio.abs() < 1e-9);
        assert_eq!(r.makespan, 4.0 * (1.0 + 2.0));
    }
}
