//! Stage partitioning: splitting a traced forward graph into pipeline
//! stages at its `pipeline_yield` markers (paper §3.2-3.3).
//!
//! The placement heuristic is the paper's: a task is formed for each
//! `pipeline_yield`, comprising every computation it transitively depends
//! on that an earlier yield did not already claim; the remaining
//! computations are placed with their operands ("closer to their use").
//! The resulting stage assignment is guaranteed acyclic: every value
//! flows from a lower-numbered stage to a higher-numbered one.

#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use raxpp_ir::{GraphBuilder, IrError, Jaxpr, Prim, Result, VarId};

/// Where a stage-graph input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageInput {
    /// The `i`-th input of the original traced function (parameter or
    /// data).
    Global(usize),
    /// Output `index` of an earlier stage (an activation — possibly from
    /// a *non-adjacent* stage, which the paper's comm inference supports
    /// out of the box).
    CrossStage {
        /// Producing stage.
        stage: usize,
        /// Index into the producing stage's output list.
        index: usize,
    },
}

/// Metadata of one stage-graph output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageOutput {
    /// Later stages that consume this value.
    pub consumers: Vec<usize>,
    /// Positions in the original function's output list this value fills
    /// (e.g. the scalar loss), if any.
    pub global_outputs: Vec<usize>,
}

/// One forward pipeline stage.
#[derive(Debug, Clone)]
pub struct StageFwd {
    /// The stage's dataflow graph.
    pub jaxpr: Jaxpr,
    /// Provenance of each graph input, aligned with `jaxpr.invars()`.
    pub inputs: Vec<StageInput>,
    /// Metadata of each graph output, aligned with `jaxpr.outvars()`.
    pub outputs: Vec<StageOutput>,
}

/// A forward graph split into pipeline stages.
#[derive(Debug, Clone)]
pub struct StagedForward {
    /// The stages, in pipeline order.
    pub stages: Vec<StageFwd>,
    /// For each original input, the sorted list of stages that consume it
    /// directly. More than one stage means a *shared weight* (paper §3.4,
    /// e.g. tied embeddings).
    pub invar_stages: Vec<Vec<usize>>,
    /// Number of inputs of the original function.
    pub n_invars: usize,
    /// Number of outputs of the original function.
    pub n_outvars: usize,
}

impl StagedForward {
    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Original input indices used by more than one stage (shared
    /// weights).
    pub fn shared_invars(&self) -> Vec<usize> {
        self.invar_stages
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() > 1)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Splits `jaxpr` into pipeline stages at its `pipeline_yield` markers.
///
/// A graph with `k` yields produces `k + 1` stages. Yield equations stay
/// in their producing stage (they are identity markers and execute for
/// free).
///
/// # Errors
///
/// Returns [`IrError::Invalid`] when a stage would be empty (e.g. a
/// trailing yield with no computation after it), when an output of the
/// original function is a passthrough of one of its inputs, or when yield
/// ids are out of trace order.
pub fn partition_stages(jaxpr: &Jaxpr) -> Result<StagedForward> {
    let eqns = jaxpr.eqns();
    // Yield equation indices, in trace (= definition) order.
    let yields: Vec<usize> = eqns
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            matches!(
                e.prim,
                Prim::PipelineYield {
                    backward: false,
                    ..
                }
            )
        })
        .map(|(i, _)| i)
        .collect();
    for (k, &ei) in yields.iter().enumerate() {
        if let Prim::PipelineYield { id, .. } = eqns[ei].prim {
            if id.0 as usize != k {
                return Err(IrError::Invalid(format!(
                    "yield ids out of trace order: expected {k}, found {}",
                    id.0
                )));
            }
        }
    }
    let n_stages = yields.len() + 1;

    // Map var -> defining eqn index.
    let mut def_eqn: HashMap<VarId, usize> = HashMap::new();
    for (i, e) in eqns.iter().enumerate() {
        def_eqn.insert(e.output, i);
    }

    // Pass 1: claim each yield's transitive dependencies.
    const UNASSIGNED: usize = usize::MAX;
    let mut stage_of = vec![UNASSIGNED; eqns.len()];
    for (k, &yi) in yields.iter().enumerate() {
        let mut stack = vec![yi];
        while let Some(i) = stack.pop() {
            if stage_of[i] != UNASSIGNED {
                continue;
            }
            stage_of[i] = k;
            for &v in &eqns[i].inputs {
                if let Some(&d) = def_eqn.get(&v) {
                    if stage_of[d] == UNASSIGNED {
                        stack.push(d);
                    }
                }
            }
        }
    }
    // Pass 2: the rest go with their operands ("closer to their use",
    // §3.2), defaulting to the last stage for operand-free computations.
    //
    // For placement purposes a value produced by `pipeline_yield` k
    // belongs to stage k + 1: the marker's whole point is that anything
    // depending on it runs in the *next* stage.
    //
    // Inputs (parameters/data) take a tentative placement from the
    // yield-claimed equations that read them, so that e.g. an auxiliary
    // computation on the stage-0 data input stays on stage 0 and ships
    // its (small) result instead of its (large) operand.
    let mut invar_tentative: HashMap<VarId, usize> = HashMap::new();
    for (i, e) in eqns.iter().enumerate() {
        if stage_of[i] == UNASSIGNED {
            continue;
        }
        for &v in &e.inputs {
            if !def_eqn.contains_key(&v) {
                let entry = invar_tentative.entry(v).or_insert(stage_of[i]);
                *entry = (*entry).min(stage_of[i]);
            }
        }
    }
    let value_stage = |v: VarId, stage_of: &[usize]| -> Option<usize> {
        match def_eqn.get(&v) {
            Some(&d) => {
                let s = stage_of[d];
                if s == UNASSIGNED {
                    return Some(s);
                }
                // A forward yield's output belongs to the next stage.
                if matches!(
                    eqns[d].prim,
                    Prim::PipelineYield {
                        backward: false,
                        ..
                    }
                ) {
                    Some(s + 1)
                } else {
                    Some(s)
                }
            }
            None => invar_tentative.get(&v).copied(),
        }
    };
    for i in 0..eqns.len() {
        if stage_of[i] != UNASSIGNED {
            continue;
        }
        let s = eqns[i]
            .inputs
            .iter()
            .filter_map(|&v| value_stage(v, &stage_of))
            .max()
            .unwrap_or(n_stages - 1)
            .min(n_stages - 1);
        debug_assert_ne!(s, UNASSIGNED, "operand processed before its consumer");
        stage_of[i] = s;
    }

    // Sanity: dataflow must run from lower to higher stages.
    for (i, e) in eqns.iter().enumerate() {
        for &v in &e.inputs {
            if let Some(&d) = def_eqn.get(&v) {
                if stage_of[d] > stage_of[i] {
                    return Err(IrError::Invalid(format!(
                        "stage assignment produced a backward edge ({} -> {})",
                        stage_of[d], stage_of[i]
                    )));
                }
            }
        }
    }
    for s in 0..n_stages {
        if !stage_of.contains(&s) {
            return Err(IrError::Invalid(format!(
                "stage {s} is empty; every yield must be followed by computation"
            )));
        }
    }

    // Original outputs must be computed values (their producing stage
    // owns them).
    let invar_set: std::collections::HashSet<VarId> = jaxpr.invars().iter().copied().collect();
    for &o in jaxpr.outvars() {
        if invar_set.contains(&o) {
            return Err(IrError::Invalid(
                "function outputs that are passthroughs of inputs are not supported".into(),
            ));
        }
    }

    // Which values cross stage boundaries, and which fill global outputs.
    // outputs_of[s] = ordered list of original VarIds exported by stage s.
    let mut out_meta: HashMap<VarId, StageOutput> = HashMap::new();
    for (i, e) in eqns.iter().enumerate() {
        for &v in &e.inputs {
            if let Some(&d) = def_eqn.get(&v) {
                if stage_of[d] < stage_of[i] {
                    let m = out_meta.entry(v).or_default();
                    if !m.consumers.contains(&stage_of[i]) {
                        m.consumers.push(stage_of[i]);
                    }
                }
            }
        }
    }
    for (pos, &o) in jaxpr.outvars().iter().enumerate() {
        out_meta.entry(o).or_default().global_outputs.push(pos);
    }
    let mut outputs_of: Vec<Vec<VarId>> = vec![Vec::new(); n_stages];
    {
        let mut exported: Vec<(&VarId, &StageOutput)> = out_meta.iter().collect();
        exported.sort_by_key(|(v, _)| **v);
        for (v, _) in exported {
            let s = stage_of[def_eqn[v]];
            outputs_of[s].push(*v);
        }
    }
    for outs in &mut outputs_of {
        outs.sort();
    }
    let output_index: HashMap<VarId, usize> = outputs_of
        .iter()
        .flat_map(|outs| outs.iter().enumerate().map(|(i, &v)| (v, i)))
        .collect();

    // Which original invars each stage reads.
    let mut invar_stages: Vec<Vec<usize>> = vec![Vec::new(); jaxpr.invars().len()];
    let invar_pos: HashMap<VarId, usize> = jaxpr
        .invars()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    for (i, e) in eqns.iter().enumerate() {
        for &v in &e.inputs {
            if let Some(&p) = invar_pos.get(&v) {
                if !invar_stages[p].contains(&stage_of[i]) {
                    invar_stages[p].push(stage_of[i]);
                }
            }
        }
    }
    for s in &mut invar_stages {
        s.sort_unstable();
    }

    // Build each stage's jaxpr.
    let mut stages = Vec::with_capacity(n_stages);
    for s in 0..n_stages {
        let mut b = GraphBuilder::new();
        let mut local: HashMap<VarId, VarId> = HashMap::new();
        let mut inputs: Vec<StageInput> = Vec::new();
        // Global inputs, in original order.
        for (p, &v) in jaxpr.invars().iter().enumerate() {
            if invar_stages[p].contains(&s) {
                local.insert(v, b.input(jaxpr.shape(v).clone()));
                inputs.push(StageInput::Global(p));
            }
        }
        // Cross-stage inputs, ordered by (producing stage, output index).
        let mut cross: Vec<(usize, usize, VarId)> = Vec::new();
        for (i, e) in eqns.iter().enumerate() {
            if stage_of[i] != s {
                continue;
            }
            for &v in &e.inputs {
                if let Some(&d) = def_eqn.get(&v) {
                    if stage_of[d] < s && !cross.iter().any(|&(_, _, cv)| cv == v) {
                        cross.push((stage_of[d], output_index[&v], v));
                    }
                }
            }
        }
        cross.sort_unstable();
        for &(ps, idx, v) in &cross {
            local.insert(v, b.input(jaxpr.shape(v).clone()));
            inputs.push(StageInput::CrossStage {
                stage: ps,
                index: idx,
            });
        }
        // Stage equations, in original order.
        for (i, e) in eqns.iter().enumerate() {
            if stage_of[i] != s {
                continue;
            }
            let ins: Vec<VarId> = e.inputs.iter().map(|v| local[v]).collect();
            let out = b.emit(e.prim.clone(), &ins)?;
            local.insert(e.output, out);
        }
        let outs: Vec<VarId> = outputs_of[s].iter().map(|v| local[v]).collect();
        let jx = b.finish(outs)?;
        let metas: Vec<StageOutput> = outputs_of[s].iter().map(|v| out_meta[v].clone()).collect();
        stages.push(StageFwd {
            jaxpr: jx,
            inputs,
            outputs: metas,
        });
    }

    Ok(StagedForward {
        stages,
        invar_stages,
        n_invars: jaxpr.invars().len(),
        n_outvars: jaxpr.outvars().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_ir::{eval, Tensor, TraceCtx};

    /// Two-stage MLP: x@w1 |> relu |> yield |> @w2 |> square-sum loss.
    fn two_stage() -> Jaxpr {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 4]);
        let w1 = ctx.input([4, 8]);
        let w2 = ctx.input([8, 2]);
        let h = x.matmul(&w1).unwrap().relu();
        let h = ctx.pipeline_yield(&h);
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        ctx.finish(&[loss]).unwrap()
    }

    #[test]
    fn splits_into_two_stages() {
        let staged = partition_stages(&two_stage()).unwrap();
        assert_eq!(staged.n_stages(), 2);
        // Stage 0 reads x and w1; stage 1 reads w2.
        assert_eq!(staged.invar_stages, vec![vec![0], vec![0], vec![1]]);
        assert_eq!(staged.stages[0].inputs.len(), 2);
        assert_eq!(
            staged.stages[1].inputs,
            vec![
                StageInput::Global(2),
                StageInput::CrossStage { stage: 0, index: 0 }
            ]
        );
        // Stage 0 exports one activation; stage 1 exports the loss.
        assert_eq!(staged.stages[0].outputs.len(), 1);
        assert_eq!(staged.stages[0].outputs[0].consumers, vec![1]);
        assert_eq!(staged.stages[1].outputs[0].global_outputs, vec![0]);
        assert!(staged.shared_invars().is_empty());
    }

    #[test]
    fn stage_composition_matches_original() {
        let jaxpr = two_stage();
        let staged = partition_stages(&jaxpr).unwrap();
        use raxpp_ir::rng::SeedableRng;
        let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(11);
        let x = Tensor::randn([2, 4], 1.0, &mut rng);
        let w1 = Tensor::randn([4, 8], 0.5, &mut rng);
        let w2 = Tensor::randn([8, 2], 0.5, &mut rng);
        let whole = eval(&jaxpr, &[x.clone(), w1.clone(), w2.clone()]).unwrap();
        let s0 = eval(&staged.stages[0].jaxpr, &[x, w1]).unwrap();
        let s1 = eval(&staged.stages[1].jaxpr, &[w2, s0[0].clone()]).unwrap();
        assert!(whole[0].allclose(&s1[0], 1e-6));
    }

    #[test]
    fn single_stage_without_yields() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let loss = x.mul(&x).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let staged = partition_stages(&jaxpr).unwrap();
        assert_eq!(staged.n_stages(), 1);
        assert!(staged.stages[0].inputs == vec![StageInput::Global(0)]);
    }

    #[test]
    fn dependence_based_placement() {
        // `a` is defined before the yield but only used after it, so the
        // paper's heuristic schedules it with its operands (stage 0 here,
        // because its operand x lives there) and ships the value —
        // definition order alone does not dictate stages.
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        let a = x.scale(2.0); // not consumed by the yield's value
        let h = x.matmul(&w).unwrap();
        let h = ctx.pipeline_yield(&h);
        let y = h.add(&a).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let staged = partition_stages(&jaxpr).unwrap();
        assert_eq!(staged.n_stages(), 2);
        // Stage 0 exports both the yielded activation and `a`.
        assert_eq!(staged.stages[0].outputs.len(), 2);
    }

    #[test]
    fn shared_weight_detected() {
        // w used in both stages (tied-embedding pattern, §3.4).
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        let h = x.matmul(&w).unwrap();
        let h = ctx.pipeline_yield(&h);
        let y = h.matmul(&w).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let staged = partition_stages(&jaxpr).unwrap();
        assert_eq!(staged.shared_invars(), vec![1]);
        assert_eq!(staged.invar_stages[1], vec![0, 1]);
    }

    #[test]
    fn skip_connection_crosses_nonadjacent_stages() {
        // Stage 0's activation consumed by stage 2 directly.
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w1 = ctx.input([2, 2]);
        let w2 = ctx.input([2, 2]);
        let h0 = x.matmul(&w1).unwrap();
        let h0y = ctx.pipeline_yield(&h0);
        let h1 = h0y.matmul(&w2).unwrap();
        let h1y = ctx.pipeline_yield(&h1);
        let y = h1y.add(&h0y).unwrap(); // skip connection
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let staged = partition_stages(&jaxpr).unwrap();
        assert_eq!(staged.n_stages(), 3);
        // The yielded h0 value is consumed by stages 1 and 2.
        let s0_out = &staged.stages[0].outputs;
        assert!(s0_out.iter().any(|o| o.consumers == vec![1, 2]));
        assert!(staged.stages[2]
            .inputs
            .iter()
            .any(|i| matches!(i, StageInput::CrossStage { stage: 0, .. })));
    }

    #[test]
    fn trailing_yield_rejected() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let h = x.scale(2.0);
        let h = ctx.pipeline_yield(&h);
        let jaxpr = ctx.finish(&[h]).unwrap();
        assert!(partition_stages(&jaxpr).is_err());
    }

    #[test]
    fn passthrough_output_rejected() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let jaxpr = ctx.finish(&[x]).unwrap();
        assert!(partition_stages(&jaxpr).is_err());
    }
}
