//! Static statistics of compiled MPMD programs: task counts,
//! communication volumes per actor pair, and dispatch counts — the
//! quantities the paper's design decisions (loop commuting §3.4, task
//! fusion §4.4) are about.

use std::collections::HashMap;

use crate::program::{Instr, MpmdProgram, TaskLabel};

/// Aggregate statistics of one [`MpmdProgram`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramStats {
    /// `Run` instruction counts by kind (`"fwd"`, `"bwd"`, …).
    pub runs_by_kind: HashMap<&'static str, usize>,
    /// Messages per directed actor pair.
    pub messages: HashMap<(usize, usize), usize>,
    /// Bytes on the wire per directed actor pair (4 bytes/element — the
    /// executable runtime's f32; scale by dtype for other precisions).
    pub bytes: HashMap<(usize, usize), u64>,
    /// Total `Free` instructions (buffer deletions, §4.3).
    pub frees: usize,
    /// Total `Copy` instructions (local moves from stage folding).
    pub copies: usize,
    /// Total `Collective` instructions (tensor-parallel all-gather /
    /// all-reduce / reduce-scatter participations, counted per member).
    pub collectives: usize,
    /// Driver dispatches per step (1 per non-empty actor, §4.4).
    pub rpcs: usize,
}

impl ProgramStats {
    /// Total cross-actor messages.
    pub fn total_messages(&self) -> usize {
        self.messages.values().sum()
    }

    /// Total cross-actor bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Total `Run` instructions.
    pub fn total_runs(&self) -> usize {
        self.runs_by_kind.values().sum()
    }
}

fn kind_of(label: &TaskLabel) -> &'static str {
    match label {
        TaskLabel::Fwd { .. } => "fwd",
        TaskLabel::Bwd { .. } => "bwd",
        TaskLabel::BwdW { .. } => "bwdw",
        TaskLabel::AccumGrad { .. } => "accum_grad",
        TaskLabel::CotangentSum { .. } => "ct_sum",
        TaskLabel::GradReduce { .. } => "grad_reduce",
        TaskLabel::Update { .. } => "update",
    }
}

/// Computes [`ProgramStats`] for `program`. Communication volume is
/// measured at the receiving side (every send has exactly one matching
/// receive carrying the shape).
pub fn program_stats(program: &MpmdProgram) -> ProgramStats {
    let mut stats = ProgramStats::default();
    for (a, stream) in program.actors.iter().enumerate() {
        if !stream.is_empty() {
            stats.rpcs += 1;
        }
        for instr in stream {
            match instr {
                Instr::Run { label, .. } => {
                    *stats.runs_by_kind.entry(kind_of(label)).or_insert(0) += 1;
                }
                Instr::Recv { from, shape, .. } => {
                    *stats.messages.entry((*from, a)).or_insert(0) += 1;
                    *stats.bytes.entry((*from, a)).or_insert(0) += 4 * shape.numel() as u64;
                }
                Instr::Copy { .. } => stats.copies += 1,
                Instr::Free { .. } => stats.frees += 1,
                Instr::Collective { .. } => stats.collectives += 1,
                Instr::Send { .. } => {}
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::unroll::{insert_frees, unroll_loop, UnrollOptions};
    use raxpp_ir::TraceCtx;
    use raxpp_sched::one_f1b;

    fn tied_program(commuting: bool, n_mb: usize) -> MpmdProgram {
        let ctx = TraceCtx::new();
        let w = ctx.input([8, 8]);
        let x = ctx.input([2, 8]);
        let h = ctx.pipeline_yield(&x.matmul(&w).unwrap().tanh());
        let y = h.matmul(&w).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 1).unwrap();
        let mut compiled = unroll_loop(
            &model,
            &one_f1b(2, n_mb).unwrap(),
            UnrollOptions {
                loop_commuting: commuting,
            },
        )
        .unwrap();
        insert_frees(&mut compiled.program);
        compiled.program
    }

    #[test]
    fn counts_tasks_and_messages() {
        let p = tied_program(true, 4);
        let s = program_stats(&p);
        assert_eq!(s.runs_by_kind["fwd"], 2 * 4);
        assert_eq!(s.runs_by_kind["bwd"], 2 * 4);
        assert_eq!(s.rpcs, 2);
        assert!(s.frees > 0);
        assert!(s.total_messages() > 0);
        assert!(s.total_bytes() > 0);
    }

    #[test]
    fn loop_commuting_reduces_gradient_bytes() {
        // §3.4's motivation quantified: the naive scheme ships a partial
        // gradient per microbatch; commuting ships one accumulated
        // gradient per shared weight.
        let n_mb = 16;
        let commuted = program_stats(&tied_program(true, n_mb));
        let naive = program_stats(&tied_program(false, n_mb));
        // Same activation traffic; the difference is gradient messages.
        let diff_msgs = naive.total_messages() - commuted.total_messages();
        assert_eq!(diff_msgs, n_mb - 1);
        let diff_bytes = naive.total_bytes() - commuted.total_bytes();
        assert_eq!(diff_bytes, (n_mb as u64 - 1) * 4 * 64); // 8x8 f32 grads
    }

    #[test]
    fn byte_accounting_matches_shapes() {
        let p = tied_program(true, 2);
        let s = program_stats(&p);
        // Activations [2,8] forward + cotangents [2,8] backward, 2 mbs
        // each way, plus 1 shared-weight gradient [8,8].
        let act = 2 * 4 * (2 * 8) as u64;
        let expect_0_to_1 = act; // activations
        let expect_1_to_0 = act + 4 * 64; // cotangents + grad reduce
        assert_eq!(s.bytes[&(0, 1)], expect_0_to_1);
        assert_eq!(s.bytes[&(1, 0)], expect_1_to_0);
    }
}
