//! Program re-placement for elastic degraded-mode pipelines.
//!
//! [`replace_program`] takes a compiled [`MpmdProgram`] and a surjective
//! idempotent actor assignment and rebuilds the instruction streams so
//! every stage that lived on a folded-away actor now runs on its host
//! survivor. The transformation never touches a [`Instr::Run`]: compute
//! instructions are moved byte-for-byte, so the degraded program performs
//! exactly the same floating-point operations in exactly the same order
//! per buffer — bitwise identity with the original topology is
//! structural, not approximate.
//!
//! Only the transport changes:
//!
//! * sends/receives between two stages that land on the same actor
//!   disappear (the store is now shared) — a receive into a different
//!   buffer id becomes a local [`Instr::Copy`];
//! * cross-actor sends/receives are rewired to the hosts;
//! * all `Free`s are stripped and re-inserted by the liveness pass
//!   (merged streams share buffer ids that the old per-actor `Free`s
//!   would double-delete).
//!
//! The merged stream order is derived by simulating the original program
//! to completion (the §4.2 FIFO discipline keyed by *old* actor pairs)
//! and appending each old actor's instructions to its host's stream in a
//! globally feasible order, so the result is deadlock-free by
//! construction and re-checked with [`check_send_recv_order`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use crate::program::{ActorId, BufferId, Instr, MpmdProgram};
use crate::unroll::{check_send_recv_order, insert_frees};

/// Why a program could not be re-placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplaceError {
    /// The actor assignment is malformed (wrong length, out of range, or
    /// not idempotent).
    BadAssign(String),
    /// The global replay stalled: some old actor's stream cannot make
    /// progress. `(old_actor, instruction_index)` pairs of the stuck
    /// cursors.
    Stuck(Vec<(usize, usize)>),
    /// Two old channels merged onto one new actor pair in incompatible
    /// orders; the §4.2 matching-order property cannot be restored.
    OrderConflict {
        /// Sending (new) actor.
        from: ActorId,
        /// Receiving (new) actor.
        to: ActorId,
    },
    /// A compute instruction would overwrite a buffer whose pre-overwrite
    /// value is still owed to a co-located receive.
    LocalOverwrite {
        /// The new actor on which the hazard occurs.
        actor: ActorId,
        /// The buffer.
        buf: BufferId,
    },
    /// The assignment would break a collective group. Collectives
    /// re-place cleanly only under *group-uniform* folds: every member
    /// of a group must map to a distinct actor and keep its rank
    /// position (host-level folds applied identically across all
    /// tensor-parallel ranks and data-parallel replicas have this
    /// property; folding two ranks of one group onto one actor does
    /// not).
    Unsupported(String),
}

impl fmt::Display for ReplaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplaceError::BadAssign(msg) => write!(f, "bad actor assignment: {msg}"),
            ReplaceError::Stuck(stuck) => {
                write!(f, "re-placement replay stalled at {stuck:?}")
            }
            ReplaceError::OrderConflict { from, to } => write!(
                f,
                "merged channels {from} -> {to} have incompatible FIFO orders"
            ),
            ReplaceError::LocalOverwrite { actor, buf } => write!(
                f,
                "actor {actor}: {buf} overwritten while a co-located receive still owes its value"
            ),
            ReplaceError::Unsupported(msg) => write!(f, "cannot re-place program: {msg}"),
        }
    }
}

impl std::error::Error for ReplaceError {}

/// Re-places `program` onto the actors named by `assign`.
///
/// `assign[a]` is the actor that takes over old actor `a`'s stream;
/// survivors map to themselves (`assign` must be idempotent and the same
/// length as the program's actor count). The returned program has the
/// same actor count — folded-away actors keep an empty stream, so buffer
/// ids, placements, and fetch roles stay stable for the driver.
///
/// # Errors
///
/// Returns a [`ReplaceError`] if the assignment is malformed or the
/// merged streams cannot preserve the §4.2 FIFO discipline.
pub fn replace_program(
    program: &MpmdProgram,
    assign: &[ActorId],
) -> Result<MpmdProgram, ReplaceError> {
    let n = program.n_actors();
    if assign.len() != n {
        return Err(ReplaceError::BadAssign(format!(
            "assign has {} entries for {} actors",
            assign.len(),
            n
        )));
    }
    for (a, &h) in assign.iter().enumerate() {
        if h >= n {
            return Err(ReplaceError::BadAssign(format!(
                "assign[{a}] = {h} out of range"
            )));
        }
        if assign[h] != h {
            return Err(ReplaceError::BadAssign(format!(
                "assign[{a}] = {h}, but {h} itself maps to {} (not idempotent)",
                assign[h]
            )));
        }
    }
    if let Some(dp) = &program.dp {
        // Data-parallel programs rendezvous DP collectives by
        // instruction index, which stays aligned across replicas only
        // when the fold acts identically in every replica: each raw
        // actor must stay inside its replica block, and the base-actor
        // fold pattern must be the same in all blocks. Anything else
        // would leave isomorphic-looking groups whose members sit at
        // different stream offsets — a runtime deadlock, so reject it
        // here.
        let (base, reps) = (dp.base_actors, dp.replicas);
        for (a, &h) in assign.iter().enumerate() {
            if h / base != a / base {
                return Err(ReplaceError::Unsupported(format!(
                    "assignment moves actor {a} across data-parallel replicas (to {h}); \
                     folds must stay within a replica"
                )));
            }
            if assign[a % base] % base != h % base {
                return Err(ReplaceError::Unsupported(format!(
                    "assignment folds actor {a} differently from its replica-0 \
                     counterpart {}; folds must be replica-uniform (same base-actor \
                     pattern in all {reps} replicas)",
                    a % base
                )));
            }
        }
    }

    // Pass 1: free replay. If merged channels come out order-consistent
    // (they always do for chain pipelines folded onto contiguous blocks),
    // we are done; otherwise replay again with pass 1's receiver order as
    // a send-gating oracle.
    let streams = simulate(program, assign, None)?;
    let streams = if order_ok(&streams) {
        streams
    } else {
        let oracle = receiver_order(&streams);
        let retry = simulate(program, assign, Some(&oracle))?;
        if !order_ok(&retry) {
            let bad = find_order_conflict(&retry);
            return Err(ReplaceError::OrderConflict {
                from: bad.0,
                to: bad.1,
            });
        }
        retry
    };

    let mut out = MpmdProgram {
        jaxprs: program.jaxprs.clone(),
        actors: streams,
        placements: Vec::new(),
        fetches: Vec::new(),
        tp: program.tp.clone(),
        dp: program.dp,
    };
    // Remap placements; folding can land the same data buffer (shared id
    // across consumer actors) on one store twice — keep one copy.
    let mut seen: HashSet<(BufferId, ActorId)> = HashSet::new();
    for p in &program.placements {
        let mut p = p.clone();
        p.actor = assign[p.actor];
        if seen.insert((p.buf, p.actor)) {
            out.placements.push(p);
        }
    }
    for f in &program.fetches {
        let mut f = *f;
        f.actor = assign[f.actor];
        out.fetches.push(f);
    }
    insert_frees(&mut out);
    debug_assert!(check_send_recv_order(&out).is_ok());
    Ok(out)
}

/// Receiver-side FIFO order per new directed pair, extracted from a set
/// of merged streams.
fn receiver_order(streams: &[Vec<Instr>]) -> HashMap<(usize, usize), VecDeque<BufferId>> {
    let mut order: HashMap<(usize, usize), VecDeque<BufferId>> = HashMap::new();
    for (b, stream) in streams.iter().enumerate() {
        for instr in stream {
            if let Instr::Recv { src, from, .. } = instr {
                order.entry((*from, b)).or_default().push_back(*src);
            }
        }
    }
    order
}

fn sender_order(streams: &[Vec<Instr>]) -> HashMap<(usize, usize), VecDeque<BufferId>> {
    let mut order: HashMap<(usize, usize), VecDeque<BufferId>> = HashMap::new();
    for (a, stream) in streams.iter().enumerate() {
        for instr in stream {
            if let Instr::Send { buf, to } = instr {
                order.entry((a, *to)).or_default().push_back(*buf);
            }
        }
    }
    order
}

fn order_ok(streams: &[Vec<Instr>]) -> bool {
    sender_order(streams) == receiver_order(streams)
}

fn find_order_conflict(streams: &[Vec<Instr>]) -> (usize, usize) {
    let sends = sender_order(streams);
    let recvs = receiver_order(streams);
    let mut pairs: Vec<(usize, usize)> = sends.keys().chain(recvs.keys()).copied().collect();
    pairs.sort_unstable();
    for pair in pairs {
        if sends.get(&pair).unwrap_or(&VecDeque::new())
            != recvs.get(&pair).unwrap_or(&VecDeque::new())
        {
            return pair;
        }
    }
    unreachable!("find_order_conflict called on consistent streams")
}

/// Globally replays `program` under `assign`, appending each executed
/// instruction (transport rewritten) to its host's output stream.
///
/// Channels are keyed by the *old* actor pair, so the old per-pair FIFO
/// discipline drives matching even after merging. With `oracle` set,
/// cross-actor sends additionally wait until they are next in the target
/// pair's required receive order.
fn simulate(
    program: &MpmdProgram,
    assign: &[ActorId],
    oracle: Option<&HashMap<(usize, usize), VecDeque<BufferId>>>,
) -> Result<Vec<Vec<Instr>>, ReplaceError> {
    let n = program.n_actors();
    let mut out: Vec<Vec<Instr>> = vec![Vec::new(); n];
    // Buffers available per NEW actor (placements land pre-step).
    let mut avail: Vec<HashSet<BufferId>> = vec![HashSet::new(); n];
    for p in &program.placements {
        avail[assign[p.actor]].insert(p.buf);
    }
    // In-flight values keyed by OLD directed pair.
    let mut chan: HashMap<(usize, usize), VecDeque<BufferId>> = HashMap::new();
    // Values a dropped (co-located) send still owes to its receive, per
    // new actor: overwriting such a buffer before the receive runs would
    // deliver the wrong value.
    let mut owed: Vec<HashMap<BufferId, usize>> = vec![HashMap::new(); n];
    let mut gate = oracle.cloned();

    let streams: Vec<Vec<&Instr>> = program
        .actors
        .iter()
        .map(|s| {
            s.iter()
                .filter(|i| !matches!(i, Instr::Free { .. }))
                .collect()
        })
        .collect();
    let mut cursor = vec![0usize; n];

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for a in 0..n {
            let h = assign[a];
            while cursor[a] < streams[a].len() {
                let instr = streams[a][cursor[a]];
                let stepped = match instr {
                    Instr::Run {
                        inputs, outputs, ..
                    } => {
                        if !inputs.iter().all(|b| avail[h].contains(b)) {
                            false
                        } else {
                            for b in outputs {
                                if owed[h].get(b).copied().unwrap_or(0) > 0 {
                                    return Err(ReplaceError::LocalOverwrite { actor: h, buf: *b });
                                }
                                avail[h].insert(*b);
                            }
                            out[h].push(instr.clone());
                            true
                        }
                    }
                    Instr::Send { buf, to } => {
                        let h2 = assign[*to];
                        if !avail[h].contains(buf) {
                            false
                        } else if h2 == h {
                            // Local move: the value is owed to the
                            // matching receive, nothing on the wire.
                            chan.entry((a, *to)).or_default().push_back(*buf);
                            *owed[h].entry(*buf).or_insert(0) += 1;
                            true
                        } else if gate
                            .as_ref()
                            .is_some_and(|g| g.get(&(h, h2)).and_then(|q| q.front()) != Some(buf))
                        {
                            false // not this send's turn on the merged wire
                        } else {
                            if let Some(g) = gate.as_mut() {
                                g.get_mut(&(h, h2)).map(VecDeque::pop_front);
                            }
                            chan.entry((a, *to)).or_default().push_back(*buf);
                            out[h].push(Instr::Send { buf: *buf, to: h2 });
                            true
                        }
                    }
                    Instr::Recv {
                        buf,
                        src,
                        from,
                        shape,
                    } => {
                        let queue = chan.entry((*from, a)).or_default();
                        if queue.front() != Some(src) {
                            false // wait for the matching old-pair send
                        } else {
                            queue.pop_front();
                            let f2 = assign[*from];
                            if f2 == h {
                                *owed[h].get_mut(src).expect("owed entry for local recv") -= 1;
                                if buf != src {
                                    out[h].push(Instr::Copy {
                                        dst: *buf,
                                        src: *src,
                                    });
                                }
                            } else {
                                out[h].push(Instr::Recv {
                                    buf: *buf,
                                    src: *src,
                                    from: f2,
                                    shape: shape.clone(),
                                });
                            }
                            avail[h].insert(*buf);
                            true
                        }
                    }
                    Instr::Copy { dst, src } => {
                        if !avail[h].contains(src) {
                            false
                        } else {
                            if owed[h].get(dst).copied().unwrap_or(0) > 0 {
                                return Err(ReplaceError::LocalOverwrite {
                                    actor: h,
                                    buf: *dst,
                                });
                            }
                            avail[h].insert(*dst);
                            out[h].push(instr.clone());
                            true
                        }
                    }
                    Instr::Collective {
                        kind,
                        dst,
                        src,
                        group,
                        wires,
                        dim,
                        axis,
                    } => {
                        if !avail[h].contains(src) {
                            false
                        } else {
                            // In replay terms a collective is a local
                            // compute (contribute src, define dst): the
                            // runtime's rendezvous synchronizes members,
                            // and group-uniform folds keep the member
                            // streams isomorphic, so no cross-member
                            // ordering needs modeling here.
                            let new_group: Vec<ActorId> =
                                group.iter().map(|&m| assign[m]).collect();
                            let distinct = new_group.windows(2).all(|w| w[0] < w[1]);
                            let old_rank = group.iter().position(|&m| m == a);
                            let new_rank = new_group.iter().position(|&m| m == h);
                            if !distinct || old_rank != new_rank {
                                return Err(ReplaceError::Unsupported(format!(
                                    "assignment folds collective group {group:?} \
                                     non-uniformly; members must stay distinct and \
                                     keep their rank positions"
                                )));
                            }
                            if owed[h].get(dst).copied().unwrap_or(0) > 0 {
                                return Err(ReplaceError::LocalOverwrite {
                                    actor: h,
                                    buf: *dst,
                                });
                            }
                            avail[h].insert(*dst);
                            out[h].push(Instr::Collective {
                                kind: *kind,
                                dst: *dst,
                                src: *src,
                                group: new_group,
                                wires: wires.clone(),
                                dim: *dim,
                                axis: *axis,
                            });
                            true
                        }
                    }
                    Instr::Free { .. } => unreachable!("frees are stripped before replay"),
                };
                if !stepped {
                    break;
                }
                cursor[a] += 1;
                progressed = true;
            }
            if cursor[a] < streams[a].len() {
                all_done = false;
            }
        }
        if all_done {
            return Ok(out);
        }
        if !progressed {
            let stuck = (0..n)
                .filter(|&a| cursor[a] < streams[a].len())
                .map(|a| (a, cursor[a]))
                .collect();
            return Err(ReplaceError::Stuck(stuck));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::program::TaskLabel;
    use crate::unroll::{unroll_loop, UnrollOptions};
    use crate::verify::verify_program;
    use raxpp_ir::TraceCtx;
    use raxpp_sched::{gpipe, one_f1b};

    fn chain_program(n_stages: usize, n_mb: usize, schedule_1f1b: bool) -> MpmdProgram {
        let ctx = TraceCtx::new();
        let ws: Vec<_> = (0..n_stages).map(|_| ctx.input([4, 4])).collect();
        let x = ctx.input([2, 4]);
        let mut h = x;
        for (i, w) in ws.iter().enumerate() {
            h = h.matmul(w).unwrap().tanh();
            if i + 1 < n_stages {
                h = ctx.pipeline_yield(&h);
            }
        }
        let loss = h.mul(&h).unwrap().sum().scale(0.5);
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, n_stages).unwrap();
        let schedule = if schedule_1f1b {
            one_f1b(n_stages, n_mb).unwrap()
        } else {
            gpipe(n_stages, n_mb).unwrap()
        };
        let mut compiled = unroll_loop(&model, &schedule, UnrollOptions::default()).unwrap();
        insert_frees(&mut compiled.program);
        compiled.program
    }

    #[test]
    fn identity_assign_preserves_semantics() {
        let p = chain_program(4, 4, false);
        let assign: Vec<usize> = (0..4).collect();
        let r = replace_program(&p, &assign).unwrap();
        verify_program(&r).unwrap();
        // Same compute, same comms (transport untouched).
        assert_eq!(p.count_runs(|_| true), r.count_runs(|_| true));
        for (a, b) in p.actors.iter().zip(&r.actors) {
            let runs = |s: &[Instr]| {
                s.iter()
                    .filter(|i| matches!(i, Instr::Run { .. }))
                    .cloned()
                    .collect::<Vec<_>>()
            };
            assert_eq!(runs(a), runs(b));
        }
    }

    #[test]
    fn folding_one_actor_keeps_runs_and_verifies() {
        for schedule_1f1b in [false, true] {
            let p = chain_program(4, 4, schedule_1f1b);
            // Actor 1 dies; actor 0 hosts stages 0 and 1.
            let assign = vec![0, 0, 2, 3];
            let r = replace_program(&p, &assign).unwrap();
            verify_program(&r).unwrap();
            assert!(r.actors[1].is_empty(), "folded-away actor keeps no work");
            assert_eq!(p.count_runs(|_| true), r.count_runs(|_| true));
            // Run instructions are byte-identical — only moved.
            let runs = |prog: &MpmdProgram| {
                let mut v: Vec<Instr> = prog
                    .actors
                    .iter()
                    .flatten()
                    .filter(|i| matches!(i, Instr::Run { .. }))
                    .cloned()
                    .collect();
                v.sort_by_key(|i| format!("{i}"));
                v
            };
            assert_eq!(runs(&p), runs(&r));
            // No sends between co-located stages survive.
            for (a, stream) in r.actors.iter().enumerate() {
                for i in stream {
                    if let Instr::Send { to, .. } = i {
                        assert_ne!(*to, a, "self-send must have been elided");
                    }
                }
            }
            check_send_recv_order(&r).unwrap();
        }
    }

    #[test]
    fn folding_to_single_actor_drops_all_comms() {
        let p = chain_program(4, 2, false);
        let assign = vec![0, 0, 0, 0];
        let r = replace_program(&p, &assign).unwrap();
        verify_program(&r).unwrap();
        assert_eq!(p.count_runs(|_| true), r.count_runs(|_| true));
        for stream in &r.actors {
            for i in stream {
                assert!(
                    !matches!(i, Instr::Send { .. } | Instr::Recv { .. }),
                    "single-actor program must be comm-free, found {i}"
                );
            }
        }
    }

    #[test]
    fn rejects_malformed_assignments() {
        let p = chain_program(2, 2, false);
        assert!(matches!(
            replace_program(&p, &[0]),
            Err(ReplaceError::BadAssign(_))
        ));
        assert!(matches!(
            replace_program(&p, &[0, 7]),
            Err(ReplaceError::BadAssign(_))
        ));
        // Not idempotent: 0 -> 1 but 1 -> 0.
        assert!(matches!(
            replace_program(&p, &[1, 0]),
            Err(ReplaceError::BadAssign(_))
        ));
    }

    #[test]
    fn recv_into_distinct_buffer_becomes_copy() {
        // Hand-built: actor 0 sends b0 to actor 1, which receives it into
        // b1. Folded together this must become `copy b0 -> b1`.
        use raxpp_ir::{GraphBuilder, Prim, Shape};
        let mut g = GraphBuilder::new();
        let x = g.input([2]);
        let y = g.emit(Prim::Neg, &[x]).unwrap();
        let jaxpr = g.finish(vec![y]).unwrap();
        let mut p = MpmdProgram::default();
        let jx = p.add_jaxpr(jaxpr);
        p.placements.push(crate::program::InputPlacement {
            buf: BufferId(0),
            actor: 0,
            shape: Shape::new([2]),
            source: crate::program::InputSource::Data {
                input: 0,
                mubatch: 0,
            },
        });
        p.actors.push(vec![Instr::Send {
            buf: BufferId(0),
            to: 1,
        }]);
        p.actors.push(vec![
            Instr::Recv {
                buf: BufferId(1),
                src: BufferId(0),
                from: 0,
                shape: Shape::new([2]),
            },
            Instr::Run {
                jaxpr: jx,
                inputs: vec![BufferId(1)],
                outputs: vec![BufferId(2)],
                label: TaskLabel::Fwd {
                    mubatch: 0,
                    stage: 1,
                },
            },
        ]);
        p.fetches.push(crate::program::Fetch {
            buf: BufferId(2),
            actor: 1,
            role: crate::program::FetchRole::Output {
                output: 0,
                mubatch: 0,
            },
        });
        let r = replace_program(&p, &[0, 0]).unwrap();
        verify_program(&r).unwrap();
        assert!(r.actors[0].iter().any(|i| matches!(
            i,
            Instr::Copy {
                dst: BufferId(1),
                src: BufferId(0)
            }
        )));
    }
}
