//! Static verification of compiled MPMD programs.
//!
//! Abstractly executes every actor's instruction stream (shapes only, no
//! tensor data) and checks the invariants the runtime relies on:
//!
//! * every buffer a `Run`/`Send` uses is live (defined by a placement,
//!   an earlier `Run` output, or a `Recv` — and not yet freed);
//! * `Run` operand/result counts and shapes match the jaxpr's signature;
//! * receives match sends in order and shape per actor pair (§4.2);
//! * frees hit live buffers exactly once;
//! * every fetch target is live at the end of the step;
//! * the streams make progress to completion (no deadlock).
//!
//! The compiler's output is verified in tests and in
//! `debug_assertions` builds of `raxpp-core`; the checker is also useful
//! for anyone generating [`MpmdProgram`]s by hand.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use raxpp_ir::Shape;

use crate::program::{BufferId, Instr, MpmdProgram};

/// A violated program invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A `Run` or `Send` referenced a buffer that is not live.
    UseOfDeadBuffer {
        /// Offending actor.
        actor: usize,
        /// Instruction index within the actor's stream.
        pos: usize,
        /// The buffer.
        buf: BufferId,
    },
    /// A `Run`'s operands do not match its jaxpr signature.
    SignatureMismatch {
        /// Offending actor.
        actor: usize,
        /// Instruction index.
        pos: usize,
        /// Explanation.
        detail: String,
    },
    /// A receive's source id or shape does not match the send stream.
    CommMismatch {
        /// Receiving actor.
        actor: usize,
        /// Instruction index.
        pos: usize,
        /// Explanation.
        detail: String,
    },
    /// A `Free` targeted a buffer that is not live.
    BadFree {
        /// Offending actor.
        actor: usize,
        /// Instruction index.
        pos: usize,
        /// The buffer.
        buf: BufferId,
    },
    /// A fetch names a buffer that is not live at the end of the step.
    MissingFetch {
        /// Actor the fetch targets.
        actor: usize,
        /// The buffer.
        buf: BufferId,
    },
    /// The streams cannot run to completion.
    Deadlock {
        /// Actors stuck mid-stream with their cursor positions.
        stuck: Vec<(usize, usize)>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UseOfDeadBuffer { actor, pos, buf } => {
                write!(f, "actor {actor} instr {pos}: use of dead buffer {buf}")
            }
            VerifyError::SignatureMismatch { actor, pos, detail } => {
                write!(f, "actor {actor} instr {pos}: {detail}")
            }
            VerifyError::CommMismatch { actor, pos, detail } => {
                write!(f, "actor {actor} instr {pos}: {detail}")
            }
            VerifyError::BadFree { actor, pos, buf } => {
                write!(f, "actor {actor} instr {pos}: free of dead buffer {buf}")
            }
            VerifyError::MissingFetch { actor, buf } => {
                write!(
                    f,
                    "fetch of {buf} on actor {actor}: buffer not live at step end"
                )
            }
            VerifyError::Deadlock { stuck } => {
                write!(f, "program cannot complete; stuck at {stuck:?}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `program` (see the module docs for the invariant list).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_program(program: &MpmdProgram) -> Result<(), VerifyError> {
    let n = program.n_actors();
    let mut live: Vec<HashMap<BufferId, Shape>> = vec![HashMap::new(); n];
    for p in &program.placements {
        live[p.actor].insert(p.buf, p.shape.clone());
    }
    // §4.2 for collectives: every pair of actors sharing any
    // tensor-parallel group must observe the same sequence of collective
    // instances (identified by kind/group/wires/dim — identical across
    // the instance's ranks), else their ring exchanges would cross-match.
    for a in 0..n {
        for b in a + 1..n {
            let seq = |me: usize, peer: usize| {
                program.actors[me]
                    .iter()
                    .filter_map(|i| match i {
                        Instr::Collective {
                            kind,
                            group,
                            wires,
                            dim,
                            ..
                        } if group.contains(&peer) => Some((kind, group, wires, dim)),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            };
            if seq(a, b) != seq(b, a) {
                return Err(VerifyError::CommMismatch {
                    actor: b,
                    pos: 0,
                    detail: format!(
                        "actors {a} and {b} disagree on their shared collective sequence"
                    ),
                });
            }
        }
    }

    // In-flight messages per directed pair.
    let mut wires: HashMap<(usize, usize), VecDeque<(BufferId, Shape)>> = HashMap::new();
    let mut cursor = vec![0usize; n];

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for a in 0..n {
            let stream = &program.actors[a];
            while cursor[a] < stream.len() {
                let pos = cursor[a];
                match &stream[pos] {
                    Instr::Run {
                        jaxpr,
                        inputs,
                        outputs,
                        ..
                    } => {
                        let jx = &program.jaxprs[jaxpr.0 as usize];
                        if inputs.len() != jx.invars().len() || outputs.len() != jx.outvars().len()
                        {
                            return Err(VerifyError::SignatureMismatch {
                                actor: a,
                                pos,
                                detail: format!(
                                    "arity mismatch: {}/{} operands, {}/{} results",
                                    inputs.len(),
                                    jx.invars().len(),
                                    outputs.len(),
                                    jx.outvars().len()
                                ),
                            });
                        }
                        for (b, &v) in inputs.iter().zip(jx.invars()) {
                            let Some(shape) = live[a].get(b) else {
                                return Err(VerifyError::UseOfDeadBuffer {
                                    actor: a,
                                    pos,
                                    buf: *b,
                                });
                            };
                            if shape != jx.shape(v) {
                                return Err(VerifyError::SignatureMismatch {
                                    actor: a,
                                    pos,
                                    detail: format!(
                                        "operand {b} has shape {shape}, jaxpr wants {}",
                                        jx.shape(v)
                                    ),
                                });
                            }
                        }
                        for (b, &v) in outputs.iter().zip(jx.outvars()) {
                            live[a].insert(*b, jx.shape(v).clone());
                        }
                    }
                    Instr::Send { buf, to } => {
                        let Some(shape) = live[a].get(buf) else {
                            return Err(VerifyError::UseOfDeadBuffer {
                                actor: a,
                                pos,
                                buf: *buf,
                            });
                        };
                        wires
                            .entry((a, *to))
                            .or_default()
                            .push_back((*buf, shape.clone()));
                    }
                    Instr::Recv {
                        buf,
                        src,
                        from,
                        shape,
                    } => {
                        let queue = wires.entry((*from, a)).or_default();
                        let Some((id, wire_shape)) = queue.front() else {
                            break; // wait for the sender
                        };
                        if id != src {
                            return Err(VerifyError::CommMismatch {
                                actor: a,
                                pos,
                                detail: format!(
                                    "expected {src} from actor {from}, wire has {id} \
                                     (§4.2 order violated)"
                                ),
                            });
                        }
                        if wire_shape != shape {
                            return Err(VerifyError::CommMismatch {
                                actor: a,
                                pos,
                                detail: format!(
                                    "shape mismatch on {src}: wire {wire_shape}, recv {shape}"
                                ),
                            });
                        }
                        queue.pop_front();
                        live[a].insert(*buf, shape.clone());
                    }
                    Instr::Copy { dst, src } => {
                        let Some(shape) = live[a].get(src).cloned() else {
                            return Err(VerifyError::UseOfDeadBuffer {
                                actor: a,
                                pos,
                                buf: *src,
                            });
                        };
                        live[a].insert(*dst, shape);
                    }
                    Instr::Free { buf } => {
                        if live[a].remove(buf).is_none() {
                            return Err(VerifyError::BadFree {
                                actor: a,
                                pos,
                                buf: *buf,
                            });
                        }
                    }
                    Instr::Collective {
                        kind,
                        dst,
                        src,
                        group,
                        wires: coll_wires,
                        dim,
                        ..
                    } => {
                        if group.is_empty() || coll_wires.len() != group.len() {
                            return Err(VerifyError::SignatureMismatch {
                                actor: a,
                                pos,
                                detail: format!(
                                    "collective group/wires size mismatch: {} vs {}",
                                    group.len(),
                                    coll_wires.len()
                                ),
                            });
                        }
                        if !group.windows(2).all(|w| w[0] < w[1]) {
                            return Err(VerifyError::SignatureMismatch {
                                actor: a,
                                pos,
                                detail: format!("collective group {group:?} not rank-ascending"),
                            });
                        }
                        let Some(rank) = group.iter().position(|&g| g == a) else {
                            return Err(VerifyError::SignatureMismatch {
                                actor: a,
                                pos,
                                detail: format!("actor {a} not in its collective group {group:?}"),
                            });
                        };
                        if coll_wires[rank] != *src {
                            return Err(VerifyError::SignatureMismatch {
                                actor: a,
                                pos,
                                detail: format!(
                                    "collective src {src} is not this rank's wire {}",
                                    coll_wires[rank]
                                ),
                            });
                        }
                        let Some(shape) = live[a].get(src) else {
                            return Err(VerifyError::UseOfDeadBuffer {
                                actor: a,
                                pos,
                                buf: *src,
                            });
                        };
                        let t = group.len();
                        use crate::program::CollectiveKind;
                        let out_shape = match kind {
                            CollectiveKind::AllReduce => shape.clone(),
                            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
                                if *dim >= shape.rank() {
                                    return Err(VerifyError::SignatureMismatch {
                                        actor: a,
                                        pos,
                                        detail: format!(
                                            "collective dim {dim} out of range for {shape}"
                                        ),
                                    });
                                }
                                let mut dims = shape.dims().to_vec();
                                if matches!(kind, CollectiveKind::AllGather) {
                                    dims[*dim] *= t;
                                } else {
                                    if dims[*dim] % t != 0 {
                                        return Err(VerifyError::SignatureMismatch {
                                            actor: a,
                                            pos,
                                            detail: format!(
                                                "reduce_scatter dim {dim} of {shape} not \
                                                 divisible by group size {t}"
                                            ),
                                        });
                                    }
                                    dims[*dim] /= t;
                                }
                                Shape::new(dims)
                            }
                        };
                        live[a].insert(*dst, out_shape);
                    }
                }
                cursor[a] += 1;
                progressed = true;
            }
            if cursor[a] < stream.len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            let stuck = (0..n)
                .filter(|&a| cursor[a] < program.actors[a].len())
                .map(|a| (a, cursor[a]))
                .collect();
            return Err(VerifyError::Deadlock { stuck });
        }
    }

    for f in &program.fetches {
        if !live[f.actor].contains_key(&f.buf) {
            return Err(VerifyError::MissingFetch {
                actor: f.actor,
                buf: f.buf,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::program::{Fetch, FetchRole, JaxprId, TaskLabel};
    use crate::unroll::{insert_frees, unroll_loop, UnrollOptions};
    use raxpp_ir::{GraphBuilder, Prim, TraceCtx};
    use raxpp_sched::{one_f1b, zero_bubble_h1};

    fn compiled_program(split: bool) -> MpmdProgram {
        let ctx = TraceCtx::new();
        let w1 = ctx.input([4, 4]);
        let w2 = ctx.input([4, 4]);
        let x = ctx.input([2, 4]);
        let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 2).unwrap();
        let schedule = if split {
            zero_bubble_h1(2, 4).unwrap()
        } else {
            one_f1b(2, 4).unwrap()
        };
        let mut compiled = unroll_loop(&model, &schedule, UnrollOptions::default()).unwrap();
        insert_frees(&mut compiled.program);
        compiled.program
    }

    #[test]
    fn compiled_programs_verify() {
        verify_program(&compiled_program(false)).unwrap();
        verify_program(&compiled_program(true)).unwrap();
    }

    #[test]
    fn detects_use_after_free() {
        let mut p = compiled_program(false);
        // Free a buffer right before its first use as a Run input.
        let (a, pos, buf) = p
            .actors
            .iter()
            .enumerate()
            .find_map(|(a, s)| {
                s.iter().enumerate().find_map(|(i, instr)| match instr {
                    Instr::Run { inputs, .. } if !inputs.is_empty() => Some((a, i, inputs[0])),
                    _ => None,
                })
            })
            .unwrap();
        p.actors[a].insert(pos, Instr::Free { buf });
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::UseOfDeadBuffer { .. }) | Err(VerifyError::BadFree { .. })
        ));
    }

    #[test]
    fn detects_double_free() {
        let mut p = compiled_program(false);
        let (a, pos) = p
            .actors
            .iter()
            .enumerate()
            .find_map(|(a, s)| {
                s.iter()
                    .position(|i| matches!(i, Instr::Free { .. }))
                    .map(|pos| (a, pos))
            })
            .expect("liveness pass emitted frees");
        let dup = p.actors[a][pos].clone();
        p.actors[a].insert(pos + 1, dup);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::BadFree { .. })
        ));
    }

    #[test]
    fn detects_reordered_receives() {
        let mut p = compiled_program(false);
        // Swap two receives from the same source on some actor.
        'outer: for stream in &mut p.actors {
            let recv_positions: Vec<usize> = stream
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, Instr::Recv { .. }))
                .map(|(i, _)| i)
                .collect();
            for w in recv_positions.windows(2) {
                let (x, y) = (w[0], w[1]);
                let from_match = match (&stream[x], &stream[y]) {
                    (Instr::Recv { from: f1, .. }, Instr::Recv { from: f2, .. }) => f1 == f2,
                    _ => false,
                };
                if from_match {
                    stream.swap(x, y);
                    break 'outer;
                }
            }
        }
        match verify_program(&p) {
            Err(VerifyError::CommMismatch { .. }) | Err(VerifyError::Deadlock { .. }) => {}
            other => panic!("expected comm mismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_signature_mismatch() {
        let mut p = MpmdProgram::default();
        let mut b = GraphBuilder::new();
        let x = b.input([2, 2]);
        let y = b.emit(Prim::Neg, &[x]).unwrap();
        let j = b.finish(vec![y]).unwrap();
        p.add_jaxpr(j);
        p.actors.push(vec![Instr::Run {
            jaxpr: JaxprId(0),
            inputs: vec![],
            outputs: vec![BufferId(0)],
            label: TaskLabel::Update { param: 0 },
        }]);
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::SignatureMismatch { .. })
        ));
    }

    #[test]
    fn detects_missing_fetch() {
        let mut p = compiled_program(false);
        p.fetches.push(Fetch {
            buf: BufferId(999_999),
            actor: 0,
            role: FetchRole::Grad(0),
        });
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::MissingFetch { .. })
        ));
    }
}
