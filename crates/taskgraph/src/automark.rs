//! Automatic stage marking: inserting `pipeline_yield` boundaries into an
//! unmarked graph at balanced-FLOP cut points.
//!
//! JaxPP's position (contrasting with Alpa, paper §6) is that stage
//! boundaries are *user* decisions — but nothing stops a library from
//! offering a good default. This pass walks the traced graph in
//! definition order, accumulates per-equation FLOPs, and inserts a yield
//! after the equation that crosses each balanced threshold (preferring
//! cut values that are actually consumed downstream, so no stage ends up
//! empty). The result is an ordinary marked graph — everything downstream
//! (partitioning, differentiation, unrolling) is unchanged.

use std::collections::HashSet;

use raxpp_ir::{GraphBuilder, IrError, Jaxpr, Prim, Result, Shape, VarId};

/// Inserts `n_stages - 1` yield markers into `jaxpr` at balanced-FLOP
/// boundaries.
///
/// # Errors
///
/// Returns [`IrError::Invalid`] when the graph already contains forward
/// yields, when `n_stages` is 0, or when no valid cut points exist
/// (fewer meaningful equations than stages).
pub fn auto_mark_stages(jaxpr: &Jaxpr, n_stages: usize) -> Result<Jaxpr> {
    if n_stages == 0 {
        return Err(IrError::Invalid("n_stages must be positive".into()));
    }
    if jaxpr.eqns().iter().any(|e| {
        matches!(
            e.prim,
            Prim::PipelineYield {
                backward: false,
                ..
            }
        )
    }) {
        return Err(IrError::Invalid(
            "auto_mark_stages expects an unmarked graph (it already has yields)".into(),
        ));
    }
    if n_stages == 1 {
        return Ok(jaxpr.clone());
    }

    // Per-equation flops and the set of equation outputs with later uses.
    let eqns = jaxpr.eqns();
    let mut has_later_use: Vec<bool> = vec![false; eqns.len()];
    {
        let mut used: HashSet<VarId> = jaxpr.outvars().iter().copied().collect();
        for (i, e) in eqns.iter().enumerate().rev() {
            has_later_use[i] = used.contains(&e.output);
            for &v in &e.inputs {
                used.insert(v);
            }
        }
        // `used` marks use-anywhere; has_later_use[i] as computed marks
        // "used by outvars or any equation after i", because we insert
        // inputs after checking the output.
    }
    let flops: Vec<f64> = eqns
        .iter()
        .map(|e| {
            let in_shapes: Vec<&Shape> = e.inputs.iter().map(|&v| jaxpr.shape(v)).collect();
            let in_numels: Vec<usize> = in_shapes.iter().map(|s| s.numel()).collect();
            e.prim
                .flops(&in_numels, jaxpr.shape(e.output).numel(), &in_shapes) as f64
        })
        .collect();
    let total: f64 = flops.iter().sum();
    if total <= 0.0 {
        return Err(IrError::Invalid("graph has no measurable compute".into()));
    }

    // Pick cut equations: after crossing each k/n_stages threshold, the
    // next equation with a later-used output (and not the final one).
    let mut cuts: Vec<usize> = Vec::new();
    let mut acc = 0.0;
    let mut next_threshold = 1;
    for (i, f) in flops.iter().enumerate() {
        acc += f;
        if next_threshold < n_stages
            && acc >= total * next_threshold as f64 / n_stages as f64
            && i + 1 < eqns.len()
            && has_later_use[i]
        {
            cuts.push(i);
            next_threshold += 1;
        }
    }
    if cuts.len() != n_stages - 1 {
        return Err(IrError::Invalid(format!(
            "could not place {} balanced cuts (found {}); fewer usable equations than stages",
            n_stages - 1,
            cuts.len()
        )));
    }

    // Rebuild with yields after the cut equations, remapping later uses
    // of each cut value to the yield's output.
    let mut b = GraphBuilder::new();
    let mut map: std::collections::HashMap<VarId, VarId> = std::collections::HashMap::new();
    for &v in jaxpr.invars() {
        map.insert(v, b.input(jaxpr.shape(v).clone()));
    }
    let mut next_yield = 0u32;
    for (i, e) in eqns.iter().enumerate() {
        let inputs: Vec<VarId> = e.inputs.iter().map(|v| map[v]).collect();
        let out = b.emit(e.prim.clone(), &inputs)?;
        map.insert(e.output, out);
        if cuts.contains(&i) {
            let marked = b.emit(
                Prim::PipelineYield {
                    id: raxpp_ir::YieldId(next_yield),
                    backward: false,
                },
                &[out],
            )?;
            next_yield += 1;
            map.insert(e.output, marked);
        }
    }
    let outs: Vec<VarId> = jaxpr.outvars().iter().map(|v| map[v]).collect();
    b.finish(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::partition_stages;
    use raxpp_ir::TraceCtx;

    fn unmarked_chain(layers: usize) -> Jaxpr {
        let ctx = TraceCtx::new();
        let ws: Vec<_> = (0..layers).map(|_| ctx.input([8, 8])).collect();
        let x = ctx.input([4, 8]);
        let mut h = x;
        for w in &ws {
            h = h.matmul(w).unwrap().tanh();
        }
        let loss = h.mul(&h).unwrap().sum();
        ctx.finish(&[loss]).unwrap()
    }

    #[test]
    fn marks_balanced_stages() {
        let j = unmarked_chain(8);
        for n_stages in [2usize, 4] {
            let marked = auto_mark_stages(&j, n_stages).unwrap();
            let staged = partition_stages(&marked).unwrap();
            assert_eq!(staged.n_stages(), n_stages);
            // Per-stage flops within 2x of each other (matmuls dominate).
            let per: Vec<u64> = staged.stages.iter().map(|s| s.jaxpr.flops()).collect();
            let max = *per.iter().max().unwrap();
            let min = *per.iter().min().unwrap();
            assert!(
                max <= 2 * min.max(1),
                "unbalanced stages at n={n_stages}: {per:?}"
            );
        }
    }

    #[test]
    fn marked_graph_evaluates_identically() {
        use raxpp_ir::{eval, Tensor};
        let j = unmarked_chain(4);
        let marked = auto_mark_stages(&j, 2).unwrap();
        use raxpp_ir::rng::SeedableRng;
        let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(51);
        let inputs: Vec<Tensor> = j
            .in_shapes()
            .iter()
            .map(|s| Tensor::randn(s.clone(), 0.5, &mut rng))
            .collect();
        assert_eq!(eval(&j, &inputs).unwrap(), eval(&marked, &inputs).unwrap());
    }

    #[test]
    fn single_stage_is_identity() {
        let j = unmarked_chain(2);
        let marked = auto_mark_stages(&j, 1).unwrap();
        assert_eq!(marked.eqns().len(), j.eqns().len());
    }

    #[test]
    fn rejects_marked_graphs_and_silly_inputs() {
        let j = unmarked_chain(4);
        let marked = auto_mark_stages(&j, 2).unwrap();
        assert!(auto_mark_stages(&marked, 2).is_err());
        assert!(auto_mark_stages(&j, 0).is_err());
        assert!(auto_mark_stages(&j, 50).is_err()); // more stages than eqns
    }
}
