//! The fused MPMD program representation: one instruction stream per
//! actor, dispatched in a single message (paper §4.4 "task fusion").

use std::fmt;

use raxpp_ir::{Jaxpr, Shape};

/// Identifier of a device buffer in the global buffer namespace.
///
/// Buffer ids are assigned by the compiler; each actor's on-device object
/// store maps ids to tensors at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u32);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Index of an actor (an SPMD process group).
pub type ActorId = usize;

/// Index into the program's jaxpr table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JaxprId(pub u32);

/// What a [`Instr::Run`] instruction computes, for diagnostics, cost
/// modeling, and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskLabel {
    /// Forward computation of a stage for one microbatch.
    Fwd {
        /// Microbatch index.
        mubatch: usize,
        /// Stage index.
        stage: usize,
    },
    /// Backward computation of a stage for one microbatch (the full
    /// backward, or its activation-gradient half under a split-backward
    /// schedule).
    Bwd {
        /// Microbatch index.
        mubatch: usize,
        /// Stage index.
        stage: usize,
    },
    /// Deferred weight-gradient half of a split backward (zero-bubble
    /// schedules).
    BwdW {
        /// Microbatch index.
        mubatch: usize,
        /// Stage index.
        stage: usize,
    },
    /// Local gradient accumulation (`acc += partial`).
    AccumGrad {
        /// The parameter whose gradient is accumulated.
        param: usize,
    },
    /// Summing cotangent contributions from multiple consumer stages.
    CotangentSum {
        /// Stage whose output's cotangent is being summed.
        stage: usize,
    },
    /// Cross-actor reduction of shared-weight partial gradients
    /// (the loop-commuting rewrite of paper §3.4).
    GradReduce {
        /// The shared parameter.
        param: usize,
    },
    /// Optimizer update of one parameter.
    Update {
        /// The parameter updated.
        param: usize,
    },
}

impl fmt::Display for TaskLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskLabel::Fwd { mubatch, stage } => write!(f, "fwd(mb={mubatch}, s={stage})"),
            TaskLabel::Bwd { mubatch, stage } => write!(f, "bwd(mb={mubatch}, s={stage})"),
            TaskLabel::BwdW { mubatch, stage } => write!(f, "bwdw(mb={mubatch}, s={stage})"),
            TaskLabel::AccumGrad { param } => write!(f, "accum_grad(p={param})"),
            TaskLabel::CotangentSum { stage } => write!(f, "ct_sum(s={stage})"),
            TaskLabel::GradReduce { param } => write!(f, "grad_reduce(p={param})"),
            TaskLabel::Update { param } => write!(f, "update(p={param})"),
        }
    }
}

/// Which collective a [`Instr::Collective`] performs across its
/// tensor-parallel group.
///
/// Every kind is *exact* under the bitwise-determinism contract: the
/// runtime first ring-gathers all ranks' contributions, then combines
/// them locally in rank-ascending order with the same scalar kernels on
/// every rank — concatenation for [`CollectiveKind::AllGather`], a
/// left-fold elementwise sum for [`CollectiveKind::AllReduce`], the same
/// fold followed by taking the caller's own block for
/// [`CollectiveKind::ReduceScatter`]. No rank-dependent association, no
/// FMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Concatenate all ranks' blocks along `dim`; every rank ends with
    /// the full tensor.
    AllGather,
    /// Elementwise rank-ascending sum of all ranks' contributions; every
    /// rank ends with the identical sum.
    AllReduce,
    /// Elementwise rank-ascending sum, after which each rank keeps only
    /// its own equal block along `dim`.
    ReduceScatter,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveKind::AllGather => write!(f, "all_gather"),
            CollectiveKind::AllReduce => write!(f, "all_reduce"),
            CollectiveKind::ReduceScatter => write!(f, "reduce_scatter"),
        }
    }
}

/// Which mesh axis a [`Instr::Collective`] communicates over.
///
/// The runtime uses the axis to route per-axis metrics
/// (`bytes_wire`/`collective_wait` for TP vs `dp_bytes_wire`/
/// `dp_collective_wait` for DP) and to pick the combine path: DP
/// collectives are *true sums* of genuinely different per-replica
/// contributions (each replica trains on its own slice of the global
/// batch), folded elementwise in pinned replica-ascending order, while
/// TP all-reduces consult [`TpMeta::disjoint_reduce`] for the
/// disjoint-block assembly fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveAxis {
    /// Tensor-parallel lane group (the ranks of one pipeline host).
    Tp,
    /// Data-parallel replica group (the same position in every replica).
    Dp,
}

impl fmt::Display for CollectiveAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveAxis::Tp => write!(f, "tp"),
            CollectiveAxis::Dp => write!(f, "dp"),
        }
    }
}

/// One instruction of an actor's fused stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Execute a jaxpr: read `inputs` from the object store, write
    /// `outputs` (outputs may overwrite existing buffers, e.g. parameter
    /// updates).
    Run {
        /// Which jaxpr in the program table.
        jaxpr: JaxprId,
        /// Input buffers, in jaxpr input order.
        inputs: Vec<BufferId>,
        /// Output buffers, in jaxpr output order.
        outputs: Vec<BufferId>,
        /// What this task is, for diagnostics and cost models.
        label: TaskLabel,
    },
    /// Asynchronously send `buf` to actor `to`. Sends between the same
    /// actor pair must be received in issue order (NCCL semantics,
    /// paper §4.2).
    Send {
        /// Buffer to transmit.
        buf: BufferId,
        /// Destination actor.
        to: ActorId,
    },
    /// Receive the next message from actor `from` into `buf`.
    ///
    /// `src` is the sender-side buffer id expected on the wire (the
    /// §4.2 matching-order check); it usually equals `buf`, but differs
    /// when a value is received into a different local buffer (e.g.
    /// propagating an updated shared weight into a replica's own
    /// parameter buffer).
    Recv {
        /// Local buffer to store into.
        buf: BufferId,
        /// Sender-side buffer id expected next from `from`.
        src: BufferId,
        /// Source actor.
        from: ActorId,
        /// Expected shape (checked by the runtime).
        shape: Shape,
    },
    /// Copy `src`'s tensor into `dst` within this actor's own store — a
    /// local move. Produced by program re-placement
    /// ([`crate::replace_program`]) when a send/recv pair lands on one
    /// actor after stage folding and the receive targets a different
    /// buffer id than the wire value.
    Copy {
        /// Destination buffer.
        dst: BufferId,
        /// Source buffer (must be live).
        src: BufferId,
    },
    /// Delete a buffer from the object store. If the buffer has an
    /// outstanding asynchronous send, the runtime defers the deletion via
    /// its pending-deletions queue (paper §4.3).
    Free {
        /// Buffer to delete.
        buf: BufferId,
    },
    /// Execute one collective across a tensor-parallel group: contribute
    /// `src`, ring-exchange contributions with the other members of
    /// `group` over the ordinary actor message fabric, combine them in
    /// rank-ascending order, and store the result in `dst`.
    ///
    /// `group` lists the participating actors in rank-ascending order and
    /// contains the executing actor. `wires[r]` is the buffer id rank
    /// `r`'s contribution travels under on the wire (each rank's `src`
    /// *is* `wires[its own rank]`), which keeps the §4.2 per-pair FIFO
    /// matching-order discipline intact across back-to-back collectives.
    Collective {
        /// Which collective to perform.
        kind: CollectiveKind,
        /// Result buffer.
        dst: BufferId,
        /// This actor's contribution (equals `wires[own rank]`).
        src: BufferId,
        /// Participating actors, rank-ascending, including this one.
        group: Vec<ActorId>,
        /// Wire buffer ids per rank (`wires.len() == group.len()`).
        wires: Vec<BufferId>,
        /// Axis along which [`CollectiveKind::AllGather`] concatenates
        /// and [`CollectiveKind::ReduceScatter`] splits (ignored by
        /// [`CollectiveKind::AllReduce`]).
        dim: usize,
        /// Which mesh axis the group spans (metrics routing and the
        /// disjoint-assembly decision).
        axis: CollectiveAxis,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Run {
                label,
                inputs,
                outputs,
                ..
            } => {
                write!(f, "run {label} (in: ")?;
                for (i, b) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "; out: ")?;
                for (i, b) in outputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            Instr::Send { buf, to } => write!(f, "send {buf} -> actor {to}"),
            Instr::Recv { buf, from, .. } => write!(f, "recv {buf} <- actor {from}"),
            Instr::Copy { dst, src } => write!(f, "copy {src} -> {dst}"),
            Instr::Free { buf } => write!(f, "free {buf}"),
            Instr::Collective {
                kind,
                dst,
                src,
                group,
                ..
            } => write!(f, "{kind} {src} -> {dst} (group {group:?})"),
        }
    }
}

/// Where an initial buffer comes from when the driver places it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSource {
    /// The `i`-th model parameter (resident across steps).
    Param(usize),
    /// Microbatch `mubatch` of the `input`-th data input (placed every
    /// step).
    Data {
        /// Which data input of the traced function.
        input: usize,
        /// Which microbatch.
        mubatch: usize,
    },
    /// Optimizer state slot `slot` of parameter `param` (resident across
    /// steps, placed once at initialization by the caller that appended
    /// the optimizer tasks).
    State {
        /// The parameter this state belongs to.
        param: usize,
        /// State slot index (e.g. Adam's m and v).
        slot: usize,
    },
}

/// A buffer the driver must place on an actor before execution.
#[derive(Debug, Clone, PartialEq)]
pub struct InputPlacement {
    /// Target buffer id.
    pub buf: BufferId,
    /// Target actor.
    pub actor: ActorId,
    /// Buffer shape.
    pub shape: Shape,
    /// What fills it.
    pub source: InputSource,
}

/// What a fetched result buffer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchRole {
    /// Final accumulated gradient of a parameter.
    Grad(usize),
    /// A global output (e.g. per-microbatch loss).
    Output {
        /// Which output of the traced function.
        output: usize,
        /// Which microbatch produced it.
        mubatch: usize,
    },
}

/// A buffer the driver fetches after execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fetch {
    /// Buffer to fetch.
    pub buf: BufferId,
    /// Actor holding it.
    pub actor: ActorId,
    /// Meaning of the value.
    pub role: FetchRole,
}

/// Tensor-parallel structure of a sharded program, recorded by
/// `shard_program` so the runtime can run the rank streams of one host
/// actor as concurrent *shard lanes* with an in-actor rendezvous
/// instead of the serialized message-ring walk.
///
/// The lowering keeps the `t` rank streams of every host actor
/// *aligned*: instruction `i` of rank `r`'s stream and instruction `i`
/// of rank `r'`'s stream come from the same host instruction and have
/// the same kind (only buffer ids and jaxpr variants differ). `insert_frees`
/// preserves the alignment because its pin set (placements + fetches) is
/// a buffer-id set shared by all ranks. The runtime relies on this to
/// key its lane rendezvous by instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpMeta {
    /// Tensor-parallel degree `t`: host actor `a`'s streams are
    /// `a*t .. a*t+t-1`.
    pub degree: usize,
    /// Per [`JaxprId`]: `true` when the jaxpr is replicated verbatim on
    /// every rank of its host — same jaxpr, same input buffer ids, and
    /// (by the replicated-buffer invariant) bitwise-identical input
    /// values, so each instance needs to execute on only one lane.
    pub replicated: Vec<bool>,
    /// Whether every [`CollectiveKind::AllReduce`] in the program sums
    /// contributions with *disjoint support*: each rank's tensor is its
    /// own block padded to full width with `-0.0`. Since `x + (-0.0)`
    /// is bitwise `x` for every `f32` (including both zeros, under
    /// round-to-nearest), the rank-ascending fold then equals block
    /// concatenation bit for bit, and the runtime may assemble blocks
    /// instead of folding full tensors. Always `true` for
    /// `shard_program` output (the mini-partitioner only shards matmuls
    /// on the rhs last dim, so partial results are disjoint columns,
    /// never partial sums).
    pub disjoint_reduce: bool,
}

/// Data-parallel structure of a replicated program, recorded by
/// `replicate_program` so the runtime and trainer can do replica
/// arithmetic (`raxpp_sched::DpMap`) and route DP collectives.
///
/// Replica `rep`'s copy of base actor `a` is `rep * base_actors + a`,
/// where `base_actors` is the actor count *after* TP sharding — the DP
/// axis replicates whole (possibly TP-sharded) pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpMeta {
    /// Number of data-parallel replicas.
    pub replicas: usize,
    /// Actors per replica (post-TP actor count of the input program).
    pub base_actors: usize,
    /// Whether optimizer state is ZeRO-1 sharded across the DP group
    /// (each replica owns one first-dim slice of every state slot and
    /// computes only its slice of the parameter update; the first dim
    /// is the axis tensor parallelism never shards, so this composes
    /// with any `tp` degree).
    pub zero1: bool,
}

/// A complete fused MPMD program: the output of the RaxPP compiler and
/// the input of the `raxpp-runtime` driver.
#[derive(Debug, Clone, Default)]
pub struct MpmdProgram {
    /// Jaxpr table shared by all actors.
    pub jaxprs: Vec<Jaxpr>,
    /// Per-actor instruction streams (one fused dispatch each, §4.4).
    pub actors: Vec<Vec<Instr>>,
    /// Buffers the driver places before running.
    pub placements: Vec<InputPlacement>,
    /// Buffers the driver fetches afterwards.
    pub fetches: Vec<Fetch>,
    /// Tensor-parallel structure when the program was produced by
    /// `shard_program` with degree > 1; `None` for pure-pipeline
    /// programs and hand-built ones (the runtime then always uses the
    /// ring collective path).
    pub tp: Option<TpMeta>,
    /// Data-parallel structure when the program was produced by
    /// `replicate_program` with more than one replica; `None` otherwise.
    pub dp: Option<DpMeta>,
}

impl MpmdProgram {
    /// Number of actors.
    pub fn n_actors(&self) -> usize {
        self.actors.len()
    }

    /// Number of driver→actor dispatches per step — one per actor thanks
    /// to task fusion (§4.4); without fusion it would be one per
    /// instruction.
    pub fn num_rpcs(&self) -> usize {
        self.actors.iter().filter(|s| !s.is_empty()).count()
    }

    /// Total instruction count across actors.
    pub fn num_instrs(&self) -> usize {
        self.actors.iter().map(Vec::len).sum()
    }

    /// Adds a jaxpr to the table, returning its id.
    pub fn add_jaxpr(&mut self, jaxpr: Jaxpr) -> JaxprId {
        self.jaxprs.push(jaxpr);
        JaxprId(self.jaxprs.len() as u32 - 1)
    }

    /// Counts `Run` instructions matching a predicate on their label.
    pub fn count_runs(&self, pred: impl Fn(&TaskLabel) -> bool) -> usize {
        self.actors
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::Run { label, .. } if pred(label)))
            .count()
    }

    /// Pretty-prints the streams for debugging.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for (a, stream) in self.actors.iter().enumerate() {
            s.push_str(&format!("actor {a}:\n"));
            for i in stream {
                s.push_str(&format!("  {i}\n"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_display() {
        assert_eq!(
            TaskLabel::Fwd {
                mubatch: 1,
                stage: 2
            }
            .to_string(),
            "fwd(mb=1, s=2)"
        );
        assert_eq!(
            TaskLabel::GradReduce { param: 3 }.to_string(),
            "grad_reduce(p=3)"
        );
    }

    #[test]
    fn program_counters() {
        let mut p = MpmdProgram::default();
        p.actors.push(vec![
            Instr::Send {
                buf: BufferId(0),
                to: 1,
            },
            Instr::Free { buf: BufferId(0) },
        ]);
        p.actors.push(vec![Instr::Recv {
            buf: BufferId(0),
            src: BufferId(0),
            from: 0,
            shape: Shape::new([2]),
        }]);
        p.actors.push(vec![]);
        assert_eq!(p.n_actors(), 3);
        assert_eq!(p.num_rpcs(), 2); // empty stream needs no dispatch
        assert_eq!(p.num_instrs(), 3);
        assert_eq!(p.count_runs(|_| true), 0);
        assert!(p.dump().contains("send b0 -> actor 1"));
    }
}
