//! Data-parallel replication: cloning a compiled (possibly
//! tensor-parallel) MPMD program into `R` replica pipelines whose
//! gradient paths are linked by [`Instr::Collective`] all-reduces over
//! the DP axis, with optional ZeRO-1 optimizer-state sharding.
//!
//! # The replicated batch plane
//!
//! Every replica runs the *same* fused program over the *same* full
//! batch (data placements are duplicated to all replicas), so gradients
//! are bitwise-identical across replicas before any communication.
//! This makes the DP gradient exchange a *load-bearing identity*:
//! replica `rep` masks its disjoint last-dim shard of each gradient
//! (slice, then pad back to full width with `-0.0` — the
//! [`TaskLabel::GradShard`] task), and the DP group's rank-ascending
//! all-reduce fold reassembles the full gradient bit for bit (because
//! `x + (-0.0) == x` for every `f32`, exactly the theorem
//! `shard_program` rests on). A `dp = R` run therefore computes losses,
//! parameters, and checkpoints bit-identical to `dp = 1`, while
//! exercising the real collective schedule, wire accounting, and
//! failure surface of data parallelism — the property
//! `tests/data_parallel.rs` enforces through faults, recovery, and
//! rebalances.
//!
//! # Actor and buffer spaces
//!
//! Replica `rep`'s copy of base actor `a` is `rep * base_actors + a`
//! ([`raxpp_sched::DpMap`] arithmetic; `base_actors` counts the *input*
//! program's actors, i.e. after any TP sharding). Buffer ids are shared
//! across replicas — stores are per-actor, so identical ids never
//! collide, and the id-keyed pin set of `insert_frees` then produces
//! identical `Free` positions in every replica, keeping the replica
//! streams index-aligned (the invariant the runtime's rendezvous slot
//! keying relies on, see [`TpMeta`]). Only the DP collective wires and
//! assembly buffers are freshly allocated, shared by all replicas as a
//! set with `wires[rep]` owned by replica `rep`.
//!
//! # ZeRO-1
//!
//! With ZeRO-1 enabled, replica `rep` owns one last-dim slice of every
//! optimizer-state slot: its update task consumes the full parameter
//! and the assembled gradient but computes only its state slices and
//! its `-0.0`-padded slice of the updated parameter; a second DP
//! all-reduce folds the parameter contributions into the full updated
//! parameter in place. State placements shrink to slice shapes.
//! Parameters whose last dimension is smaller than `R` (and rank-0
//! scalars) skip DP treatment entirely: their updates stay replicated,
//! which is already bitwise-correct.

use std::collections::HashMap;
use std::fmt;

use raxpp_ir::{GraphBuilder, IrError, Jaxpr, Prim, Shape};

use crate::program::{
    ActorId, BufferId, CollectiveAxis, CollectiveKind, DpMeta, InputSource, Instr, JaxprId,
    MpmdProgram, TaskLabel,
};
use crate::shard::fresh_buffer_floor;

/// Error raised by [`replicate_program`].
#[derive(Debug)]
pub enum ReplicateError {
    /// The input program already carries a DP axis (double replication).
    AlreadyReplicated,
    /// Inconsistent arguments (zero replicas, ZeRO-1 under tp > 1, …).
    BadInput(String),
    /// Building a mask jaxpr failed (a pass bug).
    Ir(IrError),
    /// The caller's ZeRO-1 update builder failed.
    Zero1(String),
}

impl fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicateError::AlreadyReplicated => {
                write!(f, "program already carries a data-parallel axis")
            }
            ReplicateError::BadInput(msg) => write!(f, "bad replication request: {msg}"),
            ReplicateError::Ir(e) => write!(f, "replica codegen failed: {e}"),
            ReplicateError::Zero1(msg) => write!(f, "ZeRO-1 update codegen failed: {msg}"),
        }
    }
}

impl std::error::Error for ReplicateError {}

impl From<IrError> for ReplicateError {
    fn from(e: IrError) -> Self {
        ReplicateError::Ir(e)
    }
}

/// Whether a parameter of `shape` receives DP treatment (gradient
/// sharding, collectives, and — under ZeRO-1 — state slicing) when
/// replicated `replicas` ways. Scalars and parameters whose last
/// dimension is narrower than the replica count stay fully replicated
/// instead; callers holding per-replica state (the trainer's
/// checkpoint/restore paths) must apply the same rule.
pub fn dp_treated(shape: &Shape, replicas: usize) -> bool {
    shape.rank() > 0 && shape.dim(shape.rank() - 1) >= replicas
}

/// Replica `rep`'s last-dim slice `(start, len)` of a dimension of
/// `full` elements split across `replicas`: the first `full % replicas`
/// replicas get one extra element, so slices tile the dimension exactly
/// even when it does not divide evenly.
pub fn dp_split(full: usize, replicas: usize, rep: usize) -> (usize, usize) {
    let base = full / replicas;
    let rem = full % replicas;
    let len = base + usize::from(rep < rem);
    let start = rep * base + rep.min(rem);
    (start, len)
}

/// Per-parameter DP lowering decisions and fresh ids.
struct DpParam {
    /// Full size of the split (last) dimension.
    full: usize,
    /// Axis the gradient is split along (always last).
    dim: usize,
    /// Per-replica gradient-shard wires (shared set, `wires[rep]` is
    /// replica `rep`'s contribution).
    grad_wires: Vec<BufferId>,
    /// The assembled-gradient buffer (same id in every replica's store).
    assembled: BufferId,
    /// Per-replica mask jaxprs ([`TaskLabel::GradShard`]).
    mask: Vec<JaxprId>,
    /// ZeRO-1: per-replica sharded update jaxprs and the parameter
    /// contribution wires folded into the parameter buffer.
    zero1: Option<(Vec<JaxprId>, Vec<BufferId>)>,
}

/// Builds the [`TaskLabel::GradShard`] mask: slice the replica's
/// `(start, len)` last-dim block out of the full gradient, then pad it
/// back to full width with `-0.0`.
fn mask_jaxpr(shape: &Shape, start: usize, len: usize) -> Result<Jaxpr, IrError> {
    let mut b = GraphBuilder::new();
    let g = b.input(shape.clone());
    let full = shape.dim(shape.rank() - 1);
    let s = b.emit(Prim::SliceLast { start, len }, &[g])?;
    let padded = b.emit(
        Prim::PadLast {
            start,
            full,
            value: -0.0,
        },
        &[s],
    )?;
    b.finish(vec![padded])
}

/// Replicates `program` into `replicas` data-parallel pipelines (see
/// the module docs for the semantics). `replicas == 1` returns the
/// program unchanged.
///
/// `zero1`, when provided, enables ZeRO-1 optimizer-state sharding: for
/// each DP-treated parameter it is called as `(param, start, len)` and
/// must return the sharded update jaxpr with inputs
/// `(param, grad, state-slices…)` and outputs
/// `(-0.0-padded param contribution, state-slices…)`, where slices are
/// the `(start, len)` last-dim block. The builder lives with the caller
/// because only it knows the optimizer; `raxpp-core` supplies
/// `Optimizer::sharded_update_jaxpr`.
///
/// # Errors
///
/// Returns [`ReplicateError::AlreadyReplicated`] for programs that
/// already carry a DP axis, and [`ReplicateError::BadInput`] for zero
/// replicas or ZeRO-1 requested on a tensor-parallel program (state
/// sharding composes with TP's replicated-buffer invariant only at
/// `tp = 1`).
pub fn replicate_program(
    program: &MpmdProgram,
    replicas: usize,
    mut zero1: Option<&mut dyn FnMut(usize, usize, usize) -> Result<Jaxpr, String>>,
) -> Result<MpmdProgram, ReplicateError> {
    if replicas == 0 {
        return Err(ReplicateError::BadInput(
            "data-parallel degree must be positive".into(),
        ));
    }
    if program.dp.is_some() {
        return Err(ReplicateError::AlreadyReplicated);
    }
    if replicas == 1 {
        return Ok(program.clone());
    }
    if zero1.is_some() && program.tp.as_ref().is_some_and(|m| m.degree > 1) {
        return Err(ReplicateError::BadInput(
            "ZeRO-1 state sharding requires tp degree 1".into(),
        ));
    }
    let n = program.n_actors();
    let shapes: HashMap<BufferId, &Shape> = program
        .placements
        .iter()
        .map(|p| (p.buf, &p.shape))
        .collect();

    let mut out = MpmdProgram {
        jaxprs: program.jaxprs.clone(),
        ..MpmdProgram::default()
    };
    let mut next = fresh_buffer_floor(program);
    let mut fresh = || {
        let b = BufferId(next);
        next += 1;
        b
    };

    // Decide the DP lowering per parameter from its Update instruction
    // (one owner per parameter; TP rank copies are identical).
    let mut dp_params: HashMap<usize, DpParam> = HashMap::new();
    let mut mask_cache: HashMap<(Vec<usize>, usize, usize), JaxprId> = HashMap::new();
    for instr in program.actors.iter().flatten() {
        let Instr::Run {
            inputs,
            label: TaskLabel::Update { param },
            ..
        } = instr
        else {
            continue;
        };
        if dp_params.contains_key(param) {
            continue;
        }
        let shape = *shapes.get(&inputs[0]).ok_or_else(|| {
            ReplicateError::BadInput(format!("parameter {param} has no placement"))
        })?;
        // Scalars and too-narrow last dims stay replicated: their
        // updates are bitwise-correct without any DP exchange.
        if !dp_treated(shape, replicas) {
            continue;
        }
        let dim = shape.rank() - 1;
        let full = shape.dim(dim);
        let mut mask = Vec::with_capacity(replicas);
        for rep in 0..replicas {
            let (start, len) = dp_split(full, replicas, rep);
            let key = (shape.dims().to_vec(), start, len);
            let jid = match mask_cache.get(&key) {
                Some(&j) => j,
                None => {
                    let j = out.add_jaxpr(mask_jaxpr(shape, start, len)?);
                    mask_cache.insert(key, j);
                    j
                }
            };
            mask.push(jid);
        }
        let z = match zero1.as_mut() {
            Some(build) => {
                let mut upds = Vec::with_capacity(replicas);
                for rep in 0..replicas {
                    let (start, len) = dp_split(full, replicas, rep);
                    let j = build(*param, start, len).map_err(ReplicateError::Zero1)?;
                    upds.push(out.add_jaxpr(j));
                }
                Some((upds, (0..replicas).map(|_| fresh()).collect()))
            }
            None => None,
        };
        dp_params.insert(
            *param,
            DpParam {
                full,
                dim,
                grad_wires: (0..replicas).map(|_| fresh()).collect(),
                assembled: fresh(),
                mask,
                zero1: z,
            },
        );
    }

    out.actors = vec![Vec::new(); n * replicas];
    for rep in 0..replicas {
        for (a, stream) in program.actors.iter().enumerate() {
            let s = &mut out.actors[rep * n + a];
            for instr in stream {
                match instr {
                    Instr::Run {
                        jaxpr,
                        inputs,
                        outputs,
                        label,
                    } => {
                        let dpp = match label {
                            TaskLabel::Update { param } => dp_params.get(param),
                            _ => None,
                        };
                        let Some(dpp) = dpp else {
                            s.push(instr.clone());
                            continue;
                        };
                        let param = match label {
                            TaskLabel::Update { param } => *param,
                            _ => unreachable!(),
                        };
                        let group: Vec<ActorId> = (0..replicas).map(|r| r * n + a).collect();
                        s.push(Instr::Run {
                            jaxpr: dpp.mask[rep],
                            inputs: vec![inputs[1]],
                            outputs: vec![dpp.grad_wires[rep]],
                            label: TaskLabel::GradShard { param },
                        });
                        s.push(Instr::Collective {
                            kind: CollectiveKind::AllReduce,
                            dst: dpp.assembled,
                            src: dpp.grad_wires[rep],
                            group: group.clone(),
                            wires: dpp.grad_wires.clone(),
                            dim: dpp.dim,
                            axis: CollectiveAxis::Dp,
                        });
                        let mut new_inputs = inputs.clone();
                        new_inputs[1] = dpp.assembled;
                        match &dpp.zero1 {
                            Some((upds, pw)) => {
                                let mut new_outputs = outputs.clone();
                                new_outputs[0] = pw[rep];
                                s.push(Instr::Run {
                                    jaxpr: upds[rep],
                                    inputs: new_inputs,
                                    outputs: new_outputs,
                                    label: *label,
                                });
                                s.push(Instr::Collective {
                                    kind: CollectiveKind::AllReduce,
                                    dst: outputs[0],
                                    src: pw[rep],
                                    group,
                                    wires: pw.clone(),
                                    dim: dpp.dim,
                                    axis: CollectiveAxis::Dp,
                                });
                            }
                            None => s.push(Instr::Run {
                                jaxpr: *jaxpr,
                                inputs: new_inputs,
                                outputs: outputs.clone(),
                                label: *label,
                            }),
                        }
                    }
                    Instr::Send { buf, to } => s.push(Instr::Send {
                        buf: *buf,
                        to: rep * n + to,
                    }),
                    Instr::Recv {
                        buf,
                        src,
                        from,
                        shape,
                    } => s.push(Instr::Recv {
                        buf: *buf,
                        src: *src,
                        from: rep * n + from,
                        shape: shape.clone(),
                    }),
                    Instr::Collective {
                        kind,
                        dst,
                        src,
                        group,
                        wires,
                        dim,
                        axis,
                    } => s.push(Instr::Collective {
                        kind: *kind,
                        dst: *dst,
                        src: *src,
                        group: group.iter().map(|m| rep * n + m).collect(),
                        wires: wires.clone(),
                        dim: *dim,
                        axis: *axis,
                    }),
                    other => s.push(other.clone()),
                }
            }
        }
    }

    // Placements go to every replica (the replicated batch plane:
    // parameters, state, and data alike); under ZeRO-1 the state slots
    // of DP-treated parameters shrink to the replica's slice shape.
    let zero1_on = zero1.is_some();
    for rep in 0..replicas {
        for p in &program.placements {
            let mut q = p.clone();
            q.actor = rep * n + p.actor;
            if zero1_on {
                if let InputSource::State { param, .. } = p.source {
                    if let Some(dpp) = dp_params.get(&param) {
                        let (_, len) = dp_split(dpp.full, replicas, rep);
                        let mut dims = p.shape.dims().to_vec();
                        *dims.last_mut().expect("DP-treated state has rank >= 1") = len;
                        q.shape = Shape::new(dims);
                    }
                }
            }
            out.placements.push(q);
        }
    }
    // Fetches read replica 0, whose buffers are bitwise-identical to
    // every other replica's (and to the dp = 1 run's).
    out.fetches = program.fetches.clone();

    // New jaxprs (masks, ZeRO-1 updates) are replicated verbatim across
    // TP ranks: same ids, same buffers, bitwise-identical inputs.
    out.tp = program.tp.clone();
    if let Some(tp) = &mut out.tp {
        tp.replicated.resize(out.jaxprs.len(), true);
    }
    out.dp = Some(DpMeta {
        replicas,
        base_actors: n,
        zero1: zero1_on,
    });
    debug_assert!(replica_streams_aligned(&out, replicas, n));
    Ok(out)
}

/// Checks the replica-alignment invariant the runtime's rendezvous slot
/// keying relies on: every replica's copy of an actor stream has the
/// same length and the same instruction kind at every index.
fn replica_streams_aligned(program: &MpmdProgram, replicas: usize, n: usize) -> bool {
    let kind = |i: &Instr| match i {
        Instr::Run { .. } => 0u8,
        Instr::Send { .. } => 1,
        Instr::Recv { .. } => 2,
        Instr::Copy { .. } => 3,
        Instr::Free { .. } => 4,
        Instr::Collective { .. } => 5,
    };
    (0..n).all(|a| {
        (1..replicas).all(|rep| {
            let s0 = &program.actors[a];
            let sr = &program.actors[rep * n + a];
            s0.len() == sr.len() && s0.iter().zip(sr).all(|(x, y)| kind(x) == kind(y))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::program::{Fetch, InputPlacement};
    use crate::unroll::{insert_frees, unroll_loop, UnrollOptions};
    use crate::verify::verify_program;
    use raxpp_ir::{eval, Tensor, TraceCtx};
    use raxpp_sched::gpipe;

    fn two_stage_program() -> MpmdProgram {
        let ctx = TraceCtx::new();
        let w1 = ctx.input([8, 8]);
        let w2 = ctx.input([8, 8]);
        let x = ctx.input([4, 8]);
        let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 2).unwrap();
        unroll_loop(
            &model,
            &gpipe(2, 2).unwrap(),
            UnrollOptions {
                loop_commuting: true,
            },
        )
        .unwrap()
        .program
    }

    /// Appends a plain SGD update for parameter 0 so the pass has an
    /// Update instruction to rewrite.
    fn with_update(mut p: MpmdProgram) -> MpmdProgram {
        let (pbuf, owner, shape) = {
            let pl = p
                .placements
                .iter()
                .find(|pl| matches!(pl.source, InputSource::Param(0)))
                .unwrap();
            (pl.buf, pl.actor, pl.shape.clone())
        };
        let grad = p
            .fetches
            .iter()
            .find_map(|f| match f.role {
                crate::program::FetchRole::Grad(0) => Some(f.buf),
                _ => None,
            })
            .unwrap();
        let mut b = GraphBuilder::new();
        let pv = b.input(shape.clone());
        let gv = b.input(shape);
        let step = b.emit(Prim::Scale(0.1), &[gv]).unwrap();
        let p2 = b.emit(Prim::Sub, &[pv, step]).unwrap();
        let j = p.add_jaxpr(b.finish(vec![p2]).unwrap());
        p.actors[owner].push(Instr::Run {
            jaxpr: j,
            inputs: vec![pbuf, grad],
            outputs: vec![pbuf],
            label: TaskLabel::Update { param: 0 },
        });
        p
    }

    #[test]
    fn dp_split_tiles_exactly() {
        for (full, r) in [(8, 2), (8, 4), (7, 2), (9, 4), (4, 4)] {
            let mut covered = 0;
            for rep in 0..r {
                let (start, len) = dp_split(full, r, rep);
                assert_eq!(start, covered);
                covered += len;
            }
            assert_eq!(covered, full);
        }
    }

    #[test]
    fn single_replica_is_identity() {
        let p = two_stage_program();
        let r = replicate_program(&p, 1, None).unwrap();
        assert_eq!(r.n_actors(), p.n_actors());
        assert!(r.dp.is_none());
    }

    #[test]
    fn double_replication_rejected() {
        let p = two_stage_program();
        let r = replicate_program(&p, 2, None).unwrap();
        assert!(matches!(
            replicate_program(&r, 2, None),
            Err(ReplicateError::AlreadyReplicated)
        ));
    }

    #[test]
    fn replicated_program_verifies_with_dp_collectives() {
        let p = with_update(two_stage_program());
        for replicas in [2, 4] {
            let mut r = replicate_program(&p, replicas, None).unwrap();
            assert_eq!(r.n_actors(), p.n_actors() * replicas);
            insert_frees(&mut r);
            verify_program(&r).unwrap();
            let dp_colls = r
                .actors
                .iter()
                .flatten()
                .filter(|i| {
                    matches!(
                        i,
                        Instr::Collective {
                            axis: CollectiveAxis::Dp,
                            ..
                        }
                    )
                })
                .count();
            // One gradient all-reduce per replica of the one update.
            assert_eq!(dp_colls, replicas);
            assert_eq!(
                r.count_runs(|l| matches!(l, TaskLabel::GradShard { .. })),
                replicas
            );
            let meta = r.dp.unwrap();
            assert_eq!(meta.replicas, replicas);
            assert_eq!(meta.base_actors, p.n_actors());
            assert!(!meta.zero1);
        }
    }

    #[test]
    fn fetches_stay_on_replica_zero_placements_on_all() {
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        assert_eq!(r.fetches, p.fetches);
        assert_eq!(r.placements.len(), p.placements.len() * 2);
    }

    #[test]
    fn mask_folds_back_to_identity() {
        // The heart of the bitwise contract: summing the -0.0-padded
        // replica shards rank-ascending reproduces the gradient exactly.
        let shape = Shape::new([3, 8]);
        let g = Tensor::from_vec(
            [3, 8],
            (0..24).map(|i| (i as f32 - 11.5) * 1.7).collect::<Vec<_>>(),
        )
        .unwrap();
        let replicas = 3; // uneven: 8 = 3 + 3 + 2
        let mut acc: Option<Tensor> = None;
        for rep in 0..replicas {
            let (start, len) = dp_split(8, replicas, rep);
            let j = mask_jaxpr(&shape, start, len).unwrap();
            let shard = eval(&j, std::slice::from_ref(&g)).unwrap().remove(0);
            acc = Some(match acc {
                None => shard,
                Some(a) => a.zip(&shard, |x, y| x + y).unwrap(),
            });
        }
        let sum = acc.unwrap();
        assert_eq!(sum.data(), g.data());
    }

    #[test]
    fn zero1_shards_state_placements_and_folds_params() {
        let mut p = with_update(two_stage_program());
        // Give the update a momentum slot so there is state to shard.
        let (pbuf, owner, shape) = {
            let pl = p
                .placements
                .iter()
                .find(|pl| matches!(pl.source, InputSource::Param(0)))
                .unwrap();
            (pl.buf, pl.actor, pl.shape.clone())
        };
        let state = BufferId(9000);
        p.placements.push(InputPlacement {
            buf: state,
            actor: owner,
            shape: shape.clone(),
            source: InputSource::State { param: 0, slot: 0 },
        });
        // Rewrite the appended SGD update into a momentum-style one that
        // also consumes/produces the state slot.
        let upd = p
            .actors
            .iter_mut()
            .flatten()
            .find(|i| {
                matches!(
                    i,
                    Instr::Run {
                        label: TaskLabel::Update { .. },
                        ..
                    }
                )
            })
            .unwrap();
        if let Instr::Run {
            jaxpr,
            inputs,
            outputs,
            ..
        } = upd
        {
            inputs.push(state);
            outputs.push(state);
            let mut b = GraphBuilder::new();
            let pv = b.input(shape.clone());
            let gv = b.input(shape.clone());
            let sv = b.input(shape.clone());
            let v2 = b.emit(Prim::Add, &[sv, gv]).unwrap();
            let step = b.emit(Prim::Scale(0.1), &[v2]).unwrap();
            let p2 = b.emit(Prim::Sub, &[pv, step]).unwrap();
            let njid = JaxprId(p.jaxprs.len() as u32);
            p.jaxprs.push(b.finish(vec![p2, v2]).unwrap());
            *jaxpr = njid;
        }
        let replicas = 2;
        let full = shape.dim(1);
        let mut build = |_param: usize, start: usize, len: usize| -> Result<Jaxpr, String> {
            let mut b = GraphBuilder::new();
            let slice_shape = Shape::new([shape.dim(0), len]);
            let pv = b.input(shape.clone());
            let gv = b.input(shape.clone());
            let sv = b.input(slice_shape);
            let ps = b.emit(Prim::SliceLast { start, len }, &[pv]).unwrap();
            let gs = b.emit(Prim::SliceLast { start, len }, &[gv]).unwrap();
            let v2 = b.emit(Prim::Add, &[sv, gs]).unwrap();
            let step = b.emit(Prim::Scale(0.1), &[v2]).unwrap();
            let p2 = b.emit(Prim::Sub, &[ps, step]).unwrap();
            let padded = b
                .emit(
                    Prim::PadLast {
                        start,
                        full,
                        value: -0.0,
                    },
                    &[p2],
                )
                .unwrap();
            b.finish(vec![padded, v2]).map_err(|e| e.to_string())
        };
        let mut r = replicate_program(&p, replicas, Some(&mut build)).unwrap();
        insert_frees(&mut r);
        verify_program(&r).unwrap();
        assert!(r.dp.unwrap().zero1);
        // Two DP collectives per replica now: grad assembly + param fold.
        let dp_colls = r
            .actors
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Collective {
                        axis: CollectiveAxis::Dp,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(dp_colls, 2 * replicas);
        // The param fold writes the parameter buffer itself.
        assert!(r.actors.iter().flatten().any(|i| matches!(
            i,
            Instr::Collective {
                axis: CollectiveAxis::Dp,
                dst,
                ..
            } if *dst == pbuf
        )));
        // State placements shrank to slice shapes that tile the full dim.
        let state_lens: Vec<usize> = r
            .placements
            .iter()
            .filter(|pl| matches!(pl.source, InputSource::State { .. }))
            .map(|pl| pl.shape.dim(1))
            .collect();
        assert_eq!(state_lens.iter().sum::<usize>(), full);
    }

    #[test]
    fn zero1_under_tp_rejected() {
        let p = with_update(two_stage_program());
        let mesh = raxpp_mesh::Mesh::new(&[("model", 2)]).unwrap();
        let sharded = crate::shard::shard_program(&p, &mesh, "model").unwrap();
        let mut build =
            |_: usize, _: usize, _: usize| -> Result<Jaxpr, String> { Err("unused".into()) };
        assert!(matches!(
            replicate_program(&sharded, 2, Some(&mut build)),
            Err(ReplicateError::BadInput(_))
        ));
    }

    #[test]
    fn composes_with_tp_sharding() {
        let p = with_update(two_stage_program());
        let mesh = raxpp_mesh::Mesh::new(&[("model", 2)]).unwrap();
        let sharded = crate::shard::shard_program(&p, &mesh, "model").unwrap();
        let mut r = replicate_program(&sharded, 2, None).unwrap();
        assert_eq!(r.n_actors(), p.n_actors() * 2 * 2);
        insert_frees(&mut r);
        verify_program(&r).unwrap();
        // Both axes present: TP collectives within replicas, DP
        // collectives across them.
        let (mut tp_colls, mut dp_colls) = (0, 0);
        for i in r.actors.iter().flatten() {
            if let Instr::Collective { axis, group, .. } = i {
                match axis {
                    CollectiveAxis::Tp => {
                        tp_colls += 1;
                        // TP groups stay within one replica block.
                        let base = r.dp.unwrap().base_actors;
                        assert!(group.iter().all(|&m| m / base == group[0] / base));
                    }
                    CollectiveAxis::Dp => {
                        dp_colls += 1;
                        // DP groups span replicas, one member each.
                        let base = r.dp.unwrap().base_actors;
                        let reps: Vec<usize> = group.iter().map(|&m| m / base).collect();
                        assert_eq!(reps, vec![0, 1]);
                    }
                }
            }
        }
        assert!(tp_colls > 0);
        assert!(dp_colls > 0);
        // The extended replicated table covers the new mask jaxprs.
        let tp = r.tp.as_ref().unwrap();
        assert_eq!(tp.replicated.len(), r.jaxprs.len());
    }

    #[test]
    fn replica_fold_through_replace_program_keeps_groups() {
        // The lifted-restriction path: fold host 1 onto host 0 in both
        // replicas of a dp=2 program and check the DP groups remap
        // rank-preservingly.
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        let n = p.n_actors();
        // Hosts: {0,1} per replica; fold 1 -> 0 uniformly.
        let mut assign: Vec<usize> = (0..2 * n).collect();
        assign[1] = 0;
        assign[n + 1] = n;
        let folded = crate::replace::replace_program(&r, &assign).unwrap();
        verify_program(&folded).unwrap();
        for i in folded.actors.iter().flatten() {
            if let Instr::Collective { group, .. } = i {
                assert!(group.windows(2).all(|w| w[0] < w[1]));
            }
        }
        assert_eq!(p.count_runs(|_| true) * 2, folded.count_runs(|_| true) - 2);
    }

    #[test]
    fn non_uniform_fold_rejected() {
        // Folding only one replica's host breaks the DP group.
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        let n = p.n_actors();
        let mut assign: Vec<usize> = (0..2 * n).collect();
        let owner = p
            .actors
            .iter()
            .position(|s| {
                s.iter().any(|i| {
                    matches!(
                        i,
                        Instr::Run {
                            label: TaskLabel::Update { .. },
                            ..
                        }
                    )
                })
            })
            .unwrap();
        // Fold replica 1's copy of the update owner onto replica 1's
        // other host, but leave replica 0 intact: the group folds
        // non-uniformly.
        let other = if owner == 0 { 1 } else { 0 };
        assign[n + owner] = n + other;
        assert!(matches!(
            crate::replace::replace_program(&r, &assign),
            Err(crate::replace::ReplaceError::Unsupported(_))
        ));
    }

    #[test]
    fn narrow_params_skip_dp_treatment() {
        // A parameter with last dim < replicas keeps its replicated
        // update and gets no collective.
        let ctx = TraceCtx::new();
        let w = ctx.input([4, 2]);
        let x = ctx.input([2, 4]);
        let y = x.matmul(&w).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 1).unwrap();
        let p = with_update(
            unroll_loop(
                &model,
                &gpipe(1, 2).unwrap(),
                UnrollOptions {
                    loop_commuting: true,
                },
            )
            .unwrap()
            .program,
        );
        let r = replicate_program(&p, 4, None).unwrap();
        assert!(!r
            .actors
            .iter()
            .flatten()
            .any(|i| matches!(i, Instr::Collective { .. })));
        assert_eq!(r.count_runs(|l| matches!(l, TaskLabel::Update { .. })), 4);
    }

    #[test]
    fn fetch_and_placement_sources_survive() {
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        for (q, orig) in r.placements.chunks(p.placements.len()).zip([0, 1]) {
            for (np, op) in q.iter().zip(&p.placements) {
                assert_eq!(np.buf, op.buf);
                assert_eq!(np.source, op.source);
                assert_eq!(np.actor, orig * p.n_actors() + op.actor);
            }
        }
        assert!(r
            .fetches
            .iter()
            .zip(&p.fetches)
            .all(|(a, b): (&Fetch, &Fetch)| a == b));
    }
}
