//! Data-parallel replication: cloning a compiled (possibly
//! tensor-parallel) MPMD program into `R` replica pipelines that each
//! consume a *disjoint slice of the global batch*, with gradient paths
//! linked by [`Instr::Collective`] all-reduces over the DP axis and
//! optional ZeRO-1 optimizer-state sharding.
//!
//! # Batch sharding
//!
//! The input program describes *one replica's* pipeline over `N_local`
//! microbatches. Replication turns it into `R` pipelines over a global
//! batch of `R * N_local` microbatches: replica `rep`'s copy of data
//! placement `Data { input, mubatch: m }` is rewritten to the global
//! index `rep * N_local + m` ([`raxpp_sched::DpMap`] batch-range
//! arithmetic), so replicas own contiguous ascending ranges of the
//! global batch and each executes only `1/R` of the work — data
//! parallelism that buys throughput, not redundancy.
//!
//! Because replicas see different data, their gradients genuinely
//! differ, and the per-parameter DP all-reduce is a *true sum*: every
//! parameter with an [`TaskLabel::Update`] gets one gradient all-reduce
//! whose replica-ascending fold order is pinned by the runtime
//! (`g = g_0 + g_1 + … + g_{R-1}`, always in that association). That
//! pin is what makes the determinism contract two-tier: any run at
//! fixed `R` is bitwise-reproducible (through faults, recovery,
//! rebalance, checkpoint resume, and lanes↔serial execution), while
//! runs at *different* `R` agree only within fp32 summation-
//! reassociation bounds — see `docs/determinism.md`. Pre-update
//! (step-0) per-microbatch losses are still bitwise-equal across every
//! `R`, because the forward pass of a microbatch never depends on the
//! replica that runs it.
//!
//! # Actor and buffer spaces
//!
//! Replica `rep`'s copy of base actor `a` is `rep * base_actors + a`
//! ([`raxpp_sched::DpMap`] arithmetic; `base_actors` counts the *input*
//! program's actors, i.e. after any TP sharding). Buffer ids are shared
//! across replicas — stores are per-actor, so identical ids never
//! collide, and the id-keyed pin set of `insert_frees` then produces
//! identical `Free` positions in every replica, keeping the replica
//! streams index-aligned (the invariant the runtime's rendezvous slot
//! keying relies on, see [`TpMeta`]). The gradient all-reduce reuses
//! the gradient buffer id itself as every replica's wire
//! (`wires[rep] == src` on all ranks) and lands in a freshly-allocated
//! assembled-gradient buffer shared by all replicas.
//!
//! # ZeRO-1
//!
//! With ZeRO-1 enabled, replica `rep` owns one *first-dim* slice of
//! every optimizer-state slot: its update task consumes the full
//! parameter and the assembled gradient but computes only its state
//! slices and its `-0.0`-padded slice of the updated parameter; a
//! second DP all-reduce folds the parameter contributions into the full
//! updated parameter in place (a disjoint-block sum, bitwise equal to
//! concatenation because `x + (-0.0) == x` for every `f32`). The first
//! dim is sharded because it is the one axis the column-parallel tensor
//! sharding never splits — parameters and optimizer state are
//! full-shape replicated across TP ranks, so first-dim slices are
//! rank-uniform and ZeRO-1 composes with any `tp` degree. State
//! placements shrink to slice shapes. Parameters whose first dimension
//! is smaller than `R` (and rank-0 scalars) keep replicated full-shape
//! state: their updates are bitwise-correct without sharding, and their
//! gradients still get the true-sum all-reduce.

use std::collections::HashMap;
use std::fmt;

use raxpp_ir::{IrError, Jaxpr, Shape};

use crate::program::{
    ActorId, BufferId, CollectiveAxis, CollectiveKind, DpMeta, Fetch, FetchRole, InputSource,
    Instr, JaxprId, MpmdProgram, TaskLabel,
};
use crate::shard::fresh_buffer_floor;

/// Error raised by [`replicate_program`].
#[derive(Debug)]
pub enum ReplicateError {
    /// The input program already carries a DP axis (double replication).
    AlreadyReplicated,
    /// Inconsistent arguments (zero replicas, missing placements, …).
    BadInput(String),
    /// Replica codegen failed (a pass bug).
    Ir(IrError),
    /// The caller's ZeRO-1 update builder failed.
    Zero1(String),
}

impl fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicateError::AlreadyReplicated => {
                write!(f, "program already carries a data-parallel axis")
            }
            ReplicateError::BadInput(msg) => write!(f, "bad replication request: {msg}"),
            ReplicateError::Ir(e) => write!(f, "replica codegen failed: {e}"),
            ReplicateError::Zero1(msg) => write!(f, "ZeRO-1 update codegen failed: {msg}"),
        }
    }
}

impl std::error::Error for ReplicateError {}

impl From<IrError> for ReplicateError {
    fn from(e: IrError) -> Self {
        ReplicateError::Ir(e)
    }
}

/// Whether a parameter of `shape` receives ZeRO-1 state sharding when
/// replicated `replicas` ways: its optimizer state is split into
/// first-dim slices, one per replica. Scalars and parameters whose
/// first dimension is narrower than the replica count keep replicated
/// full-shape state instead; callers holding per-replica state (the
/// trainer's checkpoint/restore paths) must apply the same rule. The
/// gradient all-reduce is independent of this: under batch sharding
/// *every* updated parameter gets one, whatever its shape.
pub fn dp_treated(shape: &Shape, replicas: usize) -> bool {
    shape.rank() > 0 && shape.dim(0) >= replicas
}

/// Replica `rep`'s first-dim slice `(start, len)` of a dimension of
/// `full` elements split across `replicas`: the first `full % replicas`
/// replicas get one extra element, so slices tile the dimension exactly
/// even when it does not divide evenly.
pub fn dp_split(full: usize, replicas: usize, rep: usize) -> (usize, usize) {
    let base = full / replicas;
    let rem = full % replicas;
    let len = base + usize::from(rep < rem);
    let start = rep * base + rep.min(rem);
    (start, len)
}

/// Per-parameter DP lowering decisions and fresh ids.
struct DpParam {
    /// Full size of the first dimension (ZeRO-1's shard axis).
    full: usize,
    /// Collective `dim` metadata (the last axis; the true-sum fold
    /// ignores it, AllGather-style kinds would concatenate along it).
    dim: usize,
    /// The assembled-gradient buffer (same id in every replica's store).
    assembled: BufferId,
    /// ZeRO-1: per-replica sharded update jaxprs and the shared
    /// parameter-contribution wire folded into the parameter buffer.
    zero1: Option<(Vec<JaxprId>, BufferId)>,
}

/// Replicates `program` into `replicas` data-parallel pipelines, each
/// consuming a disjoint `1/replicas` slice of the global batch (see the
/// module docs for the semantics). `replicas == 1` returns the program
/// unchanged.
///
/// `zero1`, when provided, enables ZeRO-1 optimizer-state sharding: for
/// each eligible parameter ([`dp_treated`]) it is called as
/// `(param, start, len)` and must return the sharded update jaxpr with
/// inputs `(param, grad, state-slices…)` and outputs
/// `(-0.0-padded param contribution, state-slices…)`, where slices are
/// the `(start, len)` *first-dim* block. The builder lives with the
/// caller because only it knows the optimizer; `raxpp-core` supplies
/// `Optimizer::sharded_update_jaxpr`. First-dim sharding is what lets
/// ZeRO-1 compose with tensor parallelism: params and state are
/// full-shape replicated across TP ranks, and TP never splits dim 0.
///
/// # Errors
///
/// Returns [`ReplicateError::AlreadyReplicated`] for programs that
/// already carry a DP axis, and [`ReplicateError::BadInput`] for zero
/// replicas or an updated parameter without a placement.
pub fn replicate_program(
    program: &MpmdProgram,
    replicas: usize,
    mut zero1: Option<&mut dyn FnMut(usize, usize, usize) -> Result<Jaxpr, String>>,
) -> Result<MpmdProgram, ReplicateError> {
    if replicas == 0 {
        return Err(ReplicateError::BadInput(
            "data-parallel degree must be positive".into(),
        ));
    }
    if program.dp.is_some() {
        return Err(ReplicateError::AlreadyReplicated);
    }
    if replicas == 1 {
        return Ok(program.clone());
    }
    let n = program.n_actors();
    let shapes: HashMap<BufferId, &Shape> = program
        .placements
        .iter()
        .map(|p| (p.buf, &p.shape))
        .collect();

    let mut out = MpmdProgram {
        jaxprs: program.jaxprs.clone(),
        ..MpmdProgram::default()
    };
    let mut next = fresh_buffer_floor(program);
    let mut fresh = || {
        let b = BufferId(next);
        next += 1;
        b
    };

    // Decide the DP lowering per parameter from its Update instruction
    // (one owner per parameter; TP rank copies are identical). Every
    // updated parameter gets a gradient all-reduce — replicas hold
    // genuinely different gradients under batch sharding, so no shape
    // is exempt. ZeRO-1 state sharding additionally needs a first dim
    // wide enough to slice (`dp_treated`).
    let mut dp_params: HashMap<usize, DpParam> = HashMap::new();
    for instr in program.actors.iter().flatten() {
        let Instr::Run {
            inputs,
            label: TaskLabel::Update { param },
            ..
        } = instr
        else {
            continue;
        };
        if dp_params.contains_key(param) {
            continue;
        }
        let shape = *shapes.get(&inputs[0]).ok_or_else(|| {
            ReplicateError::BadInput(format!("parameter {param} has no placement"))
        })?;
        let full = if shape.rank() > 0 { shape.dim(0) } else { 1 };
        let z = match zero1.as_mut() {
            Some(build) if dp_treated(shape, replicas) => {
                let mut upds = Vec::with_capacity(replicas);
                for rep in 0..replicas {
                    let (start, len) = dp_split(full, replicas, rep);
                    let j = build(*param, start, len).map_err(ReplicateError::Zero1)?;
                    upds.push(out.add_jaxpr(j));
                }
                Some((upds, fresh()))
            }
            _ => None,
        };
        dp_params.insert(
            *param,
            DpParam {
                full,
                dim: shape.rank().saturating_sub(1),
                assembled: fresh(),
                zero1: z,
            },
        );
    }

    // The input program's per-replica microbatch count: the global
    // batch this replicated program consumes is `replicas` times it.
    let n_mub = program
        .placements
        .iter()
        .filter_map(|p| match p.source {
            InputSource::Data { mubatch, .. } => Some(mubatch + 1),
            _ => None,
        })
        .chain(program.fetches.iter().filter_map(|f| match f.role {
            FetchRole::Output { mubatch, .. } => Some(mubatch + 1),
            _ => None,
        }))
        .max()
        .unwrap_or(0);

    out.actors = vec![Vec::new(); n * replicas];
    for rep in 0..replicas {
        for (a, stream) in program.actors.iter().enumerate() {
            let s = &mut out.actors[rep * n + a];
            for instr in stream {
                match instr {
                    Instr::Run {
                        jaxpr,
                        inputs,
                        outputs,
                        label,
                    } => {
                        let dpp = match label {
                            TaskLabel::Update { param } => dp_params.get(param),
                            _ => None,
                        };
                        let Some(dpp) = dpp else {
                            s.push(instr.clone());
                            continue;
                        };
                        let group: Vec<ActorId> = (0..replicas).map(|r| r * n + a).collect();
                        // True-sum gradient all-reduce: the gradient
                        // buffer itself is every replica's wire (same
                        // id on all ranks — stores are per-actor), and
                        // the pinned replica-ascending fold sums the
                        // genuinely different per-replica gradients
                        // into the shared assembled buffer.
                        s.push(Instr::Collective {
                            kind: CollectiveKind::AllReduce,
                            dst: dpp.assembled,
                            src: inputs[1],
                            group: group.clone(),
                            wires: vec![inputs[1]; replicas],
                            dim: dpp.dim,
                            axis: CollectiveAxis::Dp,
                        });
                        let mut new_inputs = inputs.clone();
                        new_inputs[1] = dpp.assembled;
                        match &dpp.zero1 {
                            Some((upds, pw)) => {
                                let mut new_outputs = outputs.clone();
                                new_outputs[0] = *pw;
                                s.push(Instr::Run {
                                    jaxpr: upds[rep],
                                    inputs: new_inputs,
                                    outputs: new_outputs,
                                    label: *label,
                                });
                                // Disjoint-block param fold: each
                                // replica contributes its -0.0-padded
                                // first-dim slice, so this sum is
                                // bitwise concatenation.
                                s.push(Instr::Collective {
                                    kind: CollectiveKind::AllReduce,
                                    dst: outputs[0],
                                    src: *pw,
                                    group,
                                    wires: vec![*pw; replicas],
                                    dim: dpp.dim,
                                    axis: CollectiveAxis::Dp,
                                });
                            }
                            None => s.push(Instr::Run {
                                jaxpr: *jaxpr,
                                inputs: new_inputs,
                                outputs: outputs.clone(),
                                label: *label,
                            }),
                        }
                    }
                    Instr::Send { buf, to } => s.push(Instr::Send {
                        buf: *buf,
                        to: rep * n + to,
                    }),
                    Instr::Recv {
                        buf,
                        src,
                        from,
                        shape,
                    } => s.push(Instr::Recv {
                        buf: *buf,
                        src: *src,
                        from: rep * n + from,
                        shape: shape.clone(),
                    }),
                    Instr::Collective {
                        kind,
                        dst,
                        src,
                        group,
                        wires,
                        dim,
                        axis,
                    } => s.push(Instr::Collective {
                        kind: *kind,
                        dst: *dst,
                        src: *src,
                        group: group.iter().map(|m| rep * n + m).collect(),
                        wires: wires.clone(),
                        dim: *dim,
                        axis: *axis,
                    }),
                    other => s.push(other.clone()),
                }
            }
        }
    }

    // Placements go to every replica. Parameters and state are
    // replicated; data placements are *sharded* — replica `rep`'s copy
    // of local microbatch `m` is global microbatch `rep * n_mub + m`,
    // so replicas consume disjoint contiguous slices of the global
    // batch. Under ZeRO-1 the state slots of sharded parameters shrink
    // to the replica's first-dim slice shape.
    let zero1_on = zero1.is_some();
    for rep in 0..replicas {
        for p in &program.placements {
            let mut q = p.clone();
            q.actor = rep * n + p.actor;
            match p.source {
                InputSource::Data { input, mubatch } => {
                    q.source = InputSource::Data {
                        input,
                        mubatch: rep * n_mub + mubatch,
                    };
                }
                InputSource::State { param, .. } => {
                    if let Some(dpp) = dp_params.get(&param) {
                        if dpp.zero1.is_some() {
                            let (_, len) = dp_split(dpp.full, replicas, rep);
                            let mut dims = p.shape.dims().to_vec();
                            dims[0] = len;
                            q.shape = Shape::new(dims);
                        }
                    }
                }
                InputSource::Param(_) => {}
            }
            out.placements.push(q);
        }
    }
    // Fetches: per-microbatch outputs live on the replica that consumed
    // the microbatch, so Output fetches fan out to all replicas under
    // their global indices; gradient fetches repoint to the assembled
    // (summed) buffer, read once from replica 0 — every replica's copy
    // is bitwise-identical after the pinned fold.
    out.fetches = Vec::with_capacity(program.fetches.len() * replicas);
    for f in &program.fetches {
        match f.role {
            FetchRole::Output { output, mubatch } => {
                for rep in 0..replicas {
                    out.fetches.push(Fetch {
                        buf: f.buf,
                        actor: rep * n + f.actor,
                        role: FetchRole::Output {
                            output,
                            mubatch: rep * n_mub + mubatch,
                        },
                    });
                }
            }
            FetchRole::Grad(param) => {
                let mut q = *f;
                if let Some(dpp) = dp_params.get(&param) {
                    q.buf = dpp.assembled;
                }
                out.fetches.push(q);
            }
        }
    }

    // New jaxprs (ZeRO-1 updates) are replicated verbatim across
    // TP ranks: same ids, same buffers, bitwise-identical inputs.
    out.tp = program.tp.clone();
    if let Some(tp) = &mut out.tp {
        tp.replicated.resize(out.jaxprs.len(), true);
    }
    out.dp = Some(DpMeta {
        replicas,
        base_actors: n,
        zero1: zero1_on,
    });
    debug_assert!(replica_streams_aligned(&out, replicas, n));
    Ok(out)
}

/// Checks the replica-alignment invariant the runtime's rendezvous slot
/// keying relies on: every replica's copy of an actor stream has the
/// same length and the same instruction kind at every index.
fn replica_streams_aligned(program: &MpmdProgram, replicas: usize, n: usize) -> bool {
    let kind = |i: &Instr| match i {
        Instr::Run { .. } => 0u8,
        Instr::Send { .. } => 1,
        Instr::Recv { .. } => 2,
        Instr::Copy { .. } => 3,
        Instr::Free { .. } => 4,
        Instr::Collective { .. } => 5,
    };
    (0..n).all(|a| {
        (1..replicas).all(|rep| {
            let s0 = &program.actors[a];
            let sr = &program.actors[rep * n + a];
            s0.len() == sr.len() && s0.iter().zip(sr).all(|(x, y)| kind(x) == kind(y))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::program::InputPlacement;
    use crate::unroll::{insert_frees, unroll_loop, UnrollOptions};
    use crate::verify::verify_program;
    use raxpp_ir::{GraphBuilder, Prim, TraceCtx};
    use raxpp_sched::gpipe;

    fn two_stage_program() -> MpmdProgram {
        let ctx = TraceCtx::new();
        let w1 = ctx.input([8, 8]);
        let w2 = ctx.input([8, 8]);
        let x = ctx.input([4, 8]);
        let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 2).unwrap();
        unroll_loop(
            &model,
            &gpipe(2, 2).unwrap(),
            UnrollOptions {
                loop_commuting: true,
            },
        )
        .unwrap()
        .program
    }

    /// Appends a plain SGD update for parameter 0 so the pass has an
    /// Update instruction to rewrite.
    fn with_update(mut p: MpmdProgram) -> MpmdProgram {
        let (pbuf, owner, shape) = {
            let pl = p
                .placements
                .iter()
                .find(|pl| matches!(pl.source, InputSource::Param(0)))
                .unwrap();
            (pl.buf, pl.actor, pl.shape.clone())
        };
        let grad = p
            .fetches
            .iter()
            .find_map(|f| match f.role {
                crate::program::FetchRole::Grad(0) => Some(f.buf),
                _ => None,
            })
            .unwrap();
        let mut b = GraphBuilder::new();
        let pv = b.input(shape.clone());
        let gv = b.input(shape);
        let step = b.emit(Prim::Scale(0.1), &[gv]).unwrap();
        let p2 = b.emit(Prim::Sub, &[pv, step]).unwrap();
        let j = p.add_jaxpr(b.finish(vec![p2]).unwrap());
        p.actors[owner].push(Instr::Run {
            jaxpr: j,
            inputs: vec![pbuf, grad],
            outputs: vec![pbuf],
            label: TaskLabel::Update { param: 0 },
        });
        p
    }

    #[test]
    fn dp_split_tiles_exactly() {
        for (full, r) in [(8, 2), (8, 4), (7, 2), (9, 4), (4, 4)] {
            let mut covered = 0;
            for rep in 0..r {
                let (start, len) = dp_split(full, r, rep);
                assert_eq!(start, covered);
                covered += len;
            }
            assert_eq!(covered, full);
        }
    }

    #[test]
    fn single_replica_is_identity() {
        let p = two_stage_program();
        let r = replicate_program(&p, 1, None).unwrap();
        assert_eq!(r.n_actors(), p.n_actors());
        assert!(r.dp.is_none());
    }

    #[test]
    fn double_replication_rejected() {
        let p = two_stage_program();
        let r = replicate_program(&p, 2, None).unwrap();
        assert!(matches!(
            replicate_program(&r, 2, None),
            Err(ReplicateError::AlreadyReplicated)
        ));
    }

    #[test]
    fn replicated_program_verifies_with_dp_collectives() {
        let p = with_update(two_stage_program());
        for replicas in [2, 4] {
            let mut r = replicate_program(&p, replicas, None).unwrap();
            assert_eq!(r.n_actors(), p.n_actors() * replicas);
            insert_frees(&mut r);
            verify_program(&r).unwrap();
            let dp_colls = r
                .actors
                .iter()
                .flatten()
                .filter(|i| {
                    matches!(
                        i,
                        Instr::Collective {
                            axis: CollectiveAxis::Dp,
                            ..
                        }
                    )
                })
                .count();
            // One gradient all-reduce per replica of the one update,
            // wired as a true sum: the gradient buffer is every
            // replica's wire and the dst is a fresh assembled buffer.
            assert_eq!(dp_colls, replicas);
            for i in r.actors.iter().flatten() {
                if let Instr::Collective {
                    axis: CollectiveAxis::Dp,
                    src,
                    dst,
                    wires,
                    ..
                } = i
                {
                    assert_eq!(wires, &vec![*src; replicas]);
                    assert_ne!(dst, src);
                }
            }
            let meta = r.dp.unwrap();
            assert_eq!(meta.replicas, replicas);
            assert_eq!(meta.base_actors, p.n_actors());
            assert!(!meta.zero1);
        }
    }

    #[test]
    fn output_fetches_fan_out_grad_fetches_repoint() {
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        assert_eq!(r.placements.len(), p.placements.len() * 2);
        let n = p.n_actors();
        // Per-microbatch outputs live on the replica that consumed the
        // microbatch: one fetch per replica, under global indices.
        let orig_outputs = p
            .fetches
            .iter()
            .filter(|f| matches!(f.role, FetchRole::Output { .. }))
            .count();
        let out_fetches: Vec<&Fetch> = r
            .fetches
            .iter()
            .filter(|f| matches!(f.role, FetchRole::Output { .. }))
            .collect();
        assert_eq!(out_fetches.len(), orig_outputs * 2);
        let n_mub = 2; // gpipe(2, 2)
        for f in &out_fetches {
            let FetchRole::Output { mubatch, .. } = f.role else {
                unreachable!()
            };
            let rep = f.actor / n;
            assert!((rep * n_mub..(rep + 1) * n_mub).contains(&mubatch));
        }
        // Gradient fetches read the assembled sum, not the replica-local
        // partial gradient, from replica 0.
        let (old_grad, new_grad) = (
            p.fetches
                .iter()
                .find(|f| matches!(f.role, FetchRole::Grad(0)))
                .unwrap(),
            r.fetches
                .iter()
                .find(|f| matches!(f.role, FetchRole::Grad(0)))
                .unwrap(),
        );
        assert_ne!(new_grad.buf, old_grad.buf);
        assert_eq!(new_grad.actor, old_grad.actor);
    }

    #[test]
    fn data_placements_shard_the_global_batch() {
        let p = with_update(two_stage_program());
        let replicas = 2;
        let r = replicate_program(&p, replicas, None).unwrap();
        let n = p.n_actors();
        let n_mub = 2; // gpipe(2, 2)
        let mut seen = vec![false; replicas * n_mub];
        for q in &r.placements {
            if let InputSource::Data { mubatch, .. } = q.source {
                let rep = q.actor / n;
                assert!(
                    (rep * n_mub..(rep + 1) * n_mub).contains(&mubatch),
                    "replica {rep} placed out-of-range microbatch {mubatch}"
                );
                seen[mubatch] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every global microbatch must be placed exactly once"
        );
    }

    #[test]
    fn zero1_shards_state_placements_and_folds_params() {
        let mut p = with_update(two_stage_program());
        // Give the update a momentum slot so there is state to shard.
        let (pbuf, owner, shape) = {
            let pl = p
                .placements
                .iter()
                .find(|pl| matches!(pl.source, InputSource::Param(0)))
                .unwrap();
            (pl.buf, pl.actor, pl.shape.clone())
        };
        let state = BufferId(9000);
        p.placements.push(InputPlacement {
            buf: state,
            actor: owner,
            shape: shape.clone(),
            source: InputSource::State { param: 0, slot: 0 },
        });
        // Rewrite the appended SGD update into a momentum-style one that
        // also consumes/produces the state slot.
        let upd = p
            .actors
            .iter_mut()
            .flatten()
            .find(|i| {
                matches!(
                    i,
                    Instr::Run {
                        label: TaskLabel::Update { .. },
                        ..
                    }
                )
            })
            .unwrap();
        if let Instr::Run {
            jaxpr,
            inputs,
            outputs,
            ..
        } = upd
        {
            inputs.push(state);
            outputs.push(state);
            let mut b = GraphBuilder::new();
            let pv = b.input(shape.clone());
            let gv = b.input(shape.clone());
            let sv = b.input(shape.clone());
            let v2 = b.emit(Prim::Add, &[sv, gv]).unwrap();
            let step = b.emit(Prim::Scale(0.1), &[v2]).unwrap();
            let p2 = b.emit(Prim::Sub, &[pv, step]).unwrap();
            let njid = JaxprId(p.jaxprs.len() as u32);
            p.jaxprs.push(b.finish(vec![p2, v2]).unwrap());
            *jaxpr = njid;
        }
        let replicas = 2;
        let full = shape.dim(0);
        let mut build = |_param: usize, start: usize, len: usize| -> Result<Jaxpr, String> {
            let mut b = GraphBuilder::new();
            let slice_shape = Shape::new([len, shape.dim(1)]);
            let pv = b.input(shape.clone());
            let gv = b.input(shape.clone());
            let sv = b.input(slice_shape);
            let ps = b.emit(Prim::SliceFirst { start, len }, &[pv]).unwrap();
            let gs = b.emit(Prim::SliceFirst { start, len }, &[gv]).unwrap();
            let v2 = b.emit(Prim::Add, &[sv, gs]).unwrap();
            let step = b.emit(Prim::Scale(0.1), &[v2]).unwrap();
            let p2 = b.emit(Prim::Sub, &[ps, step]).unwrap();
            let padded = b
                .emit(
                    Prim::PadFirst {
                        start,
                        full,
                        value: -0.0,
                    },
                    &[p2],
                )
                .unwrap();
            b.finish(vec![padded, v2]).map_err(|e| e.to_string())
        };
        let mut r = replicate_program(&p, replicas, Some(&mut build)).unwrap();
        insert_frees(&mut r);
        verify_program(&r).unwrap();
        assert!(r.dp.unwrap().zero1);
        // Two DP collectives per replica now: grad assembly + param fold.
        let dp_colls = r
            .actors
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Collective {
                        axis: CollectiveAxis::Dp,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(dp_colls, 2 * replicas);
        // The param fold writes the parameter buffer itself.
        assert!(r.actors.iter().flatten().any(|i| matches!(
            i,
            Instr::Collective {
                axis: CollectiveAxis::Dp,
                dst,
                ..
            } if *dst == pbuf
        )));
        // State placements shrank to first-dim slice shapes that tile
        // the full dim.
        let state_lens: Vec<usize> = r
            .placements
            .iter()
            .filter(|pl| matches!(pl.source, InputSource::State { .. }))
            .map(|pl| pl.shape.dim(0))
            .collect();
        assert_eq!(state_lens.iter().sum::<usize>(), full);
    }

    #[test]
    fn zero1_composes_with_tp() {
        // The lifted restriction: first-dim state sharding is uniform
        // across TP ranks (TP never splits dim 0), so ZeRO-1 now lowers
        // under tp > 1 and the program verifies.
        let p = with_update(two_stage_program());
        let shape = p
            .placements
            .iter()
            .find(|pl| matches!(pl.source, InputSource::Param(0)))
            .unwrap()
            .shape
            .clone();
        let mesh = raxpp_mesh::Mesh::new(&[("model", 2)]).unwrap();
        let sharded = crate::shard::shard_program(&p, &mesh, "model").unwrap();
        let full = shape.dim(0);
        let mut build = |_param: usize, start: usize, len: usize| -> Result<Jaxpr, String> {
            let mut b = GraphBuilder::new();
            let pv = b.input(shape.clone());
            let gv = b.input(shape.clone());
            let ps = b.emit(Prim::SliceFirst { start, len }, &[pv]).unwrap();
            let gs = b.emit(Prim::SliceFirst { start, len }, &[gv]).unwrap();
            let step = b.emit(Prim::Scale(0.1), &[gs]).unwrap();
            let p2 = b.emit(Prim::Sub, &[ps, step]).unwrap();
            let padded = b
                .emit(
                    Prim::PadFirst {
                        start,
                        full,
                        value: -0.0,
                    },
                    &[p2],
                )
                .unwrap();
            b.finish(vec![padded]).map_err(|e| e.to_string())
        };
        let mut r = replicate_program(&sharded, 2, Some(&mut build)).unwrap();
        insert_frees(&mut r);
        verify_program(&r).unwrap();
        assert!(r.dp.unwrap().zero1);
        // Grad assembly + param fold on every TP rank of every replica.
        let dp_colls = r
            .actors
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Collective {
                        axis: CollectiveAxis::Dp,
                        ..
                    }
                )
            })
            .count();
        assert!(dp_colls > 0 && dp_colls % 2 == 0);
        // The extended replicated table covers the new ZeRO-1 jaxprs.
        let tp = r.tp.as_ref().unwrap();
        assert_eq!(tp.replicated.len(), r.jaxprs.len());
    }

    #[test]
    fn composes_with_tp_sharding() {
        let p = with_update(two_stage_program());
        let mesh = raxpp_mesh::Mesh::new(&[("model", 2)]).unwrap();
        let sharded = crate::shard::shard_program(&p, &mesh, "model").unwrap();
        let mut r = replicate_program(&sharded, 2, None).unwrap();
        assert_eq!(r.n_actors(), p.n_actors() * 2 * 2);
        insert_frees(&mut r);
        verify_program(&r).unwrap();
        // Both axes present: TP collectives within replicas, DP
        // collectives across them.
        let (mut tp_colls, mut dp_colls) = (0, 0);
        for i in r.actors.iter().flatten() {
            if let Instr::Collective { axis, group, .. } = i {
                match axis {
                    CollectiveAxis::Tp => {
                        tp_colls += 1;
                        // TP groups stay within one replica block.
                        let base = r.dp.unwrap().base_actors;
                        assert!(group.iter().all(|&m| m / base == group[0] / base));
                    }
                    CollectiveAxis::Dp => {
                        dp_colls += 1;
                        // DP groups span replicas, one member each.
                        let base = r.dp.unwrap().base_actors;
                        let reps: Vec<usize> = group.iter().map(|&m| m / base).collect();
                        assert_eq!(reps, vec![0, 1]);
                    }
                }
            }
        }
        assert!(tp_colls > 0);
        assert!(dp_colls > 0);
        // The extended replicated table covers the new mask jaxprs.
        let tp = r.tp.as_ref().unwrap();
        assert_eq!(tp.replicated.len(), r.jaxprs.len());
    }

    #[test]
    fn replica_fold_through_replace_program_keeps_groups() {
        // The lifted-restriction path: fold host 1 onto host 0 in both
        // replicas of a dp=2 program and check the DP groups remap
        // rank-preservingly.
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        let n = p.n_actors();
        // Hosts: {0,1} per replica; fold 1 -> 0 uniformly.
        let mut assign: Vec<usize> = (0..2 * n).collect();
        assign[1] = 0;
        assign[n + 1] = n;
        let folded = crate::replace::replace_program(&r, &assign).unwrap();
        verify_program(&folded).unwrap();
        for i in folded.actors.iter().flatten() {
            if let Instr::Collective { group, .. } = i {
                assert!(group.windows(2).all(|w| w[0] < w[1]));
            }
        }
        assert_eq!(p.count_runs(|_| true) * 2, folded.count_runs(|_| true));
    }

    #[test]
    fn non_uniform_fold_rejected() {
        // Folding only one replica's host breaks the DP group.
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        let n = p.n_actors();
        let mut assign: Vec<usize> = (0..2 * n).collect();
        let owner = p
            .actors
            .iter()
            .position(|s| {
                s.iter().any(|i| {
                    matches!(
                        i,
                        Instr::Run {
                            label: TaskLabel::Update { .. },
                            ..
                        }
                    )
                })
            })
            .unwrap();
        // Fold replica 1's copy of the update owner onto replica 1's
        // other host, but leave replica 0 intact: the group folds
        // non-uniformly.
        let other = if owner == 0 { 1 } else { 0 };
        assign[n + owner] = n + other;
        assert!(matches!(
            crate::replace::replace_program(&r, &assign),
            Err(crate::replace::ReplaceError::Unsupported(_))
        ));
    }

    #[test]
    fn narrow_params_get_grad_sums_but_skip_zero1() {
        // Under batch sharding every updated parameter needs its
        // gradient summed — replicas hold different gradients whatever
        // the shape — but a parameter with first dim < replicas cannot
        // be state-sharded, so the ZeRO-1 builder is never invoked for
        // it and its update stays full-shape.
        let ctx = TraceCtx::new();
        let w = ctx.input([2, 4]); // dim 0 = 2 < 4 replicas
        let x = ctx.input([4, 2]);
        let y = x.matmul(&w).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 1).unwrap();
        let p = with_update(
            unroll_loop(
                &model,
                &gpipe(1, 2).unwrap(),
                UnrollOptions {
                    loop_commuting: true,
                },
            )
            .unwrap()
            .program,
        );
        let mut build = |_: usize, _: usize, _: usize| -> Result<Jaxpr, String> {
            Err("ZeRO-1 builder must not run for narrow params".into())
        };
        let r = replicate_program(&p, 4, Some(&mut build)).unwrap();
        let dp_colls = r
            .actors
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Collective {
                        axis: CollectiveAxis::Dp,
                        ..
                    }
                )
            })
            .count();
        // One gradient all-reduce per replica, no param fold.
        assert_eq!(dp_colls, 4);
        assert_eq!(r.count_runs(|l| matches!(l, TaskLabel::Update { .. })), 4);
    }

    #[test]
    fn fetch_and_placement_sources_survive() {
        let p = with_update(two_stage_program());
        let r = replicate_program(&p, 2, None).unwrap();
        let n_mub = 2; // gpipe(2, 2)
        for (q, rep) in r.placements.chunks(p.placements.len()).zip([0usize, 1]) {
            for (np, op) in q.iter().zip(&p.placements) {
                assert_eq!(np.buf, op.buf);
                assert_eq!(np.actor, rep * p.n_actors() + op.actor);
                // Param/state sources survive verbatim; data sources are
                // shifted to the replica's global microbatch range.
                match (np.source, op.source) {
                    (
                        InputSource::Data { input, mubatch },
                        InputSource::Data {
                            input: oi,
                            mubatch: om,
                        },
                    ) => {
                        assert_eq!(input, oi);
                        assert_eq!(mubatch, rep * n_mub + om);
                    }
                    (ns, os) => assert_eq!(ns, os),
                }
            }
        }
    }
}
