//! Tensor-parallel shard lowering: expanding each host actor of a fused
//! MPMD program into `tp` rank actors whose streams are linked by
//! [`Instr::Collective`] instructions (paper §2.1 composed with §4).
//!
//! The pass keeps a strong *replicated-buffer invariant*: every buffer
//! visible at the program level (placements, sends, fetches, parameter
//! and optimizer-state buffers) holds bitwise-identical values on all
//! `tp` ranks of a host. Sharding exists only *inside* a `Run`'s jaxpr:
//! a mini-partitioner marks intermediate variables as block-sharded
//! along their last axis, per-rank jaxpr variants compute just their own
//! block, and every sharded jaxpr *output* is reassembled right after
//! the `Run` by a collective:
//!
//! - forward outputs are emitted as blocks and concatenated with
//!   [`CollectiveKind::AllGather`] (concatenation is exact);
//! - backward / weight-gradient outputs are padded to full size with
//!   `-0.0` ([`raxpp_ir::Prim::PadLast`]) and summed with
//!   [`CollectiveKind::AllReduce`] — because `x + (-0.0) == x` bitwise
//!   for every `x`, the rank-ascending sum of disjoint-support padded
//!   blocks is bitwise-identical to the unsharded tensor.
//!
//! Together with full-contraction block matmuls (each output element is
//! computed by exactly one rank with the same scalar program as the
//! unsharded run) this makes `tp > 1` executions bitwise-identical to
//! `tp = 1`, which is the contract `docs/parallelism.md` documents and
//! `tests/tensor_parallel.rs` enforces.

use std::collections::HashMap;

use raxpp_ir::{GraphBuilder, IrError, Jaxpr, Prim, VarId};
use raxpp_mesh::{Mesh, MeshError};

use crate::program::{
    ActorId, BufferId, CollectiveAxis, CollectiveKind, Fetch, InputPlacement, Instr, JaxprId,
    MpmdProgram, TaskLabel, TpMeta,
};

/// Error raised by [`shard_program`].
#[derive(Debug)]
pub enum ShardError {
    /// The tensor-parallel mesh axis is unknown.
    BadAxis(String),
    /// The input program already contains collectives (double sharding).
    AlreadySharded,
    /// Building a per-rank jaxpr variant failed (a partitioner bug).
    Ir(IrError),
    /// A mesh query failed.
    Mesh(MeshError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::BadAxis(msg) => write!(f, "bad tensor-parallel axis: {msg}"),
            ShardError::AlreadySharded => {
                write!(
                    f,
                    "program already contains collectives; cannot shard twice"
                )
            }
            ShardError::Ir(e) => write!(f, "shard codegen failed: {e}"),
            ShardError::Mesh(e) => write!(f, "mesh error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<IrError> for ShardError {
    fn from(e: IrError) -> Self {
        ShardError::Ir(e)
    }
}

impl From<MeshError> for ShardError {
    fn from(e: MeshError) -> Self {
        ShardError::Mesh(e)
    }
}

/// Per-variable partitioning decided by the mini-partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Part {
    /// Replicated: every rank holds the full tensor.
    Full,
    /// Block-sharded along the last axis into `tp` equal blocks; rank
    /// `r` holds block `r`.
    Sharded,
}

/// How sharded outputs of a jaxpr are reassembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Output the local block; reassemble by all-gather (forward tasks).
    Gather,
    /// Output the `-0.0`-padded full tensor; reassemble by all-reduce
    /// (backward and gradient tasks).
    Reduce,
}

/// Reassembly required for one jaxpr outvar: `None` for replicated
/// outputs, otherwise the collective kind and concat/split axis.
type OutSpec = Option<(CollectiveKind, usize)>;

/// One jaxpr after sharding: either shared verbatim by all ranks (no
/// shardable computation found) or one variant per rank.
enum Lowered {
    Shared(JaxprId),
    PerRank {
        variants: Vec<JaxprId>,
        outs: Vec<OutSpec>,
    },
}

fn is_elementwise_unary(p: &Prim) -> bool {
    matches!(
        p,
        Prim::Neg
            | Prim::Scale(_)
            | Prim::AddScalar(_)
            | Prim::Relu
            | Prim::Gelu
            | Prim::Tanh
            | Prim::Exp
            | Prim::Log
            | Prim::Sqrt
            | Prim::Rsqrt
            | Prim::Step
            | Prim::GeluGrad
            | Prim::PipelineYield { .. }
    )
}

fn is_elementwise_binary(p: &Prim) -> bool {
    matches!(p, Prim::Add | Prim::Sub | Prim::Mul | Prim::Div)
}

/// Decides a last-axis block partitioning for every variable of `j`.
///
/// Sharding is introduced only by 2-D matmuls whose rhs last dimension
/// divides by `t` (the output element then depends on a *full*
/// contraction, so block results are bitwise-identical to the unsharded
/// ones) and propagated through elementwise primitives. Any variable
/// consumed by a primitive that cannot operate blockwise is *poisoned*
/// back to `Full` and the analysis re-runs to a fixed point — there are
/// never mid-graph gathers, so one fused `Run` stays one fused `Run`.
fn analyze(j: &Jaxpr, t: usize) -> Vec<Part> {
    let nv = j.num_vars();
    let mut forced = vec![false; nv];
    loop {
        let mut part = vec![Part::Full; nv];
        let mut poison: Vec<VarId> = Vec::new();
        for eqn in j.eqns() {
            let out_forced = forced[eqn.output.index()];
            let poison_sharded_inputs = |poison: &mut Vec<VarId>| {
                for &i in &eqn.inputs {
                    if part[i.index()] == Part::Sharded {
                        poison.push(i);
                    }
                }
            };
            let p = match &eqn.prim {
                Prim::MatMul => {
                    let a = eqn.inputs[0];
                    let b = eqn.inputs[1];
                    if part[a.index()] == Part::Sharded {
                        // A sharded lhs would shard the contraction
                        // dimension (partial sums — not exact).
                        poison.push(a);
                        if part[b.index()] == Part::Sharded && out_forced {
                            poison.push(b);
                        }
                        Part::Full
                    } else if part[b.index()] == Part::Sharded {
                        if out_forced {
                            poison.push(b);
                            Part::Full
                        } else {
                            Part::Sharded
                        }
                    } else if !out_forced && j.shape(b).dim(1).is_multiple_of(t) {
                        Part::Sharded
                    } else {
                        Part::Full
                    }
                }
                p if is_elementwise_binary(p) => {
                    let any = eqn.inputs.iter().any(|&i| part[i.index()] == Part::Sharded);
                    if any && out_forced {
                        poison_sharded_inputs(&mut poison);
                        Part::Full
                    } else if any {
                        Part::Sharded
                    } else {
                        Part::Full
                    }
                }
                p if is_elementwise_unary(p) => {
                    let sharded = part[eqn.inputs[0].index()] == Part::Sharded;
                    if sharded && out_forced {
                        poison.push(eqn.inputs[0]);
                        Part::Full
                    } else if sharded {
                        Part::Sharded
                    } else {
                        Part::Full
                    }
                }
                // Reductions, reshapes, transposes, broadcasts, batched
                // matmuls, … need the full tensor.
                _ => {
                    poison_sharded_inputs(&mut poison);
                    Part::Full
                }
            };
            part[eqn.output.index()] = p;
        }
        if poison.is_empty() {
            return part;
        }
        for v in poison {
            forced[v.index()] = true;
        }
    }
}

/// Generates rank `r`'s variant of `j` under `part`, returning the
/// variant plus the reassembly spec of each outvar.
fn shard_jaxpr(
    j: &Jaxpr,
    part: &[Part],
    t: usize,
    r: usize,
    mode: Mode,
) -> Result<(Jaxpr, Vec<OutSpec>), ShardError> {
    let mut b = GraphBuilder::new();
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    // Cache of block slices of replicated variables, per source var.
    let mut sliced: HashMap<VarId, VarId> = HashMap::new();
    for &v in j.invars() {
        map.insert(v, b.input(j.shape(v).clone()));
    }
    // Realizes `v` as rank `r`'s block, slicing replicated tensors.
    let slice_block = |b: &mut GraphBuilder,
                       map: &HashMap<VarId, VarId>,
                       sliced: &mut HashMap<VarId, VarId>,
                       v: VarId|
     -> Result<VarId, ShardError> {
        if part[v.index()] == Part::Sharded {
            return Ok(map[&v]);
        }
        if let Some(&s) = sliced.get(&v) {
            return Ok(s);
        }
        let shape = j.shape(v);
        let last = shape.dim(shape.rank() - 1);
        let blk = last / t;
        let s = b.emit(
            Prim::SliceLast {
                start: r * blk,
                len: blk,
            },
            &[map[&v]],
        )?;
        sliced.insert(v, s);
        Ok(s)
    };
    for eqn in j.eqns() {
        let out = match part[eqn.output.index()] {
            Part::Full => {
                let inputs: Vec<VarId> = eqn.inputs.iter().map(|v| map[v]).collect();
                b.emit(eqn.prim.clone(), &inputs)?
            }
            Part::Sharded => match &eqn.prim {
                Prim::MatMul => {
                    let lhs = map[&eqn.inputs[0]];
                    let rhs = slice_block(&mut b, &map, &mut sliced, eqn.inputs[1])?;
                    b.emit(Prim::MatMul, &[lhs, rhs])?
                }
                p => {
                    let inputs: Vec<VarId> = eqn
                        .inputs
                        .iter()
                        .map(|&v| slice_block(&mut b, &map, &mut sliced, v))
                        .collect::<Result<_, _>>()?;
                    b.emit(p.clone(), &inputs)?
                }
            },
        };
        map.insert(eqn.output, out);
    }
    let mut outs = Vec::with_capacity(j.outvars().len());
    let mut specs = Vec::with_capacity(j.outvars().len());
    for &ov in j.outvars() {
        match part[ov.index()] {
            Part::Full => {
                outs.push(map[&ov]);
                specs.push(None);
            }
            Part::Sharded => {
                let shape = j.shape(ov);
                let dim = shape.rank() - 1;
                match mode {
                    Mode::Gather => {
                        outs.push(map[&ov]);
                        specs.push(Some((CollectiveKind::AllGather, dim)));
                    }
                    Mode::Reduce => {
                        let full = shape.dim(dim);
                        let blk = full / t;
                        let padded = b.emit(
                            Prim::PadLast {
                                start: r * blk,
                                full,
                                value: -0.0,
                            },
                            &[map[&ov]],
                        )?;
                        outs.push(padded);
                        specs.push(Some((CollectiveKind::AllReduce, dim)));
                    }
                }
            }
        }
    }
    Ok((b.finish(outs)?, specs))
}

/// Lowers `program` onto a tensor-parallel mesh axis: every host actor
/// `a` becomes `t = mesh.axis_size(axis)` rank actors `a*t .. a*t+t-1`,
/// each running a per-rank shard of `a`'s stream linked by
/// [`Instr::Collective`] ring collectives. `degree == 1` returns the
/// program unchanged.
///
/// Sends and receives are remapped rank-to-rank (`to*t + r`), which is
/// sound because of the replicated-buffer invariant documented at the
/// module level. Placements are duplicated onto every rank; fetches are
/// remapped to rank 0, whose buffers are bitwise-identical to every
/// other rank's (and to the `tp = 1` run's).
///
/// # Errors
///
/// Returns [`ShardError::BadAxis`] if `axis` is not a mesh axis,
/// [`ShardError::AlreadySharded`] if `program` already contains
/// collectives, and [`ShardError::Ir`] if per-rank codegen fails.
pub fn shard_program(
    program: &MpmdProgram,
    mesh: &Mesh,
    axis: &str,
) -> Result<MpmdProgram, ShardError> {
    let t = mesh
        .axis_size(axis)
        .ok_or_else(|| ShardError::BadAxis(format!("mesh {mesh} has no axis {axis:?}")))?;
    if t == 1 {
        return Ok(program.clone());
    }
    if program
        .actors
        .iter()
        .flatten()
        .any(|i| matches!(i, Instr::Collective { .. }))
    {
        return Err(ShardError::AlreadySharded);
    }

    // Reassembly mode per jaxpr: gather only for jaxprs used exclusively
    // by forward tasks (padding + all-reduce would also be correct, but
    // gathering blocks moves `t`× less data into the pad).
    let mut modes: Vec<Option<Mode>> = vec![None; program.jaxprs.len()];
    for instr in program.actors.iter().flatten() {
        if let Instr::Run { jaxpr, label, .. } = instr {
            let m = if matches!(label, TaskLabel::Fwd { .. }) {
                Mode::Gather
            } else {
                Mode::Reduce
            };
            let slot = &mut modes[jaxpr.0 as usize];
            *slot = match *slot {
                None => Some(m),
                Some(Mode::Gather) if m == Mode::Gather => Some(Mode::Gather),
                // Mixed forward/backward use: all-reduce reassembly is
                // correct for both.
                Some(_) => Some(Mode::Reduce),
            };
        }
    }

    let mut out = MpmdProgram::default();
    let mut lowered: Vec<Lowered> = Vec::with_capacity(program.jaxprs.len());
    for (jid, j) in program.jaxprs.iter().enumerate() {
        let part = analyze(j, t);
        let any_sharded = part.contains(&Part::Sharded);
        let mode = modes[jid].unwrap_or(Mode::Reduce);
        if !any_sharded || modes[jid].is_none() {
            lowered.push(Lowered::Shared(out.add_jaxpr(j.clone())));
            continue;
        }
        let mut variants = Vec::with_capacity(t);
        let mut outs = Vec::new();
        for r in 0..t {
            let (variant, specs) = shard_jaxpr(j, &part, t, r, mode)?;
            variants.push(out.add_jaxpr(variant));
            outs = specs;
        }
        lowered.push(Lowered::PerRank { variants, outs });
    }

    // Fresh wire ids start above every id the program mentions.
    let mut next_wire = fresh_buffer_floor(program);
    let mut fresh = || {
        let b = BufferId(next_wire);
        next_wire += 1;
        b
    };

    out.actors = vec![Vec::new(); program.n_actors() * t];
    for (a, stream) in program.actors.iter().enumerate() {
        for instr in stream {
            match instr {
                Instr::Run {
                    jaxpr,
                    inputs,
                    outputs,
                    label,
                } => match &lowered[jaxpr.0 as usize] {
                    Lowered::Shared(nj) => {
                        for r in 0..t {
                            out.actors[a * t + r].push(Instr::Run {
                                jaxpr: *nj,
                                inputs: inputs.clone(),
                                outputs: outputs.clone(),
                                label: *label,
                            });
                        }
                    }
                    Lowered::PerRank { variants, outs } => {
                        let group: Vec<ActorId> = (0..t).map(|r| a * t + r).collect();
                        // One wire set per sharded output, shared by all
                        // ranks of this instruction instance.
                        let wire_sets: Vec<Option<Vec<BufferId>>> = outs
                            .iter()
                            .map(|s| s.as_ref().map(|_| (0..t).map(|_| fresh()).collect()))
                            .collect();
                        for r in 0..t {
                            let run_outs: Vec<BufferId> = outputs
                                .iter()
                                .zip(&wire_sets)
                                .map(|(orig, w)| match w {
                                    Some(ws) => ws[r],
                                    None => *orig,
                                })
                                .collect();
                            out.actors[a * t + r].push(Instr::Run {
                                jaxpr: variants[r],
                                inputs: inputs.clone(),
                                outputs: run_outs,
                                label: *label,
                            });
                            for (o, (spec, wires)) in outs.iter().zip(&wire_sets).enumerate() {
                                if let (Some((kind, dim)), Some(wires)) = (spec, wires) {
                                    out.actors[a * t + r].push(Instr::Collective {
                                        kind: *kind,
                                        dst: outputs[o],
                                        src: wires[r],
                                        group: group.clone(),
                                        wires: wires.clone(),
                                        dim: *dim,
                                        axis: CollectiveAxis::Tp,
                                    });
                                }
                            }
                        }
                    }
                },
                Instr::Send { buf, to } => {
                    for r in 0..t {
                        out.actors[a * t + r].push(Instr::Send {
                            buf: *buf,
                            to: to * t + r,
                        });
                    }
                }
                Instr::Recv {
                    buf,
                    src,
                    from,
                    shape,
                } => {
                    for r in 0..t {
                        out.actors[a * t + r].push(Instr::Recv {
                            buf: *buf,
                            src: *src,
                            from: from * t + r,
                            shape: shape.clone(),
                        });
                    }
                }
                Instr::Copy { dst, src } => {
                    for r in 0..t {
                        out.actors[a * t + r].push(Instr::Copy {
                            dst: *dst,
                            src: *src,
                        });
                    }
                }
                Instr::Free { buf } => {
                    for r in 0..t {
                        out.actors[a * t + r].push(Instr::Free { buf: *buf });
                    }
                }
                Instr::Collective { .. } => unreachable!("checked above"),
            }
        }
    }

    for p in &program.placements {
        for r in 0..t {
            out.placements.push(InputPlacement {
                buf: p.buf,
                actor: p.actor * t + r,
                shape: p.shape.clone(),
                source: p.source,
            });
        }
    }
    for f in &program.fetches {
        out.fetches.push(Fetch {
            buf: f.buf,
            actor: f.actor * t,
            role: f.role,
        });
    }
    // Record the tensor-parallel structure for the runtime's shard-lane
    // execution: which jaxprs are replicated verbatim across ranks (one
    // lane may execute them on behalf of its host), and that every
    // all-reduce this pass emits sums disjoint -0.0-padded blocks (the
    // lane rendezvous may assemble blocks instead of folding).
    let mut replicated = vec![false; out.jaxprs.len()];
    for l in &lowered {
        if let Lowered::Shared(nj) = l {
            replicated[nj.0 as usize] = true;
        }
    }
    out.tp = Some(TpMeta {
        degree: t,
        replicated,
        disjoint_reduce: true,
    });
    debug_assert!(lane_streams_aligned(&out, t));
    Ok(out)
}

/// Checks the lane-alignment invariant [`TpMeta`] documents: all `t`
/// rank streams of a host actor have the same length and the same
/// instruction kind at every index.
fn lane_streams_aligned(program: &MpmdProgram, t: usize) -> bool {
    let kind = |i: &Instr| match i {
        Instr::Run { .. } => 0u8,
        Instr::Send { .. } => 1,
        Instr::Recv { .. } => 2,
        Instr::Copy { .. } => 3,
        Instr::Free { .. } => 4,
        Instr::Collective { .. } => 5,
    };
    program.actors.chunks(t).all(|ranks| {
        ranks.windows(2).all(|w| {
            w[0].len() == w[1].len() && w[0].iter().zip(&w[1]).all(|(x, y)| kind(x) == kind(y))
        })
    })
}

/// Coalesces back-to-back collectives into contiguous *buckets* by
/// sliding the `Free` instructions `insert_frees` interleaves between a
/// `Run` and its reassembly collectives (and between the collectives of
/// consecutive sharded `Run`s) past the collective block they interrupt.
///
/// After the pass, every maximal run of `Collective` instructions in a
/// stream is a bucket the runtime executes with a *single* lane
/// rendezvous (one barrier and one combine round for the whole bucket)
/// instead of one serialized ring walk per tensor — the per-message
/// overhead amortizes over the bucket. Delaying a `Free` past a
/// collective is always sound for liveness (the buffer simply stays
/// resident a few instructions longer); the pass still refuses to move
/// a `Free` across a collective that mentions the freed id (a freed
/// wire id could in principle be redefined as a collective `dst`).
///
/// Call after [`crate::unroll::insert_frees`]. Streams stay lane-aligned
/// (the decision depends only on instruction kinds and ids, which are
/// symmetric across ranks), and no-op for programs without collectives.
pub fn bucket_collectives(program: &mut MpmdProgram) {
    for stream in &mut program.actors {
        let mut i = 0;
        while i < stream.len() {
            if !matches!(stream[i], Instr::Collective { .. }) {
                i += 1;
                continue;
            }
            // Extend the bucket over [i, j), hoisting safe Frees out.
            let mut deferred: Vec<Instr> = Vec::new();
            let mut j = i;
            while j < stream.len() {
                match &stream[j] {
                    Instr::Collective { .. } => j += 1,
                    Instr::Free { buf } => {
                        // Safe to defer unless a later collective in the
                        // bucket mentions this id.
                        let mentioned = stream[j + 1..]
                            .iter()
                            .take_while(|n| {
                                matches!(n, Instr::Collective { .. } | Instr::Free { .. })
                            })
                            .any(|n| match n {
                                Instr::Collective {
                                    dst, src, wires, ..
                                } => dst == buf || src == buf || wires.contains(buf),
                                _ => false,
                            });
                        if mentioned {
                            break;
                        }
                        deferred.push(stream.remove(j));
                    }
                    _ => break,
                }
            }
            // Reinsert the deferred frees right after the bucket.
            for (k, f) in deferred.into_iter().enumerate() {
                stream.insert(j + k, f);
            }
            i = j;
        }
    }
}

/// The smallest buffer id strictly above every id `program` mentions —
/// the floor for freshly-allocated collective wire ids (shared with
/// `replicate_program`, which allocates its DP wires the same way).
pub(crate) fn fresh_buffer_floor(program: &MpmdProgram) -> u32 {
    let mut max = 0u32;
    let mut see = |b: &BufferId| max = max.max(b.0 + 1);
    for instr in program.actors.iter().flatten() {
        match instr {
            Instr::Run {
                inputs, outputs, ..
            } => {
                inputs.iter().for_each(&mut see);
                outputs.iter().for_each(&mut see);
            }
            Instr::Send { buf, .. } | Instr::Free { buf } => see(buf),
            Instr::Recv { buf, src, .. } => {
                see(buf);
                see(src);
            }
            Instr::Copy { dst, src } => {
                see(dst);
                see(src);
            }
            Instr::Collective {
                dst, src, wires, ..
            } => {
                see(dst);
                see(src);
                wires.iter().for_each(&mut see);
            }
        }
    }
    for p in &program.placements {
        see(&p.buf);
    }
    for f in &program.fetches {
        see(&f.buf);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::unroll::{insert_frees, unroll_loop, UnrollOptions};
    use crate::verify::verify_program;
    use raxpp_ir::TraceCtx;
    use raxpp_sched::gpipe;

    fn two_stage_program() -> MpmdProgram {
        let ctx = TraceCtx::new();
        let w1 = ctx.input([8, 8]);
        let w2 = ctx.input([8, 8]);
        let x = ctx.input([4, 8]);
        let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 2).unwrap();
        unroll_loop(
            &model,
            &gpipe(2, 2).unwrap(),
            UnrollOptions {
                loop_commuting: true,
            },
        )
        .unwrap()
        .program
    }

    fn tp_mesh(t: usize) -> Mesh {
        Mesh::new(&[("model", t)]).unwrap()
    }

    #[test]
    fn degree_one_is_identity() {
        let p = two_stage_program();
        let s = shard_program(&p, &tp_mesh(1), "model").unwrap();
        assert_eq!(s.n_actors(), p.n_actors());
        assert_eq!(s.num_instrs(), p.num_instrs());
    }

    #[test]
    fn unknown_axis_rejected() {
        let p = two_stage_program();
        assert!(matches!(
            shard_program(&p, &tp_mesh(2), "nope"),
            Err(ShardError::BadAxis(_))
        ));
    }

    #[test]
    fn double_sharding_rejected() {
        let p = two_stage_program();
        let s = shard_program(&p, &tp_mesh(2), "model").unwrap();
        assert!(matches!(
            shard_program(&s, &tp_mesh(2), "model"),
            Err(ShardError::AlreadySharded)
        ));
    }

    #[test]
    fn sharded_program_verifies_and_has_collectives() {
        let p = two_stage_program();
        for t in [2, 4] {
            let mut s = shard_program(&p, &tp_mesh(t), "model").unwrap();
            assert_eq!(s.n_actors(), p.n_actors() * t);
            insert_frees(&mut s);
            verify_program(&s).unwrap();
            let n_coll = s
                .actors
                .iter()
                .flatten()
                .filter(|i| matches!(i, Instr::Collective { .. }))
                .count();
            // Every rank of every sharded run participates.
            assert!(n_coll > 0, "expected collectives in\n{}", s.dump());
            assert!(n_coll.is_multiple_of(t));
        }
    }

    #[test]
    fn fetches_on_rank_zero_placements_on_all() {
        let p = two_stage_program();
        let t = 2;
        let s = shard_program(&p, &tp_mesh(t), "model").unwrap();
        assert_eq!(s.placements.len(), p.placements.len() * t);
        assert_eq!(s.fetches.len(), p.fetches.len());
        for (f, orig) in s.fetches.iter().zip(&p.fetches) {
            assert_eq!(f.actor, orig.actor * t);
        }
    }

    #[test]
    fn analysis_poisons_reductions() {
        // y = sum(x @ w): the reduce forces the matmul output full, so
        // nothing stays sharded.
        let mut b = GraphBuilder::new();
        let x = b.input([4, 8]);
        let w = b.input([8, 8]);
        let h = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let s = b
            .emit(
                Prim::ReduceSum {
                    axes: vec![0, 1],
                    keepdims: false,
                },
                &[h],
            )
            .unwrap();
        let j = b.finish(vec![s]).unwrap();
        let part = analyze(&j, 2);
        assert!(part.iter().all(|p| *p == Part::Full));
    }

    #[test]
    fn analysis_shards_matmul_chain() {
        // y = tanh(x @ w) stays sharded to the output.
        let mut b = GraphBuilder::new();
        let x = b.input([4, 8]);
        let w = b.input([8, 8]);
        let h = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let y = b.emit(Prim::Tanh, &[h]).unwrap();
        let j = b.finish(vec![y]).unwrap();
        let part = analyze(&j, 2);
        assert_eq!(part[j.outvars()[0].index()], Part::Sharded);
    }
}
