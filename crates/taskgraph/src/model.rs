//! Per-stage linearization: turning a [`StagedForward`] into forward and
//! backward task graphs for every stage.
//!
//! The forward graph of each stage is augmented to also output the
//! *residuals* its backward needs (saved activations); the backward graph
//! consumes residuals plus output cotangents and produces parameter
//! gradients and input cotangents. Forward and backward of a stage are
//! colocated on the same actor by the schedule (paper §3.3), so residuals
//! never cross actors.

use raxpp_ir::{linearize, optimize, IrError, Jaxpr, Result, Shape};

use crate::stage::{partition_stages, StageInput, StagedForward};

/// Meaning of one backward-graph output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwdOut {
    /// Partial gradient of global parameter `param` (one microbatch's
    /// contribution from this stage).
    ParamGrad {
        /// Index of the parameter among the traced function's inputs.
        param: usize,
    },
    /// Cotangent of a cross-stage input, to be routed to the producing
    /// stage's backward.
    InputCotangent {
        /// The producing stage.
        stage: usize,
        /// Index into the producing stage's output list.
        index: usize,
    },
}

/// A fully differentiated, stage-partitioned model: everything the loop
/// unroller needs to schedule forward and backward tasks.
#[derive(Debug, Clone)]
pub struct PipelinedModel {
    /// Stage structure and provenance metadata.
    pub staged: StagedForward,
    /// Augmented forward graph per stage: outputs are the stage's primal
    /// outputs followed by its residuals.
    pub fwd: Vec<Jaxpr>,
    /// Backward graph per stage: inputs are residuals followed by one
    /// cotangent per primal output; outputs per [`BwdOut`].
    pub bwd: Vec<Jaxpr>,
    /// Meaning of each backward output, per stage.
    pub bwd_outputs: Vec<Vec<BwdOut>>,
    /// Activation-gradient half of the backward (input cotangents only),
    /// for split-backward (zero-bubble) schedules. Same inputs as
    /// [`PipelinedModel::bwd`].
    pub bwd_b: Vec<Jaxpr>,
    /// Meaning of each activation-gradient output, per stage.
    pub bwd_b_outputs: Vec<Vec<BwdOut>>,
    /// Weight-gradient half of the backward (parameter gradients only),
    /// for split-backward schedules. Same inputs as
    /// [`PipelinedModel::bwd`].
    pub bwd_w: Vec<Jaxpr>,
    /// Meaning of each weight-gradient output, per stage.
    pub bwd_w_outputs: Vec<Vec<BwdOut>>,
    /// Residual count per stage.
    pub n_residuals: Vec<usize>,
    /// Primal output count per stage.
    pub n_primal: Vec<usize>,
    /// How many leading inputs of the traced function are parameters.
    pub n_params: usize,
    in_shapes: Vec<Shape>,
    out_shapes: Vec<Shape>,
}

impl PipelinedModel {
    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.fwd.len()
    }

    /// Shapes of the parameter inputs.
    pub fn param_shapes(&self) -> Vec<Shape> {
        self.in_shapes[..self.n_params].to_vec()
    }

    /// Shapes of the per-microbatch data inputs.
    pub fn data_shapes(&self) -> Vec<Shape> {
        self.in_shapes[self.n_params..].to_vec()
    }

    /// Shapes of the traced function's outputs.
    pub fn out_shapes(&self) -> &[Shape] {
        &self.out_shapes
    }
}

impl PipelinedModel {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_internal(
        staged: StagedForward,
        fwd: Vec<Jaxpr>,
        bwd: Vec<Jaxpr>,
        bwd_outputs: Vec<Vec<BwdOut>>,
        bwd_b: Vec<Jaxpr>,
        bwd_b_outputs: Vec<Vec<BwdOut>>,
        bwd_w: Vec<Jaxpr>,
        bwd_w_outputs: Vec<Vec<BwdOut>>,
        n_residuals: Vec<usize>,
        n_primal: Vec<usize>,
        n_params: usize,
        in_shapes: Vec<Shape>,
        out_shapes: Vec<Shape>,
    ) -> Self {
        PipelinedModel {
            staged,
            fwd,
            bwd,
            bwd_outputs,
            bwd_b,
            bwd_b_outputs,
            bwd_w,
            bwd_w_outputs,
            n_residuals,
            n_primal,
            n_params,
            in_shapes,
            out_shapes,
        }
    }
}

/// Builds a [`PipelinedModel`] from a traced, yield-annotated forward
/// graph.
///
/// `n_params` declares how many leading inputs are model parameters
/// (resident on actors, gradients accumulated); the remaining inputs are
/// per-microbatch data. Output 0 of the function must be the scalar loss.
///
/// # Errors
///
/// Returns [`IrError`] for invalid stage structure (see
/// [`partition_stages`]), a non-scalar loss, or `n_params` exceeding the
/// input count.
pub fn pipeline_model(jaxpr: &Jaxpr, n_params: usize) -> Result<PipelinedModel> {
    if n_params > jaxpr.invars().len() {
        return Err(IrError::Invalid(format!(
            "n_params {n_params} exceeds input count {}",
            jaxpr.invars().len()
        )));
    }
    let out_shapes = jaxpr.out_shapes();
    if out_shapes.is_empty() || !out_shapes[0].is_scalar() {
        return Err(IrError::Invalid(
            "the traced function's first output must be the scalar loss".into(),
        ));
    }
    let in_shapes = jaxpr.in_shapes();
    let staged = partition_stages(jaxpr)?;

    let mut fwd = Vec::with_capacity(staged.n_stages());
    let mut bwd = Vec::with_capacity(staged.n_stages());
    let mut bwd_outputs = Vec::with_capacity(staged.n_stages());
    let mut bwd_b = Vec::with_capacity(staged.n_stages());
    let mut bwd_b_outputs = Vec::with_capacity(staged.n_stages());
    let mut bwd_w = Vec::with_capacity(staged.n_stages());
    let mut bwd_w_outputs = Vec::with_capacity(staged.n_stages());
    let mut n_residuals = Vec::with_capacity(staged.n_stages());
    let mut n_primal = Vec::with_capacity(staged.n_stages());

    for stage in &staged.stages {
        let lin = linearize(&stage.jaxpr)?;
        // Keep only the cotangents we route somewhere: parameter
        // gradients and cross-stage input cotangents. Data-input
        // cotangents are dropped (and their computations dead-code
        // eliminated).
        let mut keep: Vec<raxpp_ir::VarId> = Vec::new();
        let mut meta: Vec<BwdOut> = Vec::new();
        for (pos, input) in stage.inputs.iter().enumerate() {
            let ct_var = lin.bwd.outvars()[pos];
            match *input {
                StageInput::Global(p) if p < n_params => {
                    keep.push(ct_var);
                    meta.push(BwdOut::ParamGrad { param: p });
                }
                StageInput::Global(_) => {}
                StageInput::CrossStage { stage: s, index } => {
                    keep.push(ct_var);
                    meta.push(BwdOut::InputCotangent { stage: s, index });
                }
            }
        }
        let mut bwd_jx = lin.bwd.with_outputs(keep.clone())?;
        bwd_jx.dce();
        // Split halves for zero-bubble schedules: B keeps only the input
        // cotangents (the critical path), W only the parameter
        // gradients. Both read the same residuals + cotangents; dead
        // code elimination trims each half to its own slice of the
        // backward computation.
        let (b_keep, b_meta): (Vec<_>, Vec<_>) = keep
            .iter()
            .zip(&meta)
            .filter(|(_, m)| matches!(m, BwdOut::InputCotangent { .. }))
            .map(|(v, m)| (*v, *m))
            .unzip();
        let (w_keep, w_meta): (Vec<_>, Vec<_>) = keep
            .iter()
            .zip(&meta)
            .filter(|(_, m)| matches!(m, BwdOut::ParamGrad { .. }))
            .map(|(v, m)| (*v, *m))
            .unzip();
        let mut b_jx = lin.bwd.with_outputs(b_keep)?;
        b_jx.dce();
        let mut w_jx = lin.bwd.with_outputs(w_keep)?;
        w_jx.dce();
        // Per-task graph optimization (CSE + constant folding), as XLA
        // would do when compiling each SPMD task.
        let (fwd_opt, _) = optimize(&lin.fwd)?;
        let (bwd_opt, _) = optimize(&bwd_jx)?;
        let (b_opt, _) = optimize(&b_jx)?;
        let (w_opt, _) = optimize(&w_jx)?;
        let (lin_fwd, bwd_jx, b_jx, w_jx) = (fwd_opt, bwd_opt, b_opt, w_opt);
        fwd.push(lin_fwd);
        bwd.push(bwd_jx);
        bwd_outputs.push(meta);
        bwd_b.push(b_jx);
        bwd_b_outputs.push(b_meta);
        bwd_w.push(w_jx);
        bwd_w_outputs.push(w_meta);
        n_residuals.push(lin.n_residuals);
        n_primal.push(lin.n_primal_outputs);
    }

    Ok(PipelinedModel::new_internal(
        staged,
        fwd,
        bwd,
        bwd_outputs,
        bwd_b,
        bwd_b_outputs,
        bwd_w,
        bwd_w_outputs,
        n_residuals,
        n_primal,
        n_params,
        in_shapes,
        out_shapes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_ir::{eval, Tensor, TraceCtx};

    fn two_stage() -> Jaxpr {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 4]);
        let w1 = ctx.input([4, 8]);
        let w2 = ctx.input([8, 2]);
        let h = x.matmul(&w1).unwrap().relu();
        let h = ctx.pipeline_yield(&h);
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        ctx.finish(&[loss]).unwrap()
    }

    #[test]
    fn builds_two_stage_model() {
        // Inputs: w1 (p0), w2 (p1)... note trace order is x, w1, w2, so
        // params must come first for n_params to make sense. Re-trace with
        // params first.
        let ctx = TraceCtx::new();
        let w1 = ctx.input([4, 8]);
        let w2 = ctx.input([8, 2]);
        let x = ctx.input([2, 4]);
        let h = x.matmul(&w1).unwrap().relu();
        let h = ctx.pipeline_yield(&h);
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();

        let m = pipeline_model(&jaxpr, 2).unwrap();
        assert_eq!(m.n_stages(), 2);
        assert_eq!(m.param_shapes().len(), 2);
        assert_eq!(m.data_shapes().len(), 1);
        // Stage 0 backward outputs: grad of w1 only (x is data).
        assert_eq!(m.bwd_outputs[0], vec![BwdOut::ParamGrad { param: 0 }]);
        // Stage 1 backward outputs: grad of w2 + cotangent for stage 0.
        assert_eq!(
            m.bwd_outputs[1],
            vec![
                BwdOut::ParamGrad { param: 1 },
                BwdOut::InputCotangent { stage: 0, index: 0 }
            ]
        );
    }

    #[test]
    fn manual_stage_backprop_matches_reference() {
        // Execute fwd/bwd stage graphs by hand and compare to whole-graph
        // autodiff.
        let ctx = TraceCtx::new();
        let w1 = ctx.input([4, 8]);
        let w2 = ctx.input([8, 2]);
        let x = ctx.input([2, 4]);
        let h = x.matmul(&w1).unwrap().relu();
        let h = ctx.pipeline_yield(&h);
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();

        let m = pipeline_model(&jaxpr, 2).unwrap();

        use raxpp_ir::rng::SeedableRng;
        let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(3);
        let w1t = Tensor::randn([4, 8], 0.5, &mut rng);
        let w2t = Tensor::randn([8, 2], 0.5, &mut rng);
        let xt = Tensor::randn([2, 4], 1.0, &mut rng);

        // Stage 0 fwd: inputs are (w1, x) — global inputs in input order.
        let f0 = eval(&m.fwd[0], &[w1t.clone(), xt.clone()]).unwrap();
        let act = f0[0].clone();
        let res0 = f0[1..].to_vec();
        // Stage 1 fwd: inputs are (w2, act).
        let f1 = eval(&m.fwd[1], &[w2t.clone(), act]).unwrap();
        let res1 = f1[1..].to_vec();

        // Stage 1 bwd: residuals + seed cotangent 1.0 for the loss.
        let mut b1_in = res1;
        b1_in.push(Tensor::scalar(1.0));
        let b1 = eval(&m.bwd[1], &b1_in).unwrap();
        let grad_w2 = b1[0].clone();
        let ct_act = b1[1].clone();

        // Stage 0 bwd: residuals + activation cotangent.
        let mut b0_in = res0;
        b0_in.push(ct_act);
        let b0 = eval(&m.bwd[0], &b0_in).unwrap();
        let grad_w1 = b0[0].clone();

        // Reference.
        let g = raxpp_ir::value_and_grad(&jaxpr, &[0, 1]).unwrap();
        let reference = eval(&g, &[w1t, w2t, xt]).unwrap();
        assert!(grad_w1.allclose(&reference[1], 1e-5), "w1 grads differ");
        assert!(grad_w2.allclose(&reference[2], 1e-5), "w2 grads differ");
    }

    #[test]
    fn rejects_bad_configs() {
        let jaxpr = two_stage();
        assert!(pipeline_model(&jaxpr, 99).is_err());
        // Non-scalar loss.
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let y = x.scale(2.0);
        let j = ctx.finish(&[y]).unwrap();
        assert!(pipeline_model(&j, 0).is_err());
    }
}
