//! `raxpp-taskgraph` — the RaxPP compiler: stage partitioning, per-stage
//! differentiation, loop unrolling with automatic send/receive inference,
//! buffer-liveness deletion, and task fusion (paper §3-§4).
//!
//! Pipeline: trace a model with `pipeline_yield` markers (`raxpp-ir`) →
//! [`partition_stages`] (§3.2-3.3) → [`pipeline_model`] (per-stage
//! autodiff) → [`unroll_loop`] over a `raxpp-sched` schedule (§4.2) →
//! optional [`shard_program`] (intra-stage tensor parallelism, lowering
//! each host actor into `tp` rank actors linked by
//! [`Instr::Collective`]) → optional [`replicate_program`] (data
//! parallelism: replica pipelines linked by DP-axis gradient
//! all-reduces, with optional ZeRO-1 state sharding) → [`insert_frees`]
//! (§4.3). The result is one
//! fused instruction stream per actor ([`MpmdProgram`], §4.4) ready for
//! the `raxpp-runtime` driver.
//!
//! Serving reuses the same pipeline through [`forward_project`]: a
//! strict projection of the unrolled program onto its forward half
//! (backward/optimizer tasks, gradient traffic, and activation
//! retention stripped), which the same shard/frees passes then finish
//! into a forward-only `MpmdProgram` (`docs/serving.md`).

#![deny(missing_docs)]

mod automark;
mod forward;
mod model;
mod program;
mod replace;
mod replicate;
mod shard;
mod stage;
mod stats;
mod unroll;
mod verify;

pub use automark::auto_mark_stages;
pub use forward::forward_project;
pub use model::{pipeline_model, BwdOut, PipelinedModel};
pub use program::{
    ActorId, BufferId, CollectiveAxis, CollectiveKind, DpMeta, Fetch, FetchRole, InputPlacement,
    InputSource, Instr, JaxprId, MpmdProgram, TaskLabel, TpMeta,
};
pub use replace::{replace_program, ReplaceError};
pub use replicate::{dp_split, dp_treated, replicate_program, ReplicateError};
pub use shard::{bucket_collectives, shard_program, ShardError};
pub use stage::{partition_stages, StageFwd, StageInput, StageOutput, StagedForward};
pub use stats::{program_stats, ProgramStats};
pub use unroll::{
    check_send_recv_order, insert_frees, unroll_loop, CompileError, CompiledLoop, UnrollOptions,
};
pub use verify::{verify_program, VerifyError};
