//! Unrolling the gradient-accumulation loop into a fused MPMD program
//! (paper §4.2-§4.4).
//!
//! The unroller walks the schedule's tasks in a global topological order
//! that respects every actor's local order (the same traversal the
//! paper's runtime uses) and, immediately after each producing task,
//! emits the matching send/receive pair — guaranteeing that sends and
//! receives between any actor pair appear in the same order on both
//! sides, the property that prevents deadlock with NCCL-style P2P
//! (paper §4.2, Figure 5).

#![allow(clippy::needless_range_loop)]

use std::collections::{HashMap, HashSet};
use std::fmt;

use raxpp_ir::{GraphBuilder, IrError, Prim, Shape};
use raxpp_sched::{Dir, Schedule, ScheduleError, Task};

use crate::model::{BwdOut, PipelinedModel};
use crate::program::{
    ActorId, BufferId, Fetch, FetchRole, InputPlacement, InputSource, Instr, JaxprId, MpmdProgram,
    TaskLabel,
};
use crate::stage::StageInput;

/// Error raised while compiling a pipeline program.
#[derive(Debug)]
pub enum CompileError {
    /// Graph-level failure.
    Ir(IrError),
    /// Schedule-level failure.
    Schedule(ScheduleError),
    /// Model and schedule disagree (stage counts, microbatch counts, …).
    Mismatch(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Ir(e) => write!(f, "{e}"),
            CompileError::Schedule(e) => write!(f, "{e}"),
            CompileError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

impl From<ScheduleError> for CompileError {
    fn from(e: ScheduleError) -> Self {
        CompileError::Schedule(e)
    }
}

/// Options controlling loop compilation.
#[derive(Debug, Clone, Copy)]
pub struct UnrollOptions {
    /// Apply the loop-commuting rewrite of paper §3.4: shared-weight
    /// partial gradients accumulate *locally* per stage and cross actors
    /// once after the loop, instead of once per microbatch. Disable only
    /// for the ablation benchmark.
    pub loop_commuting: bool,
}

impl Default for UnrollOptions {
    fn default() -> Self {
        UnrollOptions {
            loop_commuting: true,
        }
    }
}

/// The compiled gradient-accumulation loop.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// The fused program (without optimizer updates or `Free`s; callers
    /// append updates and then run [`insert_frees`]).
    pub program: MpmdProgram,
    /// Final accumulated gradient of each parameter and the actor holding
    /// it.
    pub grads: Vec<(BufferId, ActorId)>,
    /// Actors holding a copy of each parameter (more than one = shared
    /// weight).
    pub param_actors: Vec<Vec<ActorId>>,
    /// The buffer each `(param, actor)` copy lives in.
    pub param_buffers: HashMap<(usize, ActorId), BufferId>,
}

struct Ctx<'m> {
    model: &'m PipelinedModel,
    opts: UnrollOptions,
    split: bool,
    stage_actor: Vec<usize>,
    prog: MpmdProgram,
    next_buf: u32,
    fwd_ids: Vec<JaxprId>,
    bwd_ids: Vec<JaxprId>,
    bwd_w_ids: Vec<JaxprId>,
    add_cache: HashMap<Shape, JaxprId>,
    fill_cache: HashMap<(Shape, u32), JaxprId>,
    param_buf: HashMap<(usize, ActorId), BufferId>,
    data_buf: HashMap<(usize, usize), BufferId>,
    act_buf: HashMap<(usize, usize, usize), BufferId>,
    res_buf: HashMap<(usize, usize), Vec<BufferId>>,
    ct_contrib: HashMap<(usize, usize, usize), Vec<BufferId>>,
    // Split-backward mode: cotangent inputs kept for the deferred
    // weight-gradient task.
    saved_ct: HashMap<(usize, usize), Vec<BufferId>>,
    acc: HashMap<(usize, usize), BufferId>,
    sent: HashSet<(BufferId, ActorId)>,
    buf_shape: HashMap<BufferId, Shape>,
}

impl<'m> Ctx<'m> {
    fn alloc(&mut self, shape: Shape) -> BufferId {
        let b = BufferId(self.next_buf);
        self.next_buf += 1;
        self.buf_shape.insert(b, shape);
        b
    }

    fn add_jaxpr(&mut self, shape: &Shape) -> JaxprId {
        if let Some(&id) = self.add_cache.get(shape) {
            return id;
        }
        let mut b = GraphBuilder::new();
        let x = b.input(shape.clone());
        let y = b.input(shape.clone());
        let z = b.emit(Prim::Add, &[x, y]).expect("same-shape add");
        let j = b.finish(vec![z]).expect("add jaxpr");
        let id = self.prog.add_jaxpr(j);
        self.add_cache.insert(shape.clone(), id);
        id
    }

    fn fill_jaxpr(&mut self, shape: &Shape, value: f32) -> JaxprId {
        let key = (shape.clone(), value.to_bits());
        if let Some(&id) = self.fill_cache.get(&key) {
            return id;
        }
        let mut b = GraphBuilder::new();
        let v = b
            .emit(
                Prim::Fill {
                    value,
                    shape: shape.clone(),
                },
                &[],
            )
            .expect("fill");
        let j = b.finish(vec![v]).expect("fill jaxpr");
        let id = self.prog.add_jaxpr(j);
        self.fill_cache.insert(key, id);
        id
    }

    fn push(&mut self, actor: ActorId, instr: Instr) {
        self.prog.actors[actor].push(instr);
    }

    /// Sends `buf` from `from` to `to`, appending the matching receive to
    /// `to`'s stream immediately (§4.2 ordering discipline). Deduplicates
    /// repeated sends of the same buffer to the same destination.
    fn send(&mut self, buf: BufferId, from: ActorId, to: ActorId) {
        if from == to || !self.sent.insert((buf, to)) {
            return;
        }
        let shape = self.buf_shape[&buf].clone();
        self.push(from, Instr::Send { buf, to });
        self.push(
            to,
            Instr::Recv {
                buf,
                src: buf,
                from,
                shape,
            },
        );
    }

    /// Emits `dst = a + b` on `actor`.
    fn emit_add(&mut self, actor: ActorId, a: BufferId, b: BufferId, label: TaskLabel) -> BufferId {
        let shape = self.buf_shape[&a].clone();
        let jaxpr = self.add_jaxpr(&shape);
        let dst = self.alloc(shape);
        self.push(
            actor,
            Instr::Run {
                jaxpr,
                inputs: vec![a, b],
                outputs: vec![dst],
                label,
            },
        );
        dst
    }

    fn emit_fill(
        &mut self,
        actor: ActorId,
        shape: &Shape,
        value: f32,
        label: TaskLabel,
    ) -> BufferId {
        let jaxpr = self.fill_jaxpr(shape, value);
        let dst = self.alloc(shape.clone());
        self.push(
            actor,
            Instr::Run {
                jaxpr,
                inputs: vec![],
                outputs: vec![dst],
                label,
            },
        );
        dst
    }

    /// The actor owning the final gradient of `param`: the actor of the
    /// lowest stage using it (or actor 0 for unused parameters).
    fn grad_owner(&self, param: usize) -> ActorId {
        self.model.staged.invar_stages[param]
            .first()
            .map(|&s| self.stage_actor[s])
            .unwrap_or(0)
    }

    fn run_fwd(&mut self, t: Task) {
        let s = t.stage;
        let mb = t.mubatch;
        let actor = self.stage_actor[s];
        let stage = &self.model.staged.stages[s];
        let mut inputs = Vec::with_capacity(stage.inputs.len());
        for input in &stage.inputs {
            let b = match *input {
                StageInput::Global(p) if p < self.model.n_params => self.param_buf[&(p, actor)],
                StageInput::Global(i) => self.data_buf[&(i - self.model.n_params, mb)],
                StageInput::CrossStage { stage: ps, index } => self.act_buf[&(ps, index, mb)],
            };
            inputs.push(b);
        }
        let fwd = &self.model.fwd[s];
        let out_shapes = fwd.out_shapes();
        let n_primal = self.model.n_primal[s];
        let mut outputs = Vec::with_capacity(out_shapes.len());
        for (o, shape) in out_shapes.iter().enumerate() {
            let b = self.alloc(shape.clone());
            if o < n_primal {
                self.act_buf.insert((s, o, mb), b);
            }
            outputs.push(b);
        }
        self.res_buf.insert((s, mb), outputs[n_primal..].to_vec());
        let jaxpr = self.fwd_ids[s];
        self.push(
            actor,
            Instr::Run {
                jaxpr,
                inputs,
                outputs,
                label: TaskLabel::Fwd {
                    mubatch: mb,
                    stage: s,
                },
            },
        );
        // Ship activations to remote consumers right away (§4.2).
        for (o, meta) in stage.outputs.iter().enumerate() {
            let buf = self.act_buf[&(s, o, mb)];
            for &consumer in &meta.consumers {
                let dst = self.stage_actor[consumer];
                self.send(buf, actor, dst);
            }
        }
    }

    fn run_bwd(&mut self, t: Task) {
        let s = t.stage;
        let mb = t.mubatch;
        let actor = self.stage_actor[s];
        let stage = &self.model.staged.stages[s];
        let n_primal = self.model.n_primal[s];

        // Assemble one cotangent per primal output: consumer
        // contributions + the loss seed, summed on this actor.
        let mut ct_in = Vec::with_capacity(n_primal);
        for o in 0..n_primal {
            let mut contribs = self.ct_contrib.remove(&(s, o, mb)).unwrap_or_default();
            let shape = self.model.staged.stages[s].jaxpr.out_shapes()[o].clone();
            if stage.outputs[o].global_outputs.contains(&0) {
                let seed = self.emit_fill(actor, &shape, 1.0, TaskLabel::CotangentSum { stage: s });
                contribs.push(seed);
            }
            let ct = match contribs.len() {
                0 => self.emit_fill(actor, &shape, 0.0, TaskLabel::CotangentSum { stage: s }),
                1 => contribs[0],
                _ => {
                    let mut cur = contribs[0];
                    for &c in &contribs[1..] {
                        cur = self.emit_add(actor, cur, c, TaskLabel::CotangentSum { stage: s });
                    }
                    cur
                }
            };
            ct_in.push(ct);
        }

        let mut inputs = if self.split {
            // The deferred weight-gradient task reuses the residuals and
            // cotangents; keep them live until it runs.
            self.saved_ct.insert((s, mb), ct_in.clone());
            self.res_buf
                .get(&(s, mb))
                .expect("forward ran first")
                .clone()
        } else {
            self.res_buf.remove(&(s, mb)).expect("forward ran first")
        };
        inputs.extend(ct_in);

        let (bwd, jaxpr, metas) = if self.split {
            (
                &self.model.bwd_b[s],
                self.bwd_ids[s],
                self.model.bwd_b_outputs[s].clone(),
            )
        } else {
            (
                &self.model.bwd[s],
                self.bwd_ids[s],
                self.model.bwd_outputs[s].clone(),
            )
        };
        let out_shapes = bwd.out_shapes();
        let outputs: Vec<BufferId> = out_shapes.iter().map(|sh| self.alloc(sh.clone())).collect();
        self.push(
            actor,
            Instr::Run {
                jaxpr,
                inputs,
                outputs: outputs.clone(),
                label: TaskLabel::Bwd {
                    mubatch: mb,
                    stage: s,
                },
            },
        );

        // Route backward outputs.
        for (buf, meta) in outputs.into_iter().zip(metas) {
            match meta {
                BwdOut::ParamGrad { param } => {
                    if self.opts.loop_commuting {
                        // Accumulate per (param, stage) locally; cross-actor
                        // reduction happens once after the loop (§3.4).
                        self.accumulate(param, s, actor, buf);
                    } else {
                        // Naive scheme: every microbatch's partial crosses
                        // to the gradient owner immediately.
                        let owner = self.grad_owner(param);
                        self.send(buf, actor, owner);
                        self.accumulate(param, usize::MAX, owner, buf);
                    }
                }
                BwdOut::InputCotangent { stage: ps, index } => {
                    let dst = self.stage_actor[ps];
                    self.send(buf, actor, dst);
                    self.ct_contrib
                        .entry((ps, index, mb))
                        .or_default()
                        .push(buf);
                }
            }
        }
    }

    /// Deferred weight-gradient half of a split backward: consumes the
    /// residuals and saved cotangents, produces parameter gradients.
    fn run_bwd_w(&mut self, t: Task) {
        let s = t.stage;
        let mb = t.mubatch;
        let actor = self.stage_actor[s];
        let mut inputs = self.res_buf.remove(&(s, mb)).expect("forward ran first");
        inputs.extend(
            self.saved_ct
                .remove(&(s, mb))
                .expect("activation grad ran first"),
        );
        let out_shapes = self.model.bwd_w[s].out_shapes();
        let outputs: Vec<BufferId> = out_shapes.iter().map(|sh| self.alloc(sh.clone())).collect();
        self.push(
            actor,
            Instr::Run {
                jaxpr: self.bwd_w_ids[s],
                inputs,
                outputs: outputs.clone(),
                label: TaskLabel::BwdW {
                    mubatch: mb,
                    stage: s,
                },
            },
        );
        let metas = self.model.bwd_w_outputs[s].clone();
        for (buf, meta) in outputs.into_iter().zip(metas) {
            match meta {
                BwdOut::ParamGrad { param } => {
                    if self.opts.loop_commuting {
                        self.accumulate(param, s, actor, buf);
                    } else {
                        let owner = self.grad_owner(param);
                        self.send(buf, actor, owner);
                        self.accumulate(param, usize::MAX, owner, buf);
                    }
                }
                BwdOut::InputCotangent { .. } => {
                    unreachable!("weight-gradient halves produce only parameter gradients")
                }
            }
        }
    }

    fn accumulate(&mut self, param: usize, stage_key: usize, actor: ActorId, partial: BufferId) {
        match self.acc.get(&(param, stage_key)) {
            None => {
                self.acc.insert((param, stage_key), partial);
            }
            Some(&old) => {
                let new = self.emit_add(actor, old, partial, TaskLabel::AccumGrad { param });
                self.acc.insert((param, stage_key), new);
            }
        }
    }
}

/// Unrolls the gradient-accumulation loop of `model` according to
/// `schedule`, producing the fused MPMD program plus gradient/parameter
/// placement metadata.
///
/// # Errors
///
/// Returns [`CompileError::Mismatch`] when the schedule's stage count
/// differs from the model's, or propagates graph/schedule errors.
pub fn unroll_loop(
    model: &PipelinedModel,
    schedule: &Schedule,
    opts: UnrollOptions,
) -> Result<CompiledLoop, CompileError> {
    if model.n_stages() != schedule.n_stages() {
        return Err(CompileError::Mismatch(format!(
            "model has {} stages but schedule has {}",
            model.n_stages(),
            schedule.n_stages()
        )));
    }
    let n_actors = schedule.n_actors();
    let stage_actor = schedule.stage_actor();

    let mut prog = MpmdProgram {
        actors: vec![Vec::new(); n_actors],
        ..MpmdProgram::default()
    };
    let split = schedule.split_backward();
    let fwd_ids: Vec<JaxprId> = model
        .fwd
        .iter()
        .map(|j| prog.add_jaxpr(j.clone()))
        .collect();
    let bwd_ids: Vec<JaxprId> = if split {
        model
            .bwd_b
            .iter()
            .map(|j| prog.add_jaxpr(j.clone()))
            .collect()
    } else {
        model
            .bwd
            .iter()
            .map(|j| prog.add_jaxpr(j.clone()))
            .collect()
    };
    let bwd_w_ids: Vec<JaxprId> = if split {
        model
            .bwd_w
            .iter()
            .map(|j| prog.add_jaxpr(j.clone()))
            .collect()
    } else {
        Vec::new()
    };

    let mut ctx = Ctx {
        model,
        opts,
        split,
        stage_actor: stage_actor.clone(),
        prog,
        next_buf: 0,
        fwd_ids,
        bwd_ids,
        bwd_w_ids,
        add_cache: HashMap::new(),
        fill_cache: HashMap::new(),
        param_buf: HashMap::new(),
        data_buf: HashMap::new(),
        act_buf: HashMap::new(),
        res_buf: HashMap::new(),
        ct_contrib: HashMap::new(),
        saved_ct: HashMap::new(),
        acc: HashMap::new(),
        sent: HashSet::new(),
        buf_shape: HashMap::new(),
    };

    // Parameter placement: one copy per actor whose stages read it.
    let param_shapes = model.param_shapes();
    let mut param_actors: Vec<Vec<ActorId>> = Vec::with_capacity(model.n_params);
    for p in 0..model.n_params {
        let mut actors: Vec<ActorId> = model.staged.invar_stages[p]
            .iter()
            .map(|&s| stage_actor[s])
            .collect();
        actors.sort_unstable();
        actors.dedup();
        if actors.is_empty() {
            actors.push(0); // unused parameter: park it on actor 0
        }
        for &a in &actors {
            let b = ctx.alloc(param_shapes[p].clone());
            ctx.param_buf.insert((p, a), b);
            ctx.prog.placements.push(InputPlacement {
                buf: b,
                actor: a,
                shape: param_shapes[p].clone(),
                source: InputSource::Param(p),
            });
        }
        param_actors.push(actors);
    }
    // Data placement: one buffer per (input, microbatch), placed on every
    // actor whose stages read it (placement inference of §3.3: loop input
    // placement follows stage usage).
    let data_shapes = model.data_shapes();
    for (d, shape) in data_shapes.iter().enumerate() {
        let gi = model.n_params + d;
        let mut actors: Vec<ActorId> = model.staged.invar_stages[gi]
            .iter()
            .map(|&s| stage_actor[s])
            .collect();
        actors.sort_unstable();
        actors.dedup();
        for mb in 0..schedule.n_mubatches() {
            let b = ctx.alloc(shape.clone());
            ctx.data_buf.insert((d, mb), b);
            for &a in &actors {
                ctx.prog.placements.push(InputPlacement {
                    buf: b,
                    actor: a,
                    shape: shape.clone(),
                    source: InputSource::Data {
                        input: d,
                        mubatch: mb,
                    },
                });
            }
        }
    }

    // Global topological walk over the schedule, respecting each actor's
    // local order (the §4.2 traversal).
    {
        let mut done: HashSet<Task> = HashSet::new();
        let mut cursor = vec![0usize; n_actors];
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for a in 0..n_actors {
                let tasks = schedule.actor_tasks(a);
                while cursor[a] < tasks.len() {
                    let t = tasks[cursor[a]];
                    if !t.deps(schedule.n_stages()).iter().all(|d| done.contains(d)) {
                        break;
                    }
                    match t.dir {
                        Dir::Fwd => ctx.run_fwd(t),
                        Dir::Bwd => ctx.run_bwd(t),
                        Dir::BwdW => ctx.run_bwd_w(t),
                    }
                    done.insert(t);
                    cursor[a] += 1;
                    progressed = true;
                }
                if cursor[a] < tasks.len() {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                let blocked = (0..n_actors)
                    .filter(|&a| cursor[a] < schedule.actor_tasks(a).len())
                    .map(|a| schedule.actor_tasks(a)[cursor[a]])
                    .collect();
                return Err(CompileError::Schedule(ScheduleError::Deadlock { blocked }));
            }
        }
    }

    // Final gradients. Commuted mode: one cross-actor reduction per shared
    // weight (§3.4); naive mode already reduced per microbatch.
    let mut grads: Vec<(BufferId, ActorId)> = Vec::with_capacity(model.n_params);
    for p in 0..model.n_params {
        let owner = ctx.grad_owner(p);
        let final_buf = if opts.loop_commuting {
            let mut stage_accs: Vec<(usize, BufferId)> = ctx
                .acc
                .iter()
                .filter(|((pp, _), _)| *pp == p)
                .map(|((_, s), &b)| (*s, b))
                .collect();
            stage_accs.sort_unstable();
            match stage_accs.len() {
                0 => ctx.emit_fill(
                    owner,
                    &param_shapes[p],
                    0.0,
                    TaskLabel::GradReduce { param: p },
                ),
                _ => {
                    let mut cur = stage_accs[0].1;
                    for &(s, b) in &stage_accs[1..] {
                        let src = stage_actor[s];
                        ctx.send(b, src, owner);
                        cur = ctx.emit_add(owner, cur, b, TaskLabel::GradReduce { param: p });
                    }
                    cur
                }
            }
        } else {
            match ctx.acc.get(&(p, usize::MAX)) {
                Some(&b) => b,
                None => ctx.emit_fill(
                    owner,
                    &param_shapes[p],
                    0.0,
                    TaskLabel::GradReduce { param: p },
                ),
            }
        };
        grads.push((final_buf, owner));
        ctx.prog.fetches.push(Fetch {
            buf: final_buf,
            actor: owner,
            role: FetchRole::Grad(p),
        });
    }

    // Per-microbatch global outputs (loss, metrics) are fetched from
    // their producing actor.
    for (s, stage) in model.staged.stages.iter().enumerate() {
        for (o, meta) in stage.outputs.iter().enumerate() {
            for &go in &meta.global_outputs {
                for mb in 0..schedule.n_mubatches() {
                    ctx.prog.fetches.push(Fetch {
                        buf: ctx.act_buf[&(s, o, mb)],
                        actor: stage_actor[s],
                        role: FetchRole::Output {
                            output: go,
                            mubatch: mb,
                        },
                    });
                }
            }
        }
    }

    let param_buffers = ctx.param_buf.clone();
    Ok(CompiledLoop {
        program: ctx.prog,
        grads,
        param_actors,
        param_buffers,
    })
}

/// Buffer-liveness pass (paper §4.3): inserts a [`Instr::Free`] after the
/// last use of every non-pinned buffer in each actor's stream. Buffers
/// named by placements (parameters, data) or fetches stay pinned; data
/// buffers are rewritten each step by the driver.
///
/// Runtime note: the runtime defers a `Free` of a buffer with an
/// in-flight asynchronous send via its pending-deletions queue, exactly
/// as described in the paper.
pub fn insert_frees(program: &mut MpmdProgram) {
    let mut pinned: HashSet<BufferId> = HashSet::new();
    pinned.extend(program.placements.iter().map(|p| p.buf));
    pinned.extend(program.fetches.iter().map(|f| f.buf));

    for stream in &mut program.actors {
        let mut last_use: HashMap<BufferId, usize> = HashMap::new();
        let mut defined: HashMap<BufferId, usize> = HashMap::new();
        for (i, instr) in stream.iter().enumerate() {
            match instr {
                Instr::Run {
                    inputs, outputs, ..
                } => {
                    for b in inputs {
                        last_use.insert(*b, i);
                    }
                    for b in outputs {
                        defined.entry(*b).or_insert(i);
                    }
                }
                Instr::Send { buf, .. } => {
                    last_use.insert(*buf, i);
                }
                Instr::Recv { buf, .. } => {
                    defined.entry(*buf).or_insert(i);
                }
                Instr::Copy { dst, src } => {
                    last_use.insert(*src, i);
                    defined.entry(*dst).or_insert(i);
                }
                // The wire buffers of remote ranks never materialize in
                // this actor's store — only the local contribution `src`
                // (consumed here) and the result `dst` (defined here).
                Instr::Collective { dst, src, .. } => {
                    last_use.insert(*src, i);
                    defined.entry(*dst).or_insert(i);
                }
                Instr::Free { .. } => {}
            }
        }
        // Free point per buffer: after its last use; or right after its
        // definition if never used here (and not pinned).
        let mut free_at: HashMap<usize, Vec<BufferId>> = HashMap::new();
        for (&b, &def_i) in &defined {
            if pinned.contains(&b) {
                continue;
            }
            let at = last_use.get(&b).copied().unwrap_or(def_i);
            free_at.entry(at).or_default().push(b);
        }
        let mut out = Vec::with_capacity(stream.len());
        for (i, instr) in stream.drain(..).enumerate() {
            out.push(instr);
            if let Some(mut bufs) = free_at.remove(&i) {
                bufs.sort_unstable();
                out.extend(bufs.into_iter().map(|buf| Instr::Free { buf }));
            }
        }
        *stream = out;
    }
}

/// Checks the matching-order property of §4.2 on a compiled program: for
/// every ordered actor pair `(a, b)`, the sequence of buffers `a` sends to
/// `b` equals the sequence of buffers `b` receives from `a`. Returns the
/// offending pair on failure. Used by tests and by the runtime's debug
/// assertions.
pub fn check_send_recv_order(program: &MpmdProgram) -> Result<(), (ActorId, ActorId)> {
    let n = program.n_actors();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let sends: Vec<BufferId> = program.actors[a]
                .iter()
                .filter_map(|i| match i {
                    Instr::Send { buf, to } if *to == b => Some(*buf),
                    _ => None,
                })
                .collect();
            let recvs: Vec<BufferId> = program.actors[b]
                .iter()
                .filter_map(|i| match i {
                    Instr::Recv { src, from, .. } if *from == a => Some(*src),
                    _ => None,
                })
                .collect();
            if sends != recvs {
                return Err((a, b));
            }
        }
    }
    Ok(())
}
